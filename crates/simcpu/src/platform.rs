//! Platform descriptors.
//!
//! A [`PlatformSpec`] captures everything the simulator needs to behave
//! like one of the paper's two testbeds (Table 1):
//!
//! * **Skylake** — Intel Xeon SP 4114: 10 cores, per-core DVFS in 100 MHz
//!   steps over 0.8–2.2 GHz plus TurboBoost to 3.0 GHz, RAPL power capping
//!   over 20–85 W, package-level power telemetry only.
//! * **Ryzen** — AMD Ryzen 1700X: 8 cores, per-core DVFS in 25 MHz steps
//!   over 0.4–3.4 GHz plus XFR to 3.8 GHz, only **three** simultaneous
//!   P-states chip-wide (each redefinable), per-core *and* package power
//!   telemetry, no RAPL limit enforcement.
//!
//! The power-model coefficients are calibrated against the paper's anchor
//! measurements (see `DESIGN.md` §5); calibration is enforced by the tests
//! at the bottom of this module and by `tests/calibration.rs`.

use crate::freq::{FreqGrid, KiloHertz};
use crate::power::PowerModel;
use crate::rapl::RaplConfig;
use crate::turbo::TurboTable;
use crate::units::{Volts, Watts};
use crate::volt::VoltageCurve;

/// CPU vendor, controlling which vendor-specific MSR layout the emulated
/// MSR space presents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Intel (Skylake-SP generation).
    Intel,
    /// AMD (Zen 1 generation).
    Amd,
}

/// Full description of a simulated platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Human-readable platform name.
    pub name: &'static str,
    /// CPU vendor.
    pub vendor: Vendor,
    /// Physical core count (we model one thread per core; the paper pins
    /// one single-threaded benchmark per physical core).
    pub num_cores: usize,
    /// SMT threads per core (informational, matches Table 1).
    pub threads_per_core: usize,
    /// Nominal (base) frequency; the MPERF/TSC reference clock.
    pub base_freq: KiloHertz,
    /// Programmable frequency grid, including the opportunistic range.
    pub grid: FreqGrid,
    /// Opportunistic scaling and AVX limits.
    pub turbo: TurboTable,
    /// The analytic power model.
    pub power: PowerModel,
    /// RAPL limit enforcement, if the platform supports it.
    pub rapl: Option<RaplConfig>,
    /// Whether per-core energy counters are architecturally exposed
    /// (true on Ryzen, false on the Skylake part).
    pub per_core_power: bool,
    /// If set, the chip supports only this many distinct concurrent
    /// frequencies (Ryzen's 3 shared P-state slots).
    pub shared_pstate_slots: Option<usize>,
    /// Thermal design power.
    pub tdp: Watts,
}

impl PlatformSpec {
    /// The Intel Xeon SP 4114 "Skylake" testbed.
    pub fn skylake() -> PlatformSpec {
        let grid = FreqGrid::new(
            KiloHertz::from_mhz(800),
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(100),
        );
        let vf = VoltageCurve::new(vec![
            (KiloHertz::from_mhz(800), Volts(0.55)),
            (KiloHertz::from_mhz(2200), Volts(1.00)),
            (KiloHertz::from_mhz(3000), Volts(1.25)),
        ]);
        PlatformSpec {
            name: "Intel Xeon SP 4114 (Skylake)",
            vendor: Vendor::Intel,
            num_cores: 10,
            threads_per_core: 2,
            base_freq: KiloHertz::from_mhz(2200),
            grid,
            turbo: TurboTable::ramp(
                10,
                KiloHertz::from_mhz(3000),
                KiloHertz::from_mhz(2400),
                KiloHertz::from_mhz(1900),
                KiloHertz::from_mhz(1700),
                KiloHertz::from_mhz(100),
            ),
            power: PowerModel {
                ceff_nominal: 2.18,
                leak_per_volt: 0.5,
                idle_core: Watts(0.05),
                uncore_base: Watts(11.3),
                uncore_per_ghz: 0.35,
                turbo_threshold: Some(KiloHertz::from_mhz(2300)),
                turbo_uncore_boost: Watts(3.5),
                vf_curve: vf,
            },
            rapl: Some(RaplConfig::server_default((Watts(20.0), Watts(85.0)))),
            per_core_power: false,
            shared_pstate_slots: None,
            tdp: Watts(85.0),
        }
    }

    /// The AMD Ryzen 1700X testbed.
    pub fn ryzen() -> PlatformSpec {
        let grid = FreqGrid::new(
            KiloHertz::from_mhz(400),
            KiloHertz::from_mhz(3800),
            KiloHertz::from_mhz(25),
        );
        let vf = VoltageCurve::new(vec![
            (KiloHertz::from_mhz(400), Volts(0.70)),
            (KiloHertz::from_mhz(3400), Volts(1.20)),
            (KiloHertz::from_mhz(3800), Volts(1.42)),
        ]);
        PlatformSpec {
            name: "AMD Ryzen 1700X",
            vendor: Vendor::Amd,
            num_cores: 8,
            threads_per_core: 2,
            base_freq: KiloHertz::from_mhz(3400),
            grid,
            turbo: TurboTable::new(
                // XFR gives 3.8 GHz with 1-2 active cores, 3.5 with 3-4,
                // then the 3.4 GHz all-core limit.
                vec![
                    KiloHertz::from_mhz(3800),
                    KiloHertz::from_mhz(3800),
                    KiloHertz::from_mhz(3500),
                    KiloHertz::from_mhz(3500),
                    KiloHertz::from_mhz(3400),
                    KiloHertz::from_mhz(3400),
                    KiloHertz::from_mhz(3400),
                    KiloHertz::from_mhz(3400),
                ],
                // Zen 1 splits 256-bit AVX into two 128-bit µops, so there
                // is no separate AVX frequency license (Figure 3 shows no
                // saturation): AVX limits equal scalar limits.
                vec![
                    KiloHertz::from_mhz(3800),
                    KiloHertz::from_mhz(3800),
                    KiloHertz::from_mhz(3500),
                    KiloHertz::from_mhz(3500),
                    KiloHertz::from_mhz(3400),
                    KiloHertz::from_mhz(3400),
                    KiloHertz::from_mhz(3400),
                    KiloHertz::from_mhz(3400),
                ],
            ),
            power: PowerModel {
                ceff_nominal: 1.55,
                leak_per_volt: 0.5,
                idle_core: Watts(0.05),
                uncore_base: Watts(9.0),
                uncore_per_ghz: 0.35,
                turbo_threshold: Some(KiloHertz::from_mhz(3500)),
                turbo_uncore_boost: Watts(3.5),
                vf_curve: vf,
            },
            // The Ryzen part reports energy via RAPL-like counters but does
            // not implement limit *enforcement* (§6.1: "Ryzen lacks RAPL
            // limits").
            rapl: None,
            per_core_power: true,
            shared_pstate_slots: Some(3),
            tdp: Watts(95.0),
        }
    }

    /// A wide server chip for batch-stepped many-core experiments: the
    /// Skylake microarchitectural model (same grid, turbo ramp shape,
    /// per-core power coefficients and RAPL dynamics) scaled to
    /// `num_cores` cores, with the uncore, TDP and RAPL window growing
    /// linearly with the core count. These descriptors back the
    /// 128/512/1024-core FastCap face-offs and the
    /// [`crate::widechip::WideChip`] throughput gates; 16 cores is the
    /// bit-identity anchor against [`crate::chip::Chip`].
    pub fn wide(num_cores: usize) -> PlatformSpec {
        assert!(num_cores >= 1, "wide chip needs at least one core");
        let mut p = PlatformSpec::skylake();
        p.name = match num_cores {
            16 => "wide-16 (Skylake-derived)",
            128 => "wide-128 (Skylake-derived)",
            512 => "wide-512 (Skylake-derived)",
            1024 => "wide-1024 (Skylake-derived)",
            _ => "wide chip (Skylake-derived)",
        };
        p.num_cores = num_cores;
        p.turbo = TurboTable::ramp(
            num_cores,
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(2400),
            KiloHertz::from_mhz(1900),
            KiloHertz::from_mhz(1700),
            KiloHertz::from_mhz(100),
        );
        // Uncore (fabric, L3 slices, memory controllers) scales with the
        // die; keep the per-core share of the Skylake part.
        p.power.uncore_base = Watts(1.13 * num_cores as f64);
        p.tdp = Watts(8.5 * num_cores as f64);
        p.rapl = Some(RaplConfig::server_default((
            Watts(2.0 * num_cores as f64),
            Watts(8.5 * num_cores as f64),
        )));
        p
    }

    /// The Ryzen testbed with *banded* voltage: each of the three shared
    /// P-state slots carries one BIOS-configured voltage for every
    /// frequency in its band (§3.1: "each P-state uses the same voltage
    /// level for all frequencies it represents"). Running at the bottom
    /// of a band wastes the band's full voltage — the fidelity cost of
    /// the shared-slot hardware that `ablation_ryzen_bands` quantifies
    /// against the idealized per-frequency curve of
    /// [`PlatformSpec::ryzen`].
    pub fn ryzen_banded() -> PlatformSpec {
        let mut p = PlatformSpec::ryzen();
        p.name = "AMD Ryzen 1700X (banded voltage)";
        p.power.vf_curve = VoltageCurve::banded(vec![
            // P2: 0.8-2.1 GHz at the voltage the top of the band needs
            (KiloHertz::from_mhz(2100), Volts(0.95)),
            // P1: 2.2-3.3 GHz
            (KiloHertz::from_mhz(3300), Volts(1.19)),
            // P0: 3.4-3.8 GHz (XFR voltage)
            (KiloHertz::from_mhz(3800), Volts(1.42)),
        ]);
        p
    }

    /// Sanity-check internal consistency; used by constructors of higher
    /// layers in debug builds.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be positive".into());
        }
        if self.turbo.peak() > self.grid.max() {
            return Err("turbo peak exceeds programmable grid".into());
        }
        if self.base_freq > self.grid.max() || self.base_freq < self.grid.min() {
            return Err("base frequency outside grid".into());
        }
        if let Some(slots) = self.shared_pstate_slots {
            if slots == 0 {
                return Err("shared_pstate_slots must be positive when set".into());
            }
        }
        if !self.tdp.is_valid() || self.tdp.value() <= 0.0 {
            return Err("invalid TDP".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::LoadDescriptor;

    #[test]
    fn both_platforms_validate() {
        PlatformSpec::skylake().validate().unwrap();
        PlatformSpec::ryzen().validate().unwrap();
    }

    #[test]
    fn table1_skylake_features() {
        let p = PlatformSpec::skylake();
        assert_eq!(p.num_cores, 10);
        assert_eq!(p.grid.step(), KiloHertz::from_mhz(100));
        assert_eq!(p.base_freq, KiloHertz::from_mhz(2200));
        assert_eq!(p.turbo.peak(), KiloHertz::from_mhz(3000));
        assert!(p.rapl.is_some());
        assert!(!p.per_core_power);
        assert_eq!(p.shared_pstate_slots, None);
    }

    #[test]
    fn table1_ryzen_features() {
        let p = PlatformSpec::ryzen();
        assert_eq!(p.num_cores, 8);
        assert_eq!(p.grid.step(), KiloHertz::from_mhz(25));
        assert_eq!(p.grid.min(), KiloHertz::from_mhz(400));
        assert_eq!(p.turbo.peak(), KiloHertz::from_mhz(3800));
        assert!(p.rapl.is_none());
        assert!(p.per_core_power);
        assert_eq!(p.shared_pstate_slots, Some(3));
    }

    /// Calibration anchor: ten busy Skylake cores (5 scalar low-demand at
    /// the 2.4 GHz all-core turbo + 5 AVX high-demand at the 1.7 GHz AVX
    /// cap) must land close to but under the 85 W TDP, so that Figure 1's
    /// 85 W case runs unthrottled while 50 W forces heavy throttling.
    #[test]
    fn skylake_fig1_unconstrained_power_anchor() {
        let p = PlatformSpec::skylake();
        let gcc = LoadDescriptor {
            capacitance: 1.0,
            utilization: 1.0,
            avx: false,
        };
        let cam4 = LoadDescriptor {
            capacitance: 1.9,
            utilization: 1.0,
            avx: true,
        };
        let f_gcc = KiloHertz::from_mhz(2400);
        let f_cam = KiloHertz::from_mhz(1700);
        let cores = p.power.core_power(f_gcc, &gcc) * 5.0 + p.power.core_power(f_cam, &cam4) * 5.0;
        let total_freq = KiloHertz(f_gcc.khz() * 5 + f_cam.khz() * 5);
        let pkg = cores + p.power.uncore_power(total_freq);
        assert!(
            pkg.value() > 70.0 && pkg.value() < 85.0,
            "unconstrained Fig-1 package power {pkg} should sit just under TDP"
        );
    }

    /// Calibration anchor: with all ten cores pinned near 1.25 GHz the same
    /// mix must draw ≈ 40 W (Figure 1's lowest limit throttles both apps
    /// to 1240 MHz).
    #[test]
    fn skylake_fig1_40w_anchor() {
        let p = PlatformSpec::skylake();
        let gcc = LoadDescriptor {
            capacitance: 1.0,
            utilization: 1.0,
            avx: false,
        };
        let cam4 = LoadDescriptor {
            capacitance: 1.9,
            utilization: 1.0,
            avx: true,
        };
        let f = KiloHertz::from_mhz(1250);
        let cores = p.power.core_power(f, &gcc) * 5.0 + p.power.core_power(f, &cam4) * 5.0;
        let pkg = cores + p.power.uncore_power(KiloHertz(f.khz() * 10));
        assert!(
            (pkg.value() - 40.0).abs() < 4.0,
            "Fig-1 40 W anchor missed: {pkg}"
        );
    }

    /// Ryzen shows a >4 W power jump between 3.4 GHz and the 3.8 GHz XFR
    /// point for a nominal workload (Figure 3).
    #[test]
    fn ryzen_xfr_power_jump() {
        let p = PlatformSpec::ryzen();
        let load = LoadDescriptor::nominal();
        let p34 = p.power.core_power(KiloHertz::from_mhz(3400), &load);
        let p38 = p.power.core_power(KiloHertz::from_mhz(3800), &load);
        assert!(
            (p38 - p34).value() > 4.0,
            "XFR jump too small: {p34} -> {p38}"
        );
    }

    /// §5.2: core power dynamic range is roughly 12–14×; check the model
    /// spans at least 10× from the minimum to the peak operating point.
    #[test]
    fn skylake_core_power_dynamic_range() {
        let p = PlatformSpec::skylake();
        let load = LoadDescriptor {
            capacitance: 1.9,
            utilization: 1.0,
            avx: false,
        };
        let lo = p.power.core_power(KiloHertz::from_mhz(800), &load);
        let hi = p.power.core_power(KiloHertz::from_mhz(3000), &load);
        let ratio = hi.value() / lo.value();
        assert!(ratio > 6.0, "dynamic range only {ratio:.1}x");
    }

    #[test]
    fn validate_catches_bad_specs() {
        let mut p = PlatformSpec::skylake();
        p.num_cores = 0;
        assert!(p.validate().is_err());

        let mut p = PlatformSpec::skylake();
        p.base_freq = KiloHertz::from_mhz(100);
        assert!(p.validate().is_err());

        let mut p = PlatformSpec::ryzen();
        p.shared_pstate_slots = Some(0);
        assert!(p.validate().is_err());

        let mut p = PlatformSpec::skylake();
        p.tdp = Watts(-1.0);
        assert!(p.validate().is_err());
    }
}
