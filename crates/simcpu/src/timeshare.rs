//! Single-core proportional time sharing (§4.3, Figure 6).
//!
//! When two applications share one core, each receives a configured
//! fraction of CPU time (docker/cgroups CPU shares in the paper). The
//! paper's observation is that the core's average power is then the
//! *time-weighted sum* of the individual applications' power draws; this
//! module models that scheduler and exposes both the analytic average and
//! a segment-accurate simulation.

use crate::freq::KiloHertz;
use crate::power::{LoadDescriptor, PowerModel};
use crate::units::{Seconds, Watts};

/// One application time-sharing a core.
#[derive(Debug, Clone)]
pub struct ShareTask {
    /// Display name.
    pub name: String,
    /// Fraction of core time allotted (0, 1]. The sum over tasks must not
    /// exceed 1; any remainder is idle time.
    pub fraction: f64,
    /// What the task looks like to the power model while resident.
    pub load: LoadDescriptor,
}

/// Accumulated accounting for one task after simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskAccount {
    /// Task name.
    pub name: String,
    /// Total time the task was resident on the core.
    pub resident: Seconds,
    /// Energy attributable to the task's resident intervals.
    pub energy_joules: f64,
}

/// Result of simulating a time-shared core.
#[derive(Debug, Clone)]
pub struct TimeShareReport {
    /// Per-task accounting, in input order.
    pub tasks: Vec<TaskAccount>,
    /// Time the core spent idle.
    pub idle: Seconds,
    /// Average core power over the simulated window.
    pub average_power: Watts,
}

/// A single core time-shared by several tasks under a proportional-share
/// scheduler with a fixed scheduling period.
///
/// ```
/// use pap_simcpu::timeshare::{ShareTask, TimeSharedCore};
/// use pap_simcpu::platform::PlatformSpec;
/// use pap_simcpu::power::LoadDescriptor;
/// use pap_simcpu::freq::KiloHertz;
/// use pap_simcpu::units::Seconds;
///
/// let model = PlatformSpec::ryzen().power;
/// let core = TimeSharedCore::new(
///     vec![ShareTask {
///         name: "app".into(),
///         fraction: 0.5,
///         load: LoadDescriptor::nominal(),
///     }],
///     Seconds(0.1),
/// );
/// let f = KiloHertz::from_mhz(3400);
/// // half-time residency draws half the dynamic power plus the idle floor
/// let p = core.time_weighted_power(&model, f);
/// assert!(p < model.core_power(f, &LoadDescriptor::nominal()));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSharedCore {
    tasks: Vec<ShareTask>,
    period: Seconds,
}

impl TimeSharedCore {
    /// Create a time-shared core.
    ///
    /// # Panics
    /// Panics if fractions are out of range or sum above 1 (+ε).
    pub fn new(tasks: Vec<ShareTask>, period: Seconds) -> TimeSharedCore {
        assert!(period.value() > 0.0, "period must be positive");
        let mut total = 0.0;
        for t in &tasks {
            assert!(
                t.fraction > 0.0 && t.fraction <= 1.0,
                "task {} fraction {} out of range",
                t.name,
                t.fraction
            );
            total += t.fraction;
        }
        assert!(total <= 1.0 + 1e-9, "fractions sum to {total} > 1");
        TimeSharedCore { tasks, period }
    }

    /// The configured tasks.
    pub fn tasks(&self) -> &[ShareTask] {
        &self.tasks
    }

    /// Analytic average power at `freq`: the time-weighted sum of per-task
    /// power plus idle power for the unallocated remainder — exactly the
    /// property Figure 6 demonstrates.
    pub fn time_weighted_power(&self, model: &PowerModel, freq: KiloHertz) -> Watts {
        let mut p = Watts::ZERO;
        let mut used = 0.0;
        for t in &self.tasks {
            p += model.core_power(freq, &t.load) * t.fraction;
            used += t.fraction;
        }
        p += model.core_power(freq, &LoadDescriptor::IDLE) * (1.0 - used).max(0.0);
        p
    }

    /// Simulate `duration` of round-robin scheduling at `freq`, slicing
    /// each period proportionally. Returns per-task residency and energy
    /// and the measured average power, which matches
    /// [`Self::time_weighted_power`] up to period-boundary truncation.
    pub fn simulate(
        &self,
        model: &PowerModel,
        freq: KiloHertz,
        duration: Seconds,
    ) -> TimeShareReport {
        let mut accounts: Vec<TaskAccount> = self
            .tasks
            .iter()
            .map(|t| TaskAccount {
                name: t.name.clone(),
                resident: Seconds(0.0),
                energy_joules: 0.0,
            })
            .collect();
        let mut idle = Seconds(0.0);
        let mut total_energy = 0.0;
        let idle_power = model.core_power(freq, &LoadDescriptor::IDLE);

        let mut remaining = duration.value();
        while remaining > 1e-12 {
            let this_period = remaining.min(self.period.value());
            // Slice the (possibly truncated) period proportionally.
            for (task, acct) in self.tasks.iter().zip(accounts.iter_mut()) {
                let slice = this_period * task.fraction;
                if slice <= 0.0 {
                    continue;
                }
                let p = model.core_power(freq, &task.load);
                acct.resident += Seconds(slice);
                acct.energy_joules += p.value() * slice;
                total_energy += p.value() * slice;
            }
            let used: f64 = self.tasks.iter().map(|t| t.fraction).sum();
            let idle_slice = this_period * (1.0 - used).max(0.0);
            idle += Seconds(idle_slice);
            total_energy += idle_power.value() * idle_slice;
            remaining -= this_period;
        }

        TimeShareReport {
            tasks: accounts,
            idle,
            average_power: Watts(total_energy / duration.value()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;

    fn model() -> PowerModel {
        PlatformSpec::ryzen().power
    }

    fn hd_load() -> LoadDescriptor {
        LoadDescriptor {
            capacitance: 1.8,
            utilization: 1.0,
            avx: true,
        }
    }

    fn ld_load() -> LoadDescriptor {
        LoadDescriptor {
            capacitance: 0.9,
            utilization: 1.0,
            avx: false,
        }
    }

    fn core(hd_frac: f64, ld_frac: f64) -> TimeSharedCore {
        TimeSharedCore::new(
            vec![
                ShareTask {
                    name: "cactusBSSN".into(),
                    fraction: hd_frac,
                    load: hd_load(),
                },
                ShareTask {
                    name: "gcc".into(),
                    fraction: ld_frac,
                    load: ld_load(),
                },
            ],
            Seconds::from_millis(100.0),
        )
    }

    #[test]
    fn analytic_equals_simulated() {
        let m = model();
        let c = core(0.5, 0.3);
        let f = KiloHertz::from_mhz(3400);
        let analytic = c.time_weighted_power(&m, f);
        let sim = c.simulate(&m, f, Seconds(10.0));
        assert!(
            (analytic.value() - sim.average_power.value()).abs() < 1e-6,
            "analytic {analytic} vs simulated {}",
            sim.average_power
        );
    }

    #[test]
    fn power_increases_with_hd_share() {
        let m = model();
        let f = KiloHertz::from_mhz(3400);
        let mut prev = Watts::ZERO;
        // LD fixed at 50%, HD share swept 10%..50% (Figure 6 protocol).
        for hd in [0.1, 0.2, 0.3, 0.4, 0.5] {
            let p = core(hd, 0.5).time_weighted_power(&m, f);
            assert!(p > prev, "power must rise with HD share: {p} at {hd}");
            prev = p;
        }
    }

    #[test]
    fn solo_full_share_matches_plain_model() {
        let m = model();
        let f = KiloHertz::from_mhz(3400);
        let solo = TimeSharedCore::new(
            vec![ShareTask {
                name: "cactusBSSN".into(),
                fraction: 1.0,
                load: hd_load(),
            }],
            Seconds::from_millis(100.0),
        );
        let p = solo.time_weighted_power(&m, f);
        assert!((p.value() - m.core_power(f, &hd_load()).value()).abs() < 1e-12);
    }

    #[test]
    fn residency_proportional_to_fraction() {
        let m = model();
        let c = core(0.2, 0.5);
        let rep = c.simulate(&m, KiloHertz::from_mhz(3000), Seconds(100.0));
        assert!((rep.tasks[0].resident.value() - 20.0).abs() < 1e-6);
        assert!((rep.tasks[1].resident.value() - 50.0).abs() < 1e-6);
        assert!((rep.idle.value() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn sum_bounded_by_one() {
        let t = |f: f64| ShareTask {
            name: "x".into(),
            fraction: f,
            load: ld_load(),
        };
        let r =
            std::panic::catch_unwind(|| TimeSharedCore::new(vec![t(0.7), t(0.7)], Seconds(0.1)));
        assert!(r.is_err(), "fractions summing to 1.4 must panic");
    }

    #[test]
    fn partial_final_period_accounted() {
        let m = model();
        let c = core(0.5, 0.5);
        // 0.25 s is 2.5 periods of 100 ms.
        let rep = c.simulate(&m, KiloHertz::from_mhz(3000), Seconds(0.25));
        let total: f64 =
            rep.tasks.iter().map(|t| t.resident.value()).sum::<f64>() + rep.idle.value();
        assert!((total - 0.25).abs() < 1e-9);
    }
}
