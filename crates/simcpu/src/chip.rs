//! The simulated multi-core chip.
//!
//! [`Chip`] ties the platform model together: per-core frequency requests
//! are resolved against turbo limits, AVX caps and the RAPL frequency cap;
//! the power model integrates energy; counters advance; and the RAPL
//! controller observes package power. Time advances only through
//! [`Chip::tick`], typically at 1–10 ms.
//!
//! The workload engine drives the chip with a simple per-tick protocol:
//!
//! ```text
//! loop {
//!     f = chip.effective_freq(core);         // frequency the core runs at
//!     (instr, load) = workload.advance(dt, f);
//!     chip.set_load(core, load);
//!     chip.add_instructions(core, instr);
//!     chip.tick(dt);
//! }
//! ```

use std::sync::Arc;

use crate::clock::SimClock;
use crate::core::{CoreCounters, SimCore};
use crate::error::{Result, SimError};
use crate::freq::KiloHertz;
use crate::platform::PlatformSpec;
use crate::power::LoadDescriptor;
use crate::rapl::{EnergyCounter, RaplController};
use crate::units::{Seconds, Watts};

/// A simulated multi-core processor.
#[derive(Debug, Clone)]
pub struct Chip {
    spec: Arc<PlatformSpec>,
    cores: Vec<SimCore>,
    clock: SimClock,
    rapl: Option<RaplController>,
    pkg_energy: EnergyCounter,
    cores_energy: EnergyCounter,
    last_package_power: Watts,
    last_cores_power: Watts,
}

impl Chip {
    /// Instantiate a chip from a platform spec.
    ///
    /// # Panics
    /// Panics if the spec fails validation (these are programmer errors in
    /// platform definitions, not runtime conditions).
    pub fn new(spec: PlatformSpec) -> Chip {
        Chip::shared(Arc::new(spec))
    }

    /// Instantiate a chip from a shared platform spec: a fleet of nodes
    /// holds one spec behind `Arc` pointers instead of deep clones.
    ///
    /// # Panics
    /// Panics if the spec fails validation.
    pub fn shared(spec: Arc<PlatformSpec>) -> Chip {
        if let Err(e) = spec.validate() {
            panic!("invalid platform spec: {e}");
        }
        let cores = (0..spec.num_cores)
            .map(|_| SimCore::new(spec.base_freq))
            .collect();
        let rapl = spec
            .rapl
            .clone()
            .map(|cfg| RaplController::new(cfg, spec.grid));
        Chip {
            spec,
            cores,
            clock: SimClock::new(),
            rapl,
            pkg_energy: EnergyCounter::default(),
            cores_energy: EnergyCounter::default(),
            last_package_power: Watts::ZERO,
            last_cores_power: Watts::ZERO,
        }
    }

    /// The platform this chip models.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.spec.num_cores
    }

    /// Current simulated time.
    pub fn now(&self) -> Seconds {
        self.clock.now()
    }

    fn check_core(&self, core: usize) -> Result<()> {
        if core >= self.cores.len() {
            Err(SimError::NoSuchCore {
                core,
                num_cores: self.cores.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Request a frequency for one core. The value is snapped to the
    /// platform grid; out-of-range values error. On platforms with shared
    /// P-state slots (Ryzen), a request that would need more distinct
    /// concurrent frequencies than the hardware supports is rejected.
    pub fn set_requested_freq(&mut self, core: usize, f: KiloHertz) -> Result<()> {
        self.check_core(core)?;
        if f < self.spec.grid.min() || f > self.spec.grid.max() {
            return Err(SimError::FrequencyOutOfRange {
                requested: f,
                min: self.spec.grid.min(),
                max: self.spec.grid.max(),
            });
        }
        let snapped = self.spec.grid.round(f);
        if let Some(slots) = self.spec.shared_pstate_slots {
            let mut freqs: Vec<KiloHertz> = self.cores.iter().map(|c| c.requested()).collect();
            freqs[core] = snapped;
            let mut distinct: Vec<KiloHertz> = Vec::with_capacity(slots + 1);
            for fr in freqs {
                if !distinct.contains(&fr) {
                    distinct.push(fr);
                }
            }
            if distinct.len() > slots {
                return Err(SimError::Unsupported(
                    "more concurrent frequencies than shared P-state slots",
                ));
            }
        }
        self.cores[core].set_requested(snapped);
        Ok(())
    }

    /// Atomically set all cores' requested frequencies. Used by the daemon
    /// so that a Ryzen slot-count check applies to the whole new
    /// configuration rather than each intermediate state.
    pub fn set_all_requested(&mut self, freqs: &[KiloHertz]) -> Result<()> {
        if freqs.len() != self.cores.len() {
            return Err(SimError::NoSuchCore {
                core: freqs.len(),
                num_cores: self.cores.len(),
            });
        }
        let mut snapped = Vec::with_capacity(freqs.len());
        for &f in freqs {
            if f < self.spec.grid.min() || f > self.spec.grid.max() {
                return Err(SimError::FrequencyOutOfRange {
                    requested: f,
                    min: self.spec.grid.min(),
                    max: self.spec.grid.max(),
                });
            }
            snapped.push(self.spec.grid.round(f));
        }
        if let Some(slots) = self.spec.shared_pstate_slots {
            let mut distinct: Vec<KiloHertz> = Vec::with_capacity(slots + 1);
            for &fr in &snapped {
                if !distinct.contains(&fr) {
                    distinct.push(fr);
                }
            }
            if distinct.len() > slots {
                return Err(SimError::Unsupported(
                    "more concurrent frequencies than shared P-state slots",
                ));
            }
        }
        for (c, f) in self.cores.iter_mut().zip(snapped) {
            c.set_requested(f);
        }
        Ok(())
    }

    /// The frequency software requested for `core`.
    pub fn requested_freq(&self, core: usize) -> KiloHertz {
        self.cores[core].requested()
    }

    /// The frequency `core` actually ran at during the last tick.
    pub fn effective_freq(&self, core: usize) -> KiloHertz {
        self.cores[core].effective()
    }

    /// Install the load descriptor for `core` for the upcoming tick.
    pub fn set_load(&mut self, core: usize, load: LoadDescriptor) -> Result<()> {
        self.check_core(core)?;
        self.cores[core].set_load(load);
        Ok(())
    }

    /// Park (`true`) or release (`false`) a core.
    pub fn set_forced_idle(&mut self, core: usize, idle: bool) -> Result<()> {
        self.check_core(core)?;
        self.cores[core].set_forced_idle(idle);
        Ok(())
    }

    /// Select the C-state a core rests in while it has no work (deep C6
    /// by default; an idle governor may choose shallower states to trade
    /// power for wake latency).
    pub fn set_idle_state(&mut self, core: usize, state: crate::cstate::CState) -> Result<()> {
        self.check_core(core)?;
        self.cores[core].set_idle_state(state);
        Ok(())
    }

    /// Credit retired instructions to a core (from the workload engine).
    pub fn add_instructions(&mut self, core: usize, n: u64) -> Result<()> {
        self.check_core(core)?;
        self.cores[core].add_instructions(n);
        Ok(())
    }

    /// Program a RAPL package power limit; errors on platforms without
    /// RAPL enforcement (Ryzen).
    pub fn set_rapl_limit(&mut self, limit: Option<Watts>) -> Result<()> {
        match self.rapl.as_mut() {
            Some(r) => {
                r.set_limit(limit);
                Ok(())
            }
            None => Err(SimError::Unsupported("RAPL power limiting")),
        }
    }

    /// The global frequency cap RAPL currently imposes, if enforcement is
    /// supported and active.
    pub fn rapl_cap(&self) -> Option<KiloHertz> {
        self.rapl.as_ref().map(|r| r.cap())
    }

    /// The programmed RAPL limit, if any.
    pub fn rapl_limit(&self) -> Option<Watts> {
        self.rapl.as_ref().and_then(|r| r.limit())
    }

    /// Read-only access to a core's state.
    pub fn core(&self, core: usize) -> &SimCore {
        &self.cores[core]
    }

    /// Fixed-counter snapshot for a core.
    pub fn counters(&self, core: usize) -> CoreCounters {
        self.cores[core].counters()
    }

    /// Package power during the last tick.
    pub fn package_power(&self) -> Watts {
        self.last_package_power
    }

    /// Core-domain (PP0) power during the last tick.
    pub fn cores_power(&self) -> Watts {
        self.last_cores_power
    }

    /// Power of one core during the last tick. On platforms without
    /// per-core telemetry this is still available to *tests* via
    /// [`Chip::core`]; this accessor models the architectural interface
    /// and errors where the real part gives no answer.
    pub fn core_power(&self, core: usize) -> Result<Watts> {
        self.check_core(core)?;
        if !self.spec.per_core_power {
            return Err(SimError::Unsupported("per-core power telemetry"));
        }
        Ok(self.cores[core].last_power())
    }

    /// Raw (wrapping) package energy counter.
    pub fn package_energy_raw(&self) -> u32 {
        self.pkg_energy.read_raw()
    }

    /// Raw (wrapping) core-domain energy counter.
    pub fn cores_energy_raw(&self) -> u32 {
        self.cores_energy.read_raw()
    }

    /// Raw per-core energy counter; errors on platforms without per-core
    /// power telemetry.
    pub fn core_energy_raw(&self, core: usize) -> Result<u32> {
        self.check_core(core)?;
        if !self.spec.per_core_power {
            return Err(SimError::Unsupported("per-core power telemetry"));
        }
        Ok(self.cores[core].energy().read_raw())
    }

    /// Number of cores that will execute this tick.
    pub fn active_cores(&self) -> usize {
        self.cores.iter().filter(|c| c.is_active()).count()
    }

    /// Resolve the effective frequency of one core given the current
    /// active count and caps (pure; does not mutate state).
    fn resolve_freq(&self, core: &SimCore, active: usize) -> KiloHertz {
        let mut f = core.requested();
        f = f.min(self.spec.turbo.cap_for(active, core.load().avx));
        if let Some(r) = &self.rapl {
            f = f.min(r.cap());
        }
        f.max(self.spec.grid.min())
    }

    /// Advance the chip by `dt`: resolve frequencies, integrate power and
    /// counters, and let the RAPL controller react.
    pub fn tick(&mut self, dt: Seconds) {
        let active = self.active_cores();

        // Resolve effective frequencies under the current caps.
        let resolved: Vec<KiloHertz> = self
            .cores
            .iter()
            .map(|c| self.resolve_freq(c, active))
            .collect();

        let mut cores_power = Watts::ZERO;
        let mut active_freq_sum = KiloHertz::ZERO;
        let mut max_active_freq = KiloHertz::ZERO;
        for (core, &f) in self.cores.iter_mut().zip(&resolved) {
            core.set_effective(f);
            let p = if core.is_active() {
                self.spec.power.core_power(f, &core.load())
            } else {
                // resting cores draw their selected C-state's floor
                self.spec.power.idle_power(core.idle_state())
            };
            cores_power += p;
            if core.is_active() {
                active_freq_sum += f.scale(core.load().utilization);
                max_active_freq = max_active_freq.max(f);
            }
            core.integrate(dt, self.spec.base_freq, p);
        }

        let uncore = self
            .spec
            .power
            .uncore_power_at(active_freq_sum, max_active_freq);
        let package = cores_power + uncore;

        self.cores_energy.add(cores_power * dt);
        self.pkg_energy.add(package * dt);
        self.last_cores_power = cores_power;
        self.last_package_power = package;

        if let Some(r) = self.rapl.as_mut() {
            r.observe(package, dt);
        }
        self.clock.advance(dt);
    }

    /// Run `n` ticks of `dt` each; convenience for settling the chip.
    pub fn run_ticks(&mut self, n: usize, dt: Seconds) {
        for _ in 0..n {
            self.tick(dt);
        }
    }

    /// Always false: the scalar reference recomputes every tick from
    /// scratch and deliberately never advertises steadiness, so generic
    /// drivers keep their simple per-tick loop on this backend (see
    /// [`crate::widechip::WideChip::steady_tick`] for the fast path).
    pub fn steady_tick(&self, _dt: Seconds) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;

    const MS: Seconds = Seconds(0.001);

    fn busy(chip: &mut Chip, core: usize, cap: f64, avx: bool) {
        chip.set_load(
            core,
            LoadDescriptor {
                capacitance: cap,
                utilization: 1.0,
                avx,
            },
        )
        .unwrap();
    }

    #[test]
    fn idle_chip_draws_uncore_plus_idle_floor() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        chip.tick(MS);
        let p = chip.package_power().value();
        // 10 idle cores at 0.05 W + 11.3 W uncore base
        assert!((p - 11.8).abs() < 0.1, "idle power {p}");
        assert_eq!(chip.active_cores(), 0);
    }

    #[test]
    fn single_core_turbo_resolution() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        chip.set_requested_freq(0, KiloHertz::from_mhz(3000))
            .unwrap();
        busy(&mut chip, 0, 1.0, false);
        chip.tick(MS);
        // One active core gets the full 3.0 GHz boost.
        assert_eq!(chip.effective_freq(0), KiloHertz::from_mhz(3000));
    }

    #[test]
    fn all_core_turbo_limit_applies() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        for c in 0..10 {
            chip.set_requested_freq(c, KiloHertz::from_mhz(3000))
                .unwrap();
            busy(&mut chip, c, 1.0, false);
        }
        chip.tick(MS);
        chip.tick(MS); // second tick sees active==10 from the first
        assert_eq!(chip.effective_freq(0), KiloHertz::from_mhz(2400));
    }

    #[test]
    fn avx_cap_applies_only_to_avx_cores() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        for c in 0..10 {
            chip.set_requested_freq(c, KiloHertz::from_mhz(3000))
                .unwrap();
            busy(&mut chip, c, 1.0, c >= 5);
        }
        chip.run_ticks(2, MS);
        assert_eq!(chip.effective_freq(0), KiloHertz::from_mhz(2400));
        assert_eq!(chip.effective_freq(9), KiloHertz::from_mhz(1700));
    }

    #[test]
    fn rapl_throttles_fastest_cores_first() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        for c in 0..10 {
            chip.set_requested_freq(c, KiloHertz::from_mhz(2400))
                .unwrap();
            // half high-demand AVX, half low-demand scalar (Figure 1 mix)
            busy(&mut chip, c, if c >= 5 { 1.9 } else { 1.0 }, c >= 5);
        }
        chip.set_rapl_limit(Some(Watts(50.0))).unwrap();
        chip.run_ticks(3000, MS);
        let f_gcc = chip.effective_freq(0);
        let f_cam = chip.effective_freq(9);
        assert!(
            chip.package_power().value() < 53.0,
            "power {}",
            chip.package_power()
        );
        // the scalar cores (which could run 2.4) are throttled harder in
        // *relative* terms than the AVX cores already capped at 1.7
        let loss_gcc = 1.0 - f_gcc.ghz() / 2.4;
        let loss_cam = 1.0 - f_cam.ghz() / 1.7;
        assert!(
            loss_gcc > loss_cam,
            "gcc loss {loss_gcc:.2} should exceed cam4 loss {loss_cam:.2} (f_gcc={f_gcc}, f_cam={f_cam})"
        );
    }

    #[test]
    fn rapl_40w_throttles_to_equal_low_frequency() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        for c in 0..10 {
            chip.set_requested_freq(c, KiloHertz::from_mhz(2400))
                .unwrap();
            busy(&mut chip, c, if c >= 5 { 1.9 } else { 1.0 }, c >= 5);
        }
        chip.set_rapl_limit(Some(Watts(40.0))).unwrap();
        chip.run_ticks(5000, MS);
        let f_gcc = chip.effective_freq(0);
        let f_cam = chip.effective_freq(9);
        assert_eq!(f_gcc, f_cam, "both throttled to the RAPL cap");
        assert!(
            f_gcc < KiloHertz::from_mhz(1700),
            "cap should fall below the AVX limit at 40 W, got {f_gcc}"
        );
        assert!((chip.package_power().value() - 40.0).abs() < 3.0);
    }

    #[test]
    fn forced_idle_frees_power() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        for c in 0..10 {
            chip.set_requested_freq(c, KiloHertz::from_mhz(2400))
                .unwrap();
            busy(&mut chip, c, 1.9, false);
        }
        chip.set_rapl_limit(Some(Watts(50.0))).unwrap();
        chip.run_ticks(3000, MS);
        let f_before = chip.effective_freq(0);
        // Park half the cores; survivors should speed back up.
        for c in 5..10 {
            chip.set_forced_idle(c, true).unwrap();
        }
        chip.run_ticks(5000, MS);
        let f_after = chip.effective_freq(0);
        assert!(
            f_after > f_before,
            "parking cores must free power: {f_before} -> {f_after}"
        );
    }

    #[test]
    fn energy_counters_advance() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        busy(&mut chip, 0, 1.0, false);
        let e0 = chip.package_energy_raw();
        chip.run_ticks(1000, MS);
        let e1 = chip.package_energy_raw();
        let joules = crate::rapl::EnergyCounter::delta_joules(e0, e1);
        // ~1 s at ~15-20 W
        assert!(joules.value() > 5.0 && joules.value() < 40.0, "{joules}");
    }

    #[test]
    fn per_core_energy_only_on_ryzen() {
        let sky = Chip::new(PlatformSpec::skylake());
        assert!(matches!(
            sky.core_energy_raw(0),
            Err(SimError::Unsupported(_))
        ));
        assert!(matches!(sky.core_power(0), Err(SimError::Unsupported(_))));

        let ryz = Chip::new(PlatformSpec::ryzen());
        assert!(ryz.core_energy_raw(0).is_ok());
        assert!(ryz.core_power(0).is_ok());
    }

    #[test]
    fn ryzen_rejects_rapl_limit() {
        let mut chip = Chip::new(PlatformSpec::ryzen());
        assert!(matches!(
            chip.set_rapl_limit(Some(Watts(50.0))),
            Err(SimError::Unsupported(_))
        ));
        assert_eq!(chip.rapl_cap(), None);
    }

    #[test]
    fn ryzen_shared_slot_limit_enforced() {
        let mut chip = Chip::new(PlatformSpec::ryzen());
        // Three distinct frequencies are fine...
        chip.set_requested_freq(0, KiloHertz::from_mhz(3400))
            .unwrap();
        chip.set_requested_freq(1, KiloHertz::from_mhz(2500))
            .unwrap();
        chip.set_requested_freq(2, KiloHertz::from_mhz(1200))
            .unwrap();
        // ...a fourth distinct one is not.
        assert!(matches!(
            chip.set_requested_freq(3, KiloHertz::from_mhz(800)),
            Err(SimError::Unsupported(_))
        ));
        // but reusing an existing slot works
        chip.set_requested_freq(3, KiloHertz::from_mhz(2500))
            .unwrap();
    }

    #[test]
    fn set_all_requested_atomic_slot_check() {
        let mut chip = Chip::new(PlatformSpec::ryzen());
        let bad: Vec<KiloHertz> = (0..8)
            .map(|i| KiloHertz::from_mhz(1000 + 100 * i))
            .collect();
        assert!(chip.set_all_requested(&bad).is_err());
        let good = vec![
            KiloHertz::from_mhz(3400),
            KiloHertz::from_mhz(3400),
            KiloHertz::from_mhz(2500),
            KiloHertz::from_mhz(2500),
            KiloHertz::from_mhz(1200),
            KiloHertz::from_mhz(1200),
            KiloHertz::from_mhz(1200),
            KiloHertz::from_mhz(1200),
        ];
        chip.set_all_requested(&good).unwrap();
        assert_eq!(chip.requested_freq(0), KiloHertz::from_mhz(3400));
        assert_eq!(chip.requested_freq(7), KiloHertz::from_mhz(1200));
    }

    #[test]
    fn out_of_range_frequency_rejected() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        assert!(matches!(
            chip.set_requested_freq(0, KiloHertz::from_mhz(5000)),
            Err(SimError::FrequencyOutOfRange { .. })
        ));
        assert!(matches!(
            chip.set_requested_freq(0, KiloHertz::from_mhz(100)),
            Err(SimError::FrequencyOutOfRange { .. })
        ));
        assert!(matches!(
            chip.set_requested_freq(99, KiloHertz::from_mhz(1000)),
            Err(SimError::NoSuchCore { .. })
        ));
    }

    #[test]
    fn frequency_snapped_to_grid() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        chip.set_requested_freq(0, KiloHertz(1_234_000)).unwrap();
        assert_eq!(chip.requested_freq(0), KiloHertz::from_mhz(1200));
    }

    #[test]
    fn idle_state_selection_changes_floor_power() {
        use crate::cstate::CState;
        let mut deep = Chip::new(PlatformSpec::skylake());
        let mut shallow = Chip::new(PlatformSpec::skylake());
        for c in 0..10 {
            shallow.set_idle_state(c, CState::C1).unwrap();
        }
        deep.tick(MS);
        shallow.tick(MS);
        let d = deep.package_power().value();
        let s = shallow.package_power().value();
        assert!(
            s > d + 5.0,
            "ten C1 cores ({s:.1} W) must out-draw ten C6 cores ({d:.1} W)"
        );
        // and residency accounting attributes the idle time to the state
        assert!(shallow.core(0).residency().in_state(CState::C1).value() > 0.0);
        assert!(deep.core(0).residency().in_state(CState::C6).value() > 0.0);
    }

    #[test]
    fn clock_advances_with_ticks() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        chip.run_ticks(250, MS);
        assert!((chip.now().value() - 0.25).abs() < 1e-9);
    }
}
