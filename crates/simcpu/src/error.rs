//! Simulator error types.

use std::fmt;

use crate::freq::KiloHertz;
use crate::units::Watts;

/// Errors returned by simulator operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A core index outside the chip was addressed.
    NoSuchCore {
        /// The offending core index.
        core: usize,
        /// How many cores the chip actually has.
        num_cores: usize,
    },
    /// A frequency outside the platform's programmable range was requested.
    FrequencyOutOfRange {
        /// The offending frequency.
        requested: KiloHertz,
        /// Lowest programmable frequency.
        min: KiloHertz,
        /// Highest programmable frequency.
        max: KiloHertz,
    },
    /// A RAPL limit outside the platform's supported window was requested.
    PowerLimitOutOfRange {
        /// The offending limit.
        requested: Watts,
        /// Lowest programmable limit.
        min: Watts,
        /// Highest programmable limit.
        max: Watts,
    },
    /// The platform does not implement the requested capability
    /// (e.g. RAPL limiting on Ryzen, per-core power telemetry on Skylake).
    Unsupported(&'static str),
    /// An MSR address that the emulated part does not decode.
    InvalidMsr {
        /// The undecoded register number.
        addr: u32,
    },
    /// Writing a read-only MSR.
    ReadOnlyMsr {
        /// The register number written.
        addr: u32,
    },
    /// An emulated sysfs path that does not exist.
    NoSuchPath(String),
    /// An invalid value written to an emulated sysfs attribute.
    InvalidValue(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchCore { core, num_cores } => {
                write!(f, "core {core} out of range (chip has {num_cores} cores)")
            }
            SimError::FrequencyOutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "frequency {requested} outside programmable range [{min}, {max}]"
            ),
            SimError::PowerLimitOutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "power limit {requested} outside supported window [{min}, {max}]"
            ),
            SimError::Unsupported(what) => write!(f, "platform does not support {what}"),
            SimError::InvalidMsr { addr } => write!(f, "invalid MSR address {addr:#x}"),
            SimError::ReadOnlyMsr { addr } => write!(f, "MSR {addr:#x} is read-only"),
            SimError::NoSuchPath(p) => write!(f, "no such sysfs path: {p}"),
            SimError::InvalidValue(v) => write!(f, "invalid sysfs value: {v}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::NoSuchCore {
            core: 12,
            num_cores: 10,
        };
        assert!(e.to_string().contains("core 12"));
        let e = SimError::FrequencyOutOfRange {
            requested: KiloHertz::from_mhz(5000),
            min: KiloHertz::from_mhz(800),
            max: KiloHertz::from_mhz(3000),
        };
        assert!(e.to_string().contains("5000 MHz"));
        let e = SimError::Unsupported("RAPL limiting");
        assert!(e.to_string().contains("RAPL limiting"));
        let e = SimError::InvalidMsr { addr: 0x611 };
        assert!(e.to_string().contains("0x611"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::Unsupported("x"));
    }
}
