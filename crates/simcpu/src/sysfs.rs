//! Emulated cpufreq/powercap sysfs tree.
//!
//! Linux exposes DVFS through `/sys/devices/system/cpu/cpu<n>/cpufreq/` and
//! RAPL through `/sys/class/powercap/intel-rapl:0/` (§2.2). The paper's
//! daemon uses the *userspace* governor and writes `scaling_setspeed`; this
//! module reproduces that file-level interface over the simulated chip so
//! higher layers can be written (and tested) against the exact strings a
//! real sysfs would serve.

use crate::chip::Chip;
use crate::chiplike::ChipLike;
use crate::error::{Result, SimError};
use crate::freq::KiloHertz;
use crate::units::Watts;

/// A file-path view over any [`ChipLike`] backend (defaulting to the
/// per-core [`Chip`]), mirroring the subset of sysfs the paper's tooling
/// touches.
pub struct SysfsTree<'a, C: ChipLike = Chip> {
    chip: &'a mut C,
    governor: Vec<String>,
}

impl<'a, C: ChipLike> SysfsTree<'a, C> {
    /// Attach to a chip. All cores start with the `userspace` governor,
    /// matching the paper's experimental setup (§2.2).
    pub fn new(chip: &'a mut C) -> SysfsTree<'a, C> {
        let n = chip.num_cores();
        SysfsTree {
            chip,
            governor: vec!["userspace".to_string(); n],
        }
    }

    fn parse_cpu(path: &str) -> Option<(usize, &str)> {
        let rest = path.strip_prefix("/sys/devices/system/cpu/cpu")?;
        let slash = rest.find('/')?;
        let cpu: usize = rest[..slash].parse().ok()?;
        let attr = rest[slash + 1..].strip_prefix("cpufreq/")?;
        Some((cpu, attr))
    }

    fn check_cpu(&self, cpu: usize) -> Result<()> {
        if cpu >= self.chip.num_cores() {
            Err(SimError::NoSuchCore {
                core: cpu,
                num_cores: self.chip.num_cores(),
            })
        } else {
            Ok(())
        }
    }

    /// Read a sysfs attribute; returns the string a real kernel would
    /// produce (frequencies in kHz, energies in µJ, powers in µW).
    pub fn read(&self, path: &str) -> Result<String> {
        if let Some((cpu, attr)) = Self::parse_cpu(path) {
            self.check_cpu(cpu)?;
            return match attr {
                "scaling_governor" => Ok(self.governor[cpu].clone()),
                "scaling_cur_freq" => Ok(self.chip.effective_freq(cpu).khz().to_string()),
                "scaling_setspeed" => Ok(self.chip.requested_freq(cpu).khz().to_string()),
                "scaling_min_freq" | "cpuinfo_min_freq" => {
                    Ok(self.chip.spec().grid.min().khz().to_string())
                }
                "scaling_max_freq" | "cpuinfo_max_freq" => {
                    Ok(self.chip.spec().grid.max().khz().to_string())
                }
                _ => Err(SimError::NoSuchPath(path.to_string())),
            };
        }
        match path {
            "/sys/class/powercap/intel-rapl:0/energy_uj" => {
                // The powercap framework widens the wrapping MSR counter;
                // we serve the raw counter scaled to µJ.
                let uj = (self.chip.package_energy_raw() as f64
                    * crate::rapl::ENERGY_UNIT.value()
                    * 1e6) as u64;
                Ok(uj.to_string())
            }
            "/sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw" => {
                match self.chip.rapl_limit() {
                    Some(w) => Ok(((w.value() * 1e6) as u64).to_string()),
                    None => Ok("0".to_string()),
                }
            }
            "/sys/class/powercap/intel-rapl:0/name" => Ok("package-0".to_string()),
            _ => Err(SimError::NoSuchPath(path.to_string())),
        }
    }

    /// Write a sysfs attribute.
    pub fn write(&mut self, path: &str, value: &str) -> Result<()> {
        let value = value.trim();
        if let Some((cpu, attr)) = Self::parse_cpu(path) {
            self.check_cpu(cpu)?;
            return match attr {
                "scaling_governor" => {
                    // Only the userspace governor is modeled; others would
                    // fight the daemon for control.
                    if value == "userspace" {
                        self.governor[cpu] = value.to_string();
                        Ok(())
                    } else {
                        Err(SimError::InvalidValue(format!(
                            "unsupported governor '{value}'"
                        )))
                    }
                }
                "scaling_setspeed" => {
                    if self.governor[cpu] != "userspace" {
                        return Err(SimError::InvalidValue(
                            "scaling_setspeed requires the userspace governor".to_string(),
                        ));
                    }
                    let khz: u64 = value
                        .parse()
                        .map_err(|_| SimError::InvalidValue(value.to_string()))?;
                    self.chip.set_requested_freq(cpu, KiloHertz(khz))
                }
                _ => Err(SimError::NoSuchPath(path.to_string())),
            };
        }
        match path {
            "/sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw" => {
                let uw: u64 = value
                    .parse()
                    .map_err(|_| SimError::InvalidValue(value.to_string()))?;
                if uw == 0 {
                    self.chip.set_rapl_limit(None)
                } else {
                    self.chip.set_rapl_limit(Some(Watts(uw as f64 / 1e6)))
                }
            }
            _ => Err(SimError::NoSuchPath(path.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;

    #[test]
    fn setspeed_roundtrip() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        let mut fs = SysfsTree::new(&mut chip);
        fs.write(
            "/sys/devices/system/cpu/cpu2/cpufreq/scaling_setspeed",
            "1500000\n",
        )
        .unwrap();
        assert_eq!(
            fs.read("/sys/devices/system/cpu/cpu2/cpufreq/scaling_setspeed")
                .unwrap(),
            "1500000"
        );
        drop(fs);
        assert_eq!(chip.requested_freq(2), KiloHertz::from_mhz(1500));
    }

    #[test]
    fn static_attributes() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        let fs = SysfsTree::new(&mut chip);
        assert_eq!(
            fs.read("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_min_freq")
                .unwrap(),
            "800000"
        );
        assert_eq!(
            fs.read("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq")
                .unwrap(),
            "3000000"
        );
        assert_eq!(
            fs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor")
                .unwrap(),
            "userspace"
        );
    }

    #[test]
    fn governor_validation() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        let mut fs = SysfsTree::new(&mut chip);
        assert!(matches!(
            fs.write(
                "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor",
                "ondemand"
            ),
            Err(SimError::InvalidValue(_))
        ));
        fs.write(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor",
            "userspace",
        )
        .unwrap();
    }

    #[test]
    fn rapl_powercap_files() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        let mut fs = SysfsTree::new(&mut chip);
        fs.write(
            "/sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw",
            "50000000",
        )
        .unwrap();
        assert_eq!(
            fs.read("/sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw")
                .unwrap(),
            "50000000"
        );
        fs.write(
            "/sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw",
            "0",
        )
        .unwrap();
        drop(fs);
        assert_eq!(chip.rapl_limit(), None);
    }

    #[test]
    fn bad_paths_and_values() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        let mut fs = SysfsTree::new(&mut chip);
        assert!(matches!(
            fs.read("/sys/devices/system/cpu/cpu0/cpufreq/nonsense"),
            Err(SimError::NoSuchPath(_))
        ));
        assert!(matches!(
            fs.read("/sys/devices/system/cpu/cpu99/cpufreq/scaling_cur_freq"),
            Err(SimError::NoSuchCore { .. })
        ));
        assert!(matches!(
            fs.write(
                "/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed",
                "fast"
            ),
            Err(SimError::InvalidValue(_))
        ));
        assert!(matches!(
            fs.read("/proc/cpuinfo"),
            Err(SimError::NoSuchPath(_))
        ));
    }

    #[test]
    fn energy_uj_advances() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        chip.set_load(0, crate::power::LoadDescriptor::nominal())
            .unwrap();
        chip.run_ticks(200, crate::units::Seconds(0.001));
        let fs = SysfsTree::new(&mut chip);
        let uj: u64 = fs
            .read("/sys/class/powercap/intel-rapl:0/energy_uj")
            .unwrap()
            .parse()
            .unwrap();
        assert!(uj > 1_000_000, "expected > 1 J, got {uj} µJ");
    }
}
