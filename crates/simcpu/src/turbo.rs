//! Opportunistic frequency scaling (TurboBoost / Precision Boost + XFR)
//! and AVX frequency offsets.
//!
//! When few cores are active the package has thermal and power headroom, so
//! the active cores may exceed the nominal maximum frequency (§2.1
//! "Opportunistic Scaling"). Conversely, wide-vector (AVX) instructions
//! draw so much current that the part caps AVX-executing cores to a lower
//! maximum — the effect that limits `cam4` to ~1.7 GHz while `gcc` reaches
//! 2.36 GHz in Figure 1 of the paper, and that makes the AVX benchmarks'
//! performance "peak at a relatively low 1.9 GHz" in Figure 2.

use crate::freq::KiloHertz;

/// Turbo/boost frequency limits as a function of active core count, for
/// scalar and AVX-executing cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurboTable {
    /// `limits[i]` is the per-core scalar maximum when `i + 1` cores are
    /// active. Must be non-increasing.
    limits: Vec<KiloHertz>,
    /// Same, for cores currently executing AVX code. Must be
    /// non-increasing and element-wise `<= limits`.
    avx_limits: Vec<KiloHertz>,
}

impl TurboTable {
    /// Build from explicit per-active-count limit vectors.
    ///
    /// # Panics
    /// Panics if the vectors are empty, different lengths, increase with
    /// active count, or the AVX limit exceeds the scalar limit anywhere.
    pub fn new(limits: Vec<KiloHertz>, avx_limits: Vec<KiloHertz>) -> TurboTable {
        assert!(!limits.is_empty(), "turbo table cannot be empty");
        assert_eq!(
            limits.len(),
            avx_limits.len(),
            "scalar and AVX tables must cover the same core counts"
        );
        for w in limits.windows(2) {
            assert!(w[0] >= w[1], "turbo limits must be non-increasing");
        }
        for w in avx_limits.windows(2) {
            assert!(w[0] >= w[1], "AVX turbo limits must be non-increasing");
        }
        for (l, a) in limits.iter().zip(&avx_limits) {
            assert!(a <= l, "AVX limit above scalar limit");
        }
        TurboTable { limits, avx_limits }
    }

    /// A flat table: no opportunistic scaling.
    pub fn flat(num_cores: usize, max: KiloHertz, avx_cap: KiloHertz) -> TurboTable {
        let n = num_cores.max(1);
        TurboTable::new(vec![max; n], vec![avx_cap.min(max); n])
    }

    /// Linear ramps from single-core peaks down to all-core limits,
    /// quantized to `step`.
    pub fn ramp(
        num_cores: usize,
        single_core_max: KiloHertz,
        all_core_max: KiloHertz,
        avx_single_max: KiloHertz,
        avx_all_max: KiloHertz,
        step: KiloHertz,
    ) -> TurboTable {
        assert!(num_cores >= 1);
        assert!(single_core_max >= all_core_max);
        assert!(avx_single_max >= avx_all_max);
        assert!(step.khz() > 0);
        let ramp_one = |hi: KiloHertz, lo: KiloHertz| -> Vec<KiloHertz> {
            (0..num_cores)
                .map(|i| {
                    let f = if num_cores == 1 {
                        hi.khz()
                    } else {
                        let span = hi.khz() - lo.khz();
                        hi.khz() - span * i as u64 / (num_cores as u64 - 1)
                    };
                    KiloHertz(f / step.khz() * step.khz())
                })
                .collect()
        };
        TurboTable::new(
            ramp_one(single_core_max, all_core_max),
            ramp_one(
                avx_single_max.min(single_core_max),
                avx_all_max.min(all_core_max),
            ),
        )
    }

    /// Per-core scalar maximum when `active` cores are in C0.
    /// `active == 0` is treated as 1 (the querying core is about to wake).
    /// Counts beyond the table clamp to the all-core limit.
    pub fn limit(&self, active: usize) -> KiloHertz {
        let idx = active.max(1).min(self.limits.len()) - 1;
        self.limits[idx]
    }

    /// Per-core AVX maximum when `active` cores are in C0.
    pub fn avx_limit(&self, active: usize) -> KiloHertz {
        let idx = active.max(1).min(self.avx_limits.len()) - 1;
        self.avx_limits[idx]
    }

    /// The all-core (sustained) scalar limit.
    pub fn all_core_limit(&self) -> KiloHertz {
        *self.limits.last().expect("non-empty")
    }

    /// The single-core (peak boost) scalar limit.
    pub fn peak(&self) -> KiloHertz {
        self.limits[0]
    }

    /// The all-core AVX limit (the cap the paper's Figure 1 shows for cam4).
    pub fn avx_cap(&self) -> KiloHertz {
        *self.avx_limits.last().expect("non-empty")
    }

    /// Resolve the cap for one core given the active count and whether it
    /// is executing AVX code.
    pub fn cap_for(&self, active: usize, avx: bool) -> KiloHertz {
        if avx {
            self.avx_limit(active)
        } else {
            self.limit(active)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skylake_like() -> TurboTable {
        TurboTable::ramp(
            10,
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(2400),
            KiloHertz::from_mhz(1900),
            KiloHertz::from_mhz(1700),
            KiloHertz::from_mhz(100),
        )
    }

    #[test]
    fn ramp_endpoints() {
        let t = skylake_like();
        assert_eq!(t.peak(), KiloHertz::from_mhz(3000));
        assert_eq!(t.all_core_limit(), KiloHertz::from_mhz(2400));
        assert_eq!(t.avx_limit(1), KiloHertz::from_mhz(1900));
        assert_eq!(t.avx_cap(), KiloHertz::from_mhz(1700));
    }

    #[test]
    fn limits_monotone_in_active_count() {
        let t = skylake_like();
        let mut prev = KiloHertz(u64::MAX);
        let mut prev_avx = KiloHertz(u64::MAX);
        for n in 1..=10 {
            assert!(t.limit(n) <= prev);
            assert!(t.avx_limit(n) <= prev_avx);
            assert!(t.avx_limit(n) <= t.limit(n));
            prev = t.limit(n);
            prev_avx = t.avx_limit(n);
        }
    }

    #[test]
    fn limit_edge_counts() {
        let t = skylake_like();
        assert_eq!(t.limit(0), t.limit(1));
        assert_eq!(t.limit(64), t.all_core_limit());
        assert_eq!(t.avx_limit(64), t.avx_cap());
    }

    #[test]
    fn ramp_quantized_to_step() {
        let t = skylake_like();
        for n in 1..=10 {
            assert_eq!(t.limit(n).khz() % 100_000, 0, "unquantized at {n}");
            assert_eq!(t.avx_limit(n).khz() % 100_000, 0);
        }
    }

    #[test]
    fn cap_for_selects_table() {
        let t = skylake_like();
        assert_eq!(t.cap_for(10, false), KiloHertz::from_mhz(2400));
        assert_eq!(t.cap_for(10, true), KiloHertz::from_mhz(1700));
        assert_eq!(t.cap_for(1, true), KiloHertz::from_mhz(1900));
    }

    #[test]
    fn flat_table() {
        let t = TurboTable::flat(4, KiloHertz::from_mhz(2000), KiloHertz::from_mhz(1500));
        for n in 1..=4 {
            assert_eq!(t.limit(n), KiloHertz::from_mhz(2000));
            assert_eq!(t.avx_limit(n), KiloHertz::from_mhz(1500));
        }
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn rejects_increasing_limits() {
        let _ = TurboTable::new(
            vec![KiloHertz::from_mhz(2000), KiloHertz::from_mhz(2500)],
            vec![KiloHertz::from_mhz(1500), KiloHertz::from_mhz(1500)],
        );
    }

    #[test]
    #[should_panic(expected = "AVX limit above scalar")]
    fn rejects_avx_above_scalar() {
        let _ = TurboTable::new(
            vec![KiloHertz::from_mhz(2000)],
            vec![KiloHertz::from_mhz(2500)],
        );
    }
}
