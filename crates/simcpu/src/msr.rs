//! Emulated model-specific register (MSR) interface.
//!
//! Real control daemons reach the hardware through `/dev/cpu/<n>/msr`
//! (§2.1 "Model-specific register"). [`MsrBus`] decodes the same register
//! numbers against the simulated chip, so code written against this
//! interface would port to a real MSR backend unchanged. Vendor-specific
//! registers follow the documented Intel and AMD layouts.

use crate::chip::Chip;
use crate::error::{Result, SimError};
use crate::freq::KiloHertz;
use crate::platform::Vendor;
use crate::units::Watts;

/// Architectural (vendor-neutral) MSRs.
pub mod addr {
    /// IA32_TIME_STAMP_COUNTER.
    pub const TSC: u32 = 0x10;
    /// IA32_MPERF: base-clock cycles while in C0.
    pub const MPERF: u32 = 0xE7;
    /// IA32_APERF: actual-clock cycles while in C0.
    pub const APERF: u32 = 0xE8;
    /// IA32_PERF_STATUS: current operating point (read-only).
    pub const PERF_STATUS: u32 = 0x198;
    /// IA32_PERF_CTL: requested operating point.
    pub const PERF_CTL: u32 = 0x199;
    /// IA32_FIXED_CTR0: retired instructions.
    pub const FIXED_CTR0: u32 = 0x309;
    /// MSR_PKG_POWER_LIMIT (Intel RAPL).
    pub const PKG_POWER_LIMIT: u32 = 0x610;
    /// MSR_PKG_ENERGY_STATUS (Intel RAPL).
    pub const PKG_ENERGY_STATUS: u32 = 0x611;
    /// MSR_PP0_ENERGY_STATUS (Intel RAPL, core domain).
    pub const PP0_ENERGY_STATUS: u32 = 0x639;
    /// AMD core energy counter (Family 17h).
    pub const AMD_CORE_ENERGY: u32 = 0xC001_029A;
    /// AMD package energy counter (Family 17h).
    pub const AMD_PKG_ENERGY: u32 = 0xC001_029B;
    /// AMD P-state control (Family 17h, simplified frequency encoding).
    pub const AMD_PSTATE_CTL: u32 = 0xC001_0062;
}

/// RAPL power-limit encoding: watts are programmed in 1/8 W units in bits
/// 14:0, with bit 15 as the enable flag (a simplification of the full
/// MSR_PKG_POWER_LIMIT layout that keeps the same unit system).
const POWER_LIMIT_ENABLE: u64 = 1 << 15;
const POWER_LIMIT_MASK: u64 = 0x7FFF;

/// An MSR access path to a simulated chip.
///
/// Register semantics follow the hardware: per-core registers take the
/// core index; package registers ignore it.
pub struct MsrBus<'a> {
    chip: &'a mut Chip,
}

impl<'a> MsrBus<'a> {
    /// Attach to a chip.
    pub fn new(chip: &'a mut Chip) -> MsrBus<'a> {
        MsrBus { chip }
    }

    /// Read an MSR on `core`.
    pub fn read(&self, core: usize, msr: u32) -> Result<u64> {
        if core >= self.chip.num_cores() {
            return Err(SimError::NoSuchCore {
                core,
                num_cores: self.chip.num_cores(),
            });
        }
        let vendor = self.chip.spec().vendor;
        match msr {
            addr::TSC => Ok(self.chip.counters(core).tsc),
            addr::MPERF => Ok(self.chip.counters(core).mperf),
            addr::APERF => Ok(self.chip.counters(core).aperf),
            addr::FIXED_CTR0 => Ok(self.chip.counters(core).instructions),
            addr::PERF_STATUS => Ok(encode_perf(vendor, self.chip.effective_freq(core))),
            addr::PERF_CTL | addr::AMD_PSTATE_CTL => {
                Ok(encode_perf(vendor, self.chip.requested_freq(core)))
            }
            addr::PKG_ENERGY_STATUS if vendor == Vendor::Intel => {
                Ok(self.chip.package_energy_raw() as u64)
            }
            addr::PP0_ENERGY_STATUS if vendor == Vendor::Intel => {
                Ok(self.chip.cores_energy_raw() as u64)
            }
            addr::PKG_POWER_LIMIT if vendor == Vendor::Intel => {
                let w = self.chip.rapl_limit();
                Ok(match w {
                    Some(w) => ((w.value() * 8.0) as u64 & POWER_LIMIT_MASK) | POWER_LIMIT_ENABLE,
                    None => 0,
                })
            }
            addr::AMD_PKG_ENERGY if vendor == Vendor::Amd => {
                Ok(self.chip.package_energy_raw() as u64)
            }
            addr::AMD_CORE_ENERGY if vendor == Vendor::Amd => {
                Ok(self.chip.core_energy_raw(core)? as u64)
            }
            _ => Err(SimError::InvalidMsr { addr: msr }),
        }
    }

    /// Write an MSR on `core`.
    pub fn write(&mut self, core: usize, msr: u32, value: u64) -> Result<()> {
        let vendor = self.chip.spec().vendor;
        match msr {
            addr::PERF_CTL | addr::AMD_PSTATE_CTL => {
                let f = decode_perf(vendor, value);
                self.chip.set_requested_freq(core, f)
            }
            addr::PKG_POWER_LIMIT if vendor == Vendor::Intel => {
                if value & POWER_LIMIT_ENABLE != 0 {
                    let w = Watts((value & POWER_LIMIT_MASK) as f64 / 8.0);
                    self.chip.set_rapl_limit(Some(w))
                } else {
                    self.chip.set_rapl_limit(None)
                }
            }
            addr::TSC
            | addr::MPERF
            | addr::APERF
            | addr::FIXED_CTR0
            | addr::PERF_STATUS
            | addr::PKG_ENERGY_STATUS
            | addr::PP0_ENERGY_STATUS
            | addr::AMD_PKG_ENERGY
            | addr::AMD_CORE_ENERGY => Err(SimError::ReadOnlyMsr { addr: msr }),
            _ => Err(SimError::InvalidMsr { addr: msr }),
        }
    }
}

/// Encode a frequency in the vendor's P-state request format:
/// Intel uses 100 MHz multiples in bits 15:8; AMD Family 17h effectively
/// exposes 25 MHz granularity (modeled in the low 16 bits).
fn encode_perf(vendor: Vendor, f: KiloHertz) -> u64 {
    match vendor {
        Vendor::Intel => (f.mhz() / 100) << 8,
        Vendor::Amd => f.mhz() / 25,
    }
}

/// Inverse of [`encode_perf`].
fn decode_perf(vendor: Vendor, value: u64) -> KiloHertz {
    match vendor {
        Vendor::Intel => KiloHertz::from_mhz(((value >> 8) & 0xFF) * 100),
        Vendor::Amd => KiloHertz::from_mhz((value & 0xFFFF) * 25),
    }
}

#[cfg(test)]
#[allow(clippy::drop_non_drop)] // drop() ends MsrBus's &mut Chip borrows
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;
    use crate::power::LoadDescriptor;
    use crate::units::Seconds;

    #[test]
    fn perf_ctl_roundtrip_intel() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        let mut bus = MsrBus::new(&mut chip);
        let v = encode_perf(Vendor::Intel, KiloHertz::from_mhz(1800));
        bus.write(3, addr::PERF_CTL, v).unwrap();
        assert_eq!(bus.read(3, addr::PERF_CTL).unwrap(), v);
        drop(bus);
        assert_eq!(chip.requested_freq(3), KiloHertz::from_mhz(1800));
    }

    #[test]
    fn perf_ctl_roundtrip_amd_25mhz() {
        let mut chip = Chip::new(PlatformSpec::ryzen());
        let mut bus = MsrBus::new(&mut chip);
        let v = encode_perf(Vendor::Amd, KiloHertz::from_mhz(2125));
        bus.write(0, addr::AMD_PSTATE_CTL, v).unwrap();
        drop(bus);
        assert_eq!(chip.requested_freq(0), KiloHertz::from_mhz(2125));
    }

    #[test]
    fn rapl_limit_via_msr() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        {
            let mut bus = MsrBus::new(&mut chip);
            let raw = ((50 * 8) as u64) | POWER_LIMIT_ENABLE;
            bus.write(0, addr::PKG_POWER_LIMIT, raw).unwrap();
        }
        assert_eq!(chip.rapl_limit(), Some(Watts(50.0)));
        {
            let bus = MsrBus::new(&mut chip);
            let v = bus.read(0, addr::PKG_POWER_LIMIT).unwrap();
            assert_eq!(v & POWER_LIMIT_MASK, 400);
            assert_ne!(v & POWER_LIMIT_ENABLE, 0);
        }
        {
            let mut bus = MsrBus::new(&mut chip);
            bus.write(0, addr::PKG_POWER_LIMIT, 0).unwrap();
        }
        assert_eq!(chip.rapl_limit(), None);
    }

    #[test]
    fn counters_via_msr() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        chip.set_load(0, LoadDescriptor::nominal()).unwrap();
        chip.add_instructions(0, 12345).unwrap();
        chip.run_ticks(100, Seconds(0.001));
        let bus = MsrBus::new(&mut chip);
        assert!(bus.read(0, addr::APERF).unwrap() > 0);
        assert!(bus.read(0, addr::MPERF).unwrap() > 0);
        assert!(bus.read(0, addr::TSC).unwrap() > 0);
        assert_eq!(bus.read(0, addr::FIXED_CTR0).unwrap(), 12345);
        assert!(bus.read(0, addr::PKG_ENERGY_STATUS).unwrap() > 0);
    }

    #[test]
    fn vendor_specific_registers_gated() {
        let mut sky = Chip::new(PlatformSpec::skylake());
        let bus = MsrBus::new(&mut sky);
        assert!(matches!(
            bus.read(0, addr::AMD_PKG_ENERGY),
            Err(SimError::InvalidMsr { .. })
        ));
        drop(bus);

        let mut ryz = Chip::new(PlatformSpec::ryzen());
        let bus = MsrBus::new(&mut ryz);
        assert!(matches!(
            bus.read(0, addr::PKG_ENERGY_STATUS),
            Err(SimError::InvalidMsr { .. })
        ));
        assert!(bus.read(0, addr::AMD_CORE_ENERGY).is_ok());
    }

    #[test]
    fn read_only_registers_reject_writes() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        let mut bus = MsrBus::new(&mut chip);
        assert!(matches!(
            bus.write(0, addr::APERF, 1),
            Err(SimError::ReadOnlyMsr { .. })
        ));
        assert!(matches!(
            bus.write(0, addr::PKG_ENERGY_STATUS, 1),
            Err(SimError::ReadOnlyMsr { .. })
        ));
    }

    #[test]
    fn invalid_core_and_msr() {
        let mut chip = Chip::new(PlatformSpec::skylake());
        let bus = MsrBus::new(&mut chip);
        assert!(matches!(
            bus.read(99, addr::TSC),
            Err(SimError::NoSuchCore { .. })
        ));
        assert!(matches!(
            bus.read(0, 0xDEAD),
            Err(SimError::InvalidMsr { .. })
        ));
    }
}
