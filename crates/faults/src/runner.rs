//! The chaos experiment: daemon vs fault plan, scored on ground truth.
//!
//! [`ChaosExperiment`] runs the same workload mix, fault schedule and
//! package budget through one of two controller stacks:
//!
//! * **resilient** — [`ResilientDaemon`] fed by a [`FaultObserver`]
//!   with retries, health tracking and the degradation ladder;
//! * **baseline** — the plain [`Daemon`] driven the way naïve tooling
//!   actually behaves when reads fail: the last value is silently
//!   reused ("stale fill"), writes are fire-and-forget, nothing is
//!   retried or read back.
//!
//! The scoreboard ([`ChaosResult`]) is computed from the *inner* chip's
//! ground-truth power, not from the (possibly corrupted) telemetry the
//! controllers saw: per-interval cap violations, the worst sustained
//! violation run, Jain fairness over share-normalized throughput, and
//! starvation. The baseline's signature failure is blind budget raising:
//! during a package-telemetry outage the stale reading sits below the
//! limit forever, so the controller keeps granting frequency while true
//! power climbs unchecked. The resilient stack demotes to a uniform
//! last-good cap instead and keeps the budget enforced.

use std::sync::Arc;

use pap_simcpu::chiplike::ChipLike;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_simcpu::widechip::WideChip;
use pap_telemetry::counters::CoreRates;
use pap_telemetry::sampler::{CoreSample, Sample};
use pap_telemetry::stats::jain;
use pap_workloads::engine::RunningApp;
use pap_workloads::phases::PhasedProfile;
use pap_workloads::profile::WorkloadProfile;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority, TranslationKind};
use powerd::daemon::{ControlAction, Daemon};
use powerd::resilience::{
    LadderEvent, Observation, ResilienceConfig, ResilientDaemon, RetryPolicy,
};

use crate::chip::{FaultError, FaultyChip, InjectionStats};
use crate::observe::FaultObserver;
use crate::plan::FaultPlan;

/// Per-application outcome of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosAppResult {
    /// Application name.
    pub name: String,
    /// Pinned core.
    pub core: usize,
    /// Configured shares.
    pub shares: u32,
    /// Total instructions retired over the run.
    pub retired: u64,
    /// Share-normalized throughput (retired / shares), the quantity
    /// Jain fairness is computed over.
    pub normalized: f64,
}

/// Scoreboard of one chaos run, computed from ground truth.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// Control intervals scored (after warm-up).
    pub intervals: usize,
    /// Intervals where true package power exceeded limit + slack.
    pub violations: usize,
    /// Number of violation runs at least `grace` intervals long. This is
    /// the cap-violation verdict: a 1 Hz controller cannot undo a single
    /// interval of overshoot, but nothing excuses a sustained one.
    pub sustained_violations: usize,
    /// Longest consecutive violation run.
    pub longest_violation_run: usize,
    /// Worst overshoot above the limit (W) across scored intervals.
    pub worst_over_watts: f64,
    /// Mean true package power over scored intervals.
    pub mean_power: Watts,
    /// Jain fairness index over share-normalized throughput.
    pub jain: f64,
    /// Apps whose share-normalized throughput fell below 2 % of the best
    /// (starved by the controller, not by the budget).
    pub starved: usize,
    /// Ladder moves (empty for the baseline).
    pub transitions: Vec<LadderEvent>,
    /// What the harness injected.
    pub injected: InjectionStats,
    /// Per-app outcomes, in configuration order.
    pub apps: Vec<ChaosAppResult>,
    /// Ground-truth mean package power per scored interval (post-warmup,
    /// in scoring order) — the raw series behind the violation counts,
    /// kept for post-mortems of failed chaos runs.
    pub interval_powers: Vec<f64>,
}

struct Entry {
    spec: AppSpec,
    profile: WorkloadProfile,
}

/// Builder for chaos runs. Defaults: the per-core-DVFS server platform
/// from [`crate::chaos_platform`], power shares (the most
/// telemetry-hungry policy, so the whole ladder is reachable), a 1 s
/// control interval and a 2 ms simulation tick.
pub struct ChaosExperiment {
    platform: PlatformSpec,
    policy: PolicyKind,
    limit: Watts,
    duration: Seconds,
    tick: Seconds,
    plan: FaultPlan,
    seed: u64,
    resilience: bool,
    rcfg: ResilienceConfig,
    translation: TranslationKind,
    warmup_intervals: usize,
    slack: Watts,
    grace: usize,
    entries: Vec<Entry>,
}

impl ChaosExperiment {
    /// Start building a chaos run.
    pub fn new(platform: PlatformSpec, policy: PolicyKind, limit: Watts) -> ChaosExperiment {
        ChaosExperiment {
            platform,
            policy,
            limit,
            duration: Seconds(120.0),
            tick: Seconds(0.002),
            plan: FaultPlan::new(),
            seed: 42,
            resilience: true,
            rcfg: ResilienceConfig::default(),
            translation: TranslationKind::Naive,
            warmup_intervals: 5,
            slack: Watts(2.0),
            grace: 5,
            entries: Vec::new(),
        }
    }

    /// Add an application on the next free core.
    pub fn app(mut self, name: impl Into<String>, profile: WorkloadProfile, shares: u32) -> Self {
        let core = self.entries.len();
        let baseline = profile.ips(powerd::runner::standalone_freq(&self.platform, &profile));
        self.entries.push(Entry {
            spec: AppSpec::new(name, core)
                .with_priority(Priority::High)
                .with_shares(shares)
                .with_baseline_ips(baseline),
            profile,
        });
        self
    }

    /// Set the run duration.
    pub fn duration(mut self, d: Seconds) -> Self {
        self.duration = d;
        self
    }

    /// Set the simulation tick.
    pub fn tick(mut self, t: Seconds) -> Self {
        self.tick = t;
        self
    }

    /// Install the fault schedule.
    pub fn plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Seed for workload phases and injected noise (the fault *schedule*
    /// is fixed by the plan; see [`FaultPlan::chaos`] for seeding that).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run with (`true`) or without (`false`) the resilience layer.
    pub fn resilience(mut self, on: bool) -> Self {
        self.resilience = on;
        self
    }

    /// Override the resilience tuning.
    pub fn resilience_config(mut self, rcfg: ResilienceConfig) -> Self {
        self.rcfg = rcfg;
        self
    }

    /// Select the budget-to-frequency translation (naïve α by default).
    pub fn translation(mut self, kind: TranslationKind) -> Self {
        self.translation = kind;
        self
    }

    /// Run to completion on the default [`WideChip`] ground truth.
    pub fn run(self) -> Result<ChaosResult, String> {
        self.run_on::<WideChip>()
    }

    /// Run to completion with an explicit chip backend. The chaos
    /// regression in `tests/chaos.rs` drives the same schedule through
    /// both backends and asserts identical verdicts.
    pub fn run_on<C: ChipLike>(self) -> Result<ChaosResult, String> {
        let mut config = DaemonConfig::new(
            self.policy,
            self.limit,
            self.entries.iter().map(|e| e.spec.clone()).collect(),
        );
        config.translation = self.translation;
        let num_cores = self.platform.num_cores;
        let interval = config.control_interval;

        let mut fchip = FaultyChip::new(
            C::shared(Arc::new(self.platform.clone())),
            self.plan.clone(),
            self.seed ^ 0x5EED_F00D,
        );
        let mut apps: Vec<RunningApp> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                RunningApp::from_phased(
                    PhasedProfile::with_generated_phases(
                        e.profile,
                        self.seed ^ ((i as u64) << 8),
                        0.1,
                    ),
                    true,
                )
            })
            .collect();

        enum Ctl {
            Resilient(Box<ResilientDaemon>),
            Baseline(Box<Daemon>, StaleFill),
        }
        let mut ctl = if self.resilience {
            Ctl::Resilient(Box::new(
                ResilientDaemon::new(config, &self.platform, self.rcfg)
                    .map_err(|e| e.to_string())?,
            ))
        } else {
            Ctl::Baseline(
                Box::new(Daemon::new(config, &self.platform).map_err(|e| e.to_string())?),
                StaleFill::new(num_cores, self.limit),
            )
        };
        let retry = if self.resilience {
            self.rcfg.retry
        } else {
            RetryPolicy::none()
        };
        let mut observer = FaultObserver::new(&mut fchip, retry);

        let initial = match &mut ctl {
            Ctl::Resilient(rd) => rd.initial(),
            Ctl::Baseline(d, _) => d.initial(),
        };
        let mut parked = initial.parked.clone();
        apply(&mut fchip, &initial, |core| {
            if let Ctl::Resilient(rd) = &mut ctl {
                rd.report_write_error(core);
            }
        })?;

        let mut t = 0.0;
        let mut next_control = interval.value();
        let mut energy_acc = 0.0;
        let mut interval_powers: Vec<f64> = Vec::new();
        while t < self.duration.value() {
            for (i, app) in apps.iter_mut().enumerate() {
                let core = self.entries[i].spec.core;
                if parked[core] {
                    continue;
                }
                let f = fchip.effective_freq(core);
                let out = app.advance(self.tick, f);
                fchip.set_load(core, out.load).map_err(|e| e.to_string())?;
                fchip
                    .add_instructions(core, out.instructions)
                    .map_err(|e| e.to_string())?;
            }
            fchip.tick(self.tick);
            energy_acc += fchip.true_package_power().value() * self.tick.value();
            t += self.tick.value();

            if t + 1e-9 >= next_control {
                next_control += interval.value();
                interval_powers.push(energy_acc / interval.value());
                energy_acc = 0.0;

                let obs = observer.observe(&mut fchip);
                let action = match &mut ctl {
                    Ctl::Resilient(rd) => rd.step(&obs),
                    Ctl::Baseline(d, fill) => d.step(&fill.backfill(&obs)),
                };
                parked = action.parked.clone();
                apply(&mut fchip, &action, |core| {
                    if let Ctl::Resilient(rd) = &mut ctl {
                        rd.report_write_error(core);
                    }
                })?;
            }
        }

        // Score on ground truth.
        let scored = interval_powers
            .iter()
            .skip(self.warmup_intervals)
            .copied()
            .collect::<Vec<f64>>();
        let threshold = self.limit.value() + self.slack.value();
        let mut violations = 0;
        let mut sustained = 0;
        let mut longest = 0usize;
        let mut run = 0usize;
        let mut worst: f64 = 0.0;
        for &p in &scored {
            if p > threshold {
                violations += 1;
                run += 1;
                if run == self.grace {
                    sustained += 1;
                }
                longest = longest.max(run);
                worst = worst.max(p - self.limit.value());
            } else {
                run = 0;
            }
        }
        let mean_power = Watts(scored.iter().sum::<f64>() / scored.len().max(1) as f64);

        let app_results: Vec<ChaosAppResult> = self
            .entries
            .iter()
            .zip(&apps)
            .map(|(e, app)| {
                let retired = app.total_retired();
                ChaosAppResult {
                    name: e.spec.name.clone(),
                    core: e.spec.core,
                    shares: e.spec.shares,
                    retired,
                    normalized: retired as f64 / e.spec.shares as f64,
                }
            })
            .collect();
        let normalized: Vec<f64> = app_results.iter().map(|a| a.normalized).collect();
        let best = normalized.iter().cloned().fold(0.0, f64::max);
        let starved = normalized
            .iter()
            .filter(|&&n| best > 0.0 && n < best * 0.02)
            .count();

        Ok(ChaosResult {
            intervals: scored.len(),
            violations,
            sustained_violations: sustained,
            longest_violation_run: longest,
            worst_over_watts: worst,
            mean_power,
            jain: jain(&normalized),
            starved,
            transitions: match &ctl {
                Ctl::Resilient(rd) => rd.transitions().to_vec(),
                Ctl::Baseline(..) => Vec::new(),
            },
            injected: fchip.stats(),
            apps: app_results,
            interval_powers: scored,
        })
    }
}

/// Write an action to the faulty chip. Injected write failures go to
/// `on_write_error` (the resilient stack forwards them to the daemon;
/// the baseline ignores them); simulator errors are caller bugs and
/// abort the run.
fn apply<C: ChipLike>(
    fchip: &mut FaultyChip<C>,
    action: &ControlAction,
    mut on_write_error: impl FnMut(usize),
) -> Result<(), String> {
    for core in 0..action.freqs.len() {
        match fchip.write_requested(core, action.freqs[core]) {
            Ok(()) => {}
            Err(FaultError::Sim(e)) => return Err(e.to_string()),
            Err(_) => on_write_error(core),
        }
        fchip
            .set_parked(core, action.parked[core])
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// The baseline's observation handling: silently reuse the last value
/// for anything unreadable — no retries, no health, no read-back.
struct StaleFill {
    last_pkg: Watts,
    last_rates: Vec<CoreRates>,
    last_power: Vec<Option<Watts>>,
    last_requested: Vec<KiloHertz>,
}

impl StaleFill {
    fn new(num_cores: usize, limit: Watts) -> StaleFill {
        StaleFill {
            // Until the first real reading, assume we are exactly at
            // budget (the charitable choice for the baseline).
            last_pkg: limit,
            last_rates: vec![
                CoreRates {
                    active_freq: KiloHertz::ZERO,
                    c0_residency: 0.0,
                    ips: 0.0,
                };
                num_cores
            ],
            last_power: vec![None; num_cores],
            last_requested: vec![KiloHertz::ZERO; num_cores],
        }
    }

    fn backfill(&mut self, obs: &Observation) -> Sample {
        if let Some(p) = obs.package_power {
            self.last_pkg = p;
        }
        let cores = obs
            .cores
            .iter()
            .enumerate()
            .map(|(c, co)| {
                if let Some(r) = co.rates {
                    self.last_rates[c] = r;
                }
                if let Some(p) = co.power {
                    self.last_power[c] = Some(p);
                }
                if let Some(f) = co.requested {
                    self.last_requested[c] = f;
                }
                CoreSample {
                    rates: self.last_rates[c],
                    power: self.last_power[c],
                    requested_freq: self.last_requested[c],
                }
            })
            .collect();
        Sample {
            time: obs.time,
            interval: obs.interval,
            package_power: self.last_pkg,
            cores_power: self.last_pkg,
            cores,
        }
    }
}

#[cfg(test)]
mod tests {
    // The heavyweight end-to-end assertions live in tests/faults_e2e.rs
    // and the ext_faults bench; here we only prove the harness runs and
    // scores a clean plan as clean.
    use super::*;
    use crate::chaos_platform;
    use pap_workloads::spec;

    #[test]
    fn clean_run_has_no_violations_and_high_fairness() {
        let r = ChaosExperiment::new(chaos_platform(), PolicyKind::PowerShares, Watts(30.0))
            .app("cactus", spec::CACTUS_BSSN, 70)
            .app("leela", spec::LEELA, 30)
            .app("gcc", spec::GCC, 50)
            .duration(Seconds(30.0))
            .run()
            .unwrap();
        assert_eq!(r.sustained_violations, 0, "{r:?}");
        assert_eq!(r.starved, 0);
        assert!(r.jain > 0.6, "jain {}", r.jain);
        assert!(r.transitions.is_empty(), "no faults, no ladder moves");
        assert_eq!(r.injected, InjectionStats::default());
    }
}
