//! Reproducible fault schedules.
//!
//! A [`FaultPlan`] is a list of [`FaultSpec`] entries: *what* breaks
//! ([`FaultKind`]), *when* it starts, and for *how long* (`None` =
//! persistent until the end of the run). Plans are plain data — they can
//! be scripted by tests that need an exact failure choreography, or
//! generated pseudo-randomly from a seed via [`FaultPlan::chaos`] so a
//! chaos bench is reproducible run-to-run.

use pap_simcpu::units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Reads of the package energy MSR fail (`EIO`-style).
    PkgEnergyReadError,
    /// Reads of the package energy MSR fail *independently per attempt*
    /// with probability `prob` — the flaky-bus failure mode that bounded
    /// retry-with-backoff exists to absorb.
    PkgEnergyFlaky {
        /// Per-attempt failure probability.
        prob: f64,
    },
    /// Reads of one core's energy MSR fail independently per attempt.
    CoreEnergyFlaky {
        /// Affected core.
        core: usize,
        /// Per-attempt failure probability.
        prob: f64,
    },
    /// Reads of one core's energy MSR fail.
    CoreEnergyReadError {
        /// Affected core.
        core: usize,
    },
    /// One core's energy readings jitter: each read is perturbed by a
    /// uniform offset in `[-amp_watts, amp_watts]` joules, so a power
    /// value derived over a 1 s interval moves by up to ±2·`amp_watts` W.
    CoreEnergyNoise {
        /// Affected core.
        core: usize,
        /// Jitter amplitude (joules per read ≈ watts over 1 s).
        amp_watts: f64,
    },
    /// Reads of one core's fixed counters (APERF/MPERF/instructions) and
    /// of its frequency-request register fail.
    CounterReadError {
        /// Affected core.
        core: usize,
    },
    /// Frequency writes to one core error out (detectably).
    FreqWriteError {
        /// Affected core.
        core: usize,
    },
    /// Frequency writes to one core are accepted but silently dropped:
    /// the call succeeds, the register keeps its old value. Only a
    /// read-back reveals the write did not take.
    FreqWriteStuck {
        /// Affected core.
        core: usize,
    },
    /// One-shot: the package energy counter jumps forward by
    /// `delta_units` raw units (2⁻¹⁴ J each) at `start`.
    EnergyGlitch {
        /// Raw counter units added.
        delta_units: u32,
    },
    /// One-shot: the package energy counter takes a spurious
    /// half-range jump at `start`, as if it wrapped mid-interval.
    EnergyRollover,
    /// Firmware thermal emergency: every core is clamped to the minimum
    /// P-state for the duration; software requests are latched but
    /// ineffective until it lifts.
    ThermalEmergency,
}

/// A scheduled fault: kind + activation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What breaks.
    pub kind: FaultKind,
    /// When it starts.
    pub start: Seconds,
    /// How long it lasts; `None` = persists to the end of the run.
    /// Ignored by the one-shot kinds ([`FaultKind::EnergyGlitch`],
    /// [`FaultKind::EnergyRollover`]), which fire once at `start`.
    pub duration: Option<Seconds>,
}

impl FaultSpec {
    /// Whether the fault window covers time `t`.
    pub fn active_at(&self, t: Seconds) -> bool {
        if t < self.start {
            return false;
        }
        match self.duration {
            None => true,
            Some(d) => t.value() < self.start.value() + d.value(),
        }
    }
}

/// Knobs for [`FaultPlan::chaos`]: how many of each fault class to
/// schedule. The default is a moderately hostile mix that exercises the
/// whole degradation ladder in a ~2 minute run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosProfile {
    /// Short (1–3 s) read-error windows on package or core energy,
    /// mostly below the health tracker's demotion threshold.
    pub transient_read_faults: usize,
    /// Schedule a long window of probabilistically flaky package-energy
    /// reads (retries rescue most of them).
    pub flaky_reads: bool,
    /// Schedule one long per-core energy outage (drives PowerShares →
    /// FrequencyShares).
    pub core_power_outage: bool,
    /// Schedule one long package energy outage (drives any policy →
    /// uniform cap).
    pub package_outage: bool,
    /// Stuck-write windows (writes accepted but dropped).
    pub stuck_writes: usize,
    /// Erroring-write windows.
    pub write_errors: usize,
    /// Cores with persistent energy-reading jitter.
    pub noise_cores: usize,
    /// One-shot energy-counter glitches.
    pub glitches: usize,
    /// Schedule one spurious counter rollover.
    pub rollover: bool,
    /// Thermal-emergency windows.
    pub thermal_events: usize,
}

impl Default for ChaosProfile {
    fn default() -> ChaosProfile {
        ChaosProfile {
            transient_read_faults: 6,
            flaky_reads: true,
            core_power_outage: true,
            package_outage: true,
            stuck_writes: 2,
            write_errors: 1,
            noise_cores: 2,
            glitches: 2,
            rollover: true,
            thermal_events: 1,
        }
    }
}

/// A reproducible fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Scheduled faults, in no particular order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (a perfectly healthy machine).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append a fault.
    pub fn push(&mut self, kind: FaultKind, start: Seconds, duration: Option<Seconds>) {
        self.faults.push(FaultSpec {
            kind,
            start,
            duration,
        });
    }

    /// Builder-style [`FaultPlan::push`].
    pub fn with(mut self, kind: FaultKind, start: Seconds, duration: Option<Seconds>) -> FaultPlan {
        self.push(kind, start, duration);
        self
    }

    /// Faults active at time `t` (one-shots report active within their
    /// window but fire only once; see [`FaultSpec::duration`]).
    pub fn active_at(&self, t: Seconds) -> impl Iterator<Item = &FaultSpec> {
        self.faults.iter().filter(move |f| f.active_at(t))
    }

    /// Generate a pseudo-random plan over `horizon` for a chip with
    /// `num_cores` cores. Deterministic per `seed`: the same seed always
    /// yields the same schedule, which is what makes a chaos bench a
    /// regression test. Faults are placed in `[5 %, 85 %]` of the
    /// horizon so the run starts clean and ends with room to recover.
    pub fn chaos(
        seed: u64,
        profile: &ChaosProfile,
        horizon: Seconds,
        num_cores: usize,
    ) -> FaultPlan {
        assert!(num_cores > 0, "chaos plan needs at least one core");
        let mut rng = StdRng::seed_from_u64(seed);
        let h = horizon.value();
        let mut plan = FaultPlan::new();

        for _ in 0..profile.transient_read_faults {
            let start = Seconds(rng.gen_range(0.05..0.85) * h);
            let dur = Some(Seconds(rng.gen_range(1.0..3.0)));
            let kind = if rng.gen_bool(0.5) {
                FaultKind::PkgEnergyReadError
            } else {
                FaultKind::CoreEnergyReadError {
                    core: rng.gen_range(0..num_cores),
                }
            };
            plan.push(kind, start, dur);
        }
        if profile.flaky_reads {
            plan.push(
                FaultKind::PkgEnergyFlaky {
                    prob: rng.gen_range(0.2..0.4),
                },
                Seconds(rng.gen_range(0.05..0.15) * h),
                Some(Seconds(rng.gen_range(0.20..0.35) * h)),
            );
            plan.push(
                FaultKind::CoreEnergyFlaky {
                    core: rng.gen_range(0..num_cores),
                    prob: rng.gen_range(0.2..0.4),
                },
                Seconds(rng.gen_range(0.05..0.15) * h),
                Some(Seconds(rng.gen_range(0.20..0.35) * h)),
            );
        }
        if profile.core_power_outage {
            plan.push(
                FaultKind::CoreEnergyReadError {
                    core: rng.gen_range(0..num_cores),
                },
                Seconds(rng.gen_range(0.10..0.20) * h),
                Some(Seconds(rng.gen_range(0.15..0.25) * h)),
            );
        }
        if profile.package_outage {
            plan.push(
                FaultKind::PkgEnergyReadError,
                Seconds(rng.gen_range(0.45..0.55) * h),
                Some(Seconds(rng.gen_range(0.15..0.20) * h)),
            );
        }
        for _ in 0..profile.stuck_writes {
            plan.push(
                FaultKind::FreqWriteStuck {
                    core: rng.gen_range(0..num_cores),
                },
                Seconds(rng.gen_range(0.05..0.75) * h),
                Some(Seconds(rng.gen_range(6.0..12.0))),
            );
        }
        for _ in 0..profile.write_errors {
            plan.push(
                FaultKind::FreqWriteError {
                    core: rng.gen_range(0..num_cores),
                },
                Seconds(rng.gen_range(0.05..0.75) * h),
                Some(Seconds(rng.gen_range(4.0..9.0))),
            );
        }
        for _ in 0..profile.noise_cores {
            plan.push(
                FaultKind::CoreEnergyNoise {
                    core: rng.gen_range(0..num_cores),
                    amp_watts: rng.gen_range(0.05..0.25),
                },
                Seconds(0.0),
                None,
            );
        }
        for _ in 0..profile.glitches {
            plan.push(
                FaultKind::EnergyGlitch {
                    // 64 J – 4096 J: far outside any plausible interval.
                    delta_units: rng.gen_range(1u32 << 20..1u32 << 26),
                },
                Seconds(rng.gen_range(0.05..0.85) * h),
                None,
            );
        }
        if profile.rollover {
            plan.push(
                FaultKind::EnergyRollover,
                Seconds(rng.gen_range(0.60..0.85) * h),
                None,
            );
        }
        for _ in 0..profile.thermal_events {
            plan.push(
                FaultKind::ThermalEmergency,
                Seconds(rng.gen_range(0.25..0.40) * h),
                Some(Seconds(rng.gen_range(2.0..5.0))),
            );
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_respect_bounds() {
        let s = FaultSpec {
            kind: FaultKind::PkgEnergyReadError,
            start: Seconds(10.0),
            duration: Some(Seconds(5.0)),
        };
        assert!(!s.active_at(Seconds(9.99)));
        assert!(s.active_at(Seconds(10.0)));
        assert!(s.active_at(Seconds(14.99)));
        assert!(!s.active_at(Seconds(15.0)));

        let p = FaultSpec {
            duration: None,
            ..s
        };
        assert!(p.active_at(Seconds(1e6)), "persistent fault never ends");
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let profile = ChaosProfile::default();
        let a = FaultPlan::chaos(42, &profile, Seconds(120.0), 8);
        let b = FaultPlan::chaos(42, &profile, Seconds(120.0), 8);
        assert_eq!(a, b);
        let c = FaultPlan::chaos(43, &profile, Seconds(120.0), 8);
        assert_ne!(a, c, "different seeds diverge");
        assert!(a.faults.len() >= 10);
    }

    #[test]
    fn chaos_faults_fit_the_horizon() {
        let plan = FaultPlan::chaos(7, &ChaosProfile::default(), Seconds(100.0), 4);
        for f in &plan.faults {
            assert!(f.start.value() >= 0.0 && f.start.value() <= 85.0, "{f:?}");
            if let FaultKind::CoreEnergyReadError { core }
            | FaultKind::CoreEnergyFlaky { core, .. }
            | FaultKind::CoreEnergyNoise { core, .. }
            | FaultKind::CounterReadError { core }
            | FaultKind::FreqWriteError { core }
            | FaultKind::FreqWriteStuck { core } = f.kind
            {
                assert!(core < 4);
            }
        }
    }

    #[test]
    fn active_at_filters() {
        let plan = FaultPlan::new()
            .with(
                FaultKind::PkgEnergyReadError,
                Seconds(5.0),
                Some(Seconds(2.0)),
            )
            .with(FaultKind::EnergyRollover, Seconds(50.0), None);
        assert_eq!(plan.active_at(Seconds(6.0)).count(), 1);
        assert_eq!(plan.active_at(Seconds(0.0)).count(), 0);
        assert_eq!(plan.active_at(Seconds(60.0)).count(), 1);
    }
}
