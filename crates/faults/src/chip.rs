//! The fault-injecting chip wrapper.
//!
//! [`FaultyChip`] sits between a consumer (sampler/daemon backend) and a
//! [`Chip`], exposing the *fallible* interface real MSR access has:
//! every sensor read and frequency write returns a `Result`, and a
//! [`FaultPlan`] decides which operations fail, jitter or get dropped at
//! any given simulated time. The wrapped chip keeps simulating ground
//! truth, which stays available to harnesses via [`FaultyChip::inner`] —
//! that is how a chaos bench can check the *true* package power against
//! the cap while the daemon only sees the corrupted view.
//!
//! Fault semantics worth spelling out:
//!
//! * **Stuck writes** return `Ok(())` but change nothing — the request
//!   register keeps its old value, so only a read-back
//!   ([`FaultyChip::read_requested`]) reveals the write was dropped.
//! * **Thermal emergencies** clamp every core to the minimum P-state.
//!   Software writes during the emergency are latched into the request
//!   register (and read back faithfully — real parts do the same: the
//!   clamp shows up in the *effective* frequency, not in `PERF_CTL`) and
//!   take effect when the emergency lifts.
//! * **Glitches/rollovers** are one-shot offsets applied to the package
//!   energy counter; they fire at the first read at/after their start
//!   time and persist (a counter cannot un-jump).

use pap_simcpu::chiplike::ChipLike;
use pap_simcpu::core::CoreCounters;
use pap_simcpu::error::SimError;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_simcpu::widechip::WideChip;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::plan::{FaultKind, FaultPlan};

/// Raw energy-counter units per joule (the counter LSB is 2⁻¹⁴ J).
const UNITS_PER_JOULE: f64 = 16384.0;

/// Why a chip operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// An injected read failure (transient or persistent per the plan).
    InjectedRead(&'static str),
    /// An injected write failure.
    InjectedWrite(&'static str),
    /// A real simulator error (bad core index, off-grid frequency) —
    /// these indicate a caller bug, not an injected fault.
    Sim(SimError),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::InjectedRead(what) => write!(f, "injected read error: {what}"),
            FaultError::InjectedWrite(what) => write!(f, "injected write error: {what}"),
            FaultError::Sim(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FaultError {}

impl From<SimError> for FaultError {
    fn from(e: SimError) -> FaultError {
        FaultError::Sim(e)
    }
}

/// Counters of what the harness actually injected, for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InjectionStats {
    /// Sensor reads that returned an injected error.
    pub failed_reads: u64,
    /// Frequency writes that returned an injected error.
    pub failed_writes: u64,
    /// Frequency writes silently dropped.
    pub stuck_writes: u64,
    /// Reads perturbed by energy-counter noise.
    pub noisy_reads: u64,
    /// One-shot glitches/rollovers fired.
    pub glitches_fired: u32,
    /// Thermal emergencies entered.
    pub thermal_events: u32,
}

/// A chip backend behind a fault-injection layer. Generic over the
/// [`ChipLike`] seam — the chaos regression in `tests/chaos.rs` proves a
/// fault schedule produces identical verdicts whether the ground truth
/// is the scalar `Chip` or the batch-stepped default [`WideChip`]. See
/// the module docs.
#[derive(Debug, Clone)]
pub struct FaultyChip<C: ChipLike = WideChip> {
    chip: C,
    plan: FaultPlan,
    rng: StdRng,
    /// One-shot bookkeeping, indexed like `plan.faults`.
    fired: Vec<bool>,
    /// Accumulated one-shot offset on the package energy counter.
    glitch_offset: u32,
    /// The frequency-request "registers" as software sees them. Differs
    /// from the inner chip only while a stuck-write or thermal fault is
    /// in effect.
    shadow: Vec<KiloHertz>,
    in_emergency: bool,
    stats: InjectionStats,
}

impl<C: ChipLike> FaultyChip<C> {
    /// Wrap `chip` with a fault plan. `seed` drives only the noise
    /// faults; the schedule itself lives in the plan.
    pub fn new(chip: C, plan: FaultPlan, seed: u64) -> FaultyChip<C> {
        let shadow = (0..chip.num_cores())
            .map(|c| chip.requested_freq(c))
            .collect();
        let fired = vec![false; plan.faults.len()];
        FaultyChip {
            chip,
            plan,
            rng: StdRng::seed_from_u64(seed),
            fired,
            glitch_offset: 0,
            shadow,
            in_emergency: false,
            stats: InjectionStats::default(),
        }
    }

    /// Ground truth: the wrapped chip. Harnesses use this to score runs;
    /// a daemon backend must not.
    pub fn inner(&self) -> &C {
        &self.chip
    }

    /// The platform being simulated.
    pub fn spec(&self) -> &PlatformSpec {
        self.chip.spec()
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.chip.num_cores()
    }

    /// Current simulated time.
    pub fn now(&self) -> Seconds {
        self.chip.now()
    }

    /// True package power during the last tick (ground truth, not
    /// subject to injection).
    pub fn true_package_power(&self) -> Watts {
        self.chip.package_power()
    }

    /// What the harness injected so far.
    pub fn stats(&self) -> InjectionStats {
        self.stats
    }

    /// Whether a firmware thermal emergency is clamping the chip now.
    pub fn in_thermal_emergency(&self) -> bool {
        self.in_emergency
    }

    fn read_fault<F: Fn(&FaultKind) -> bool>(&self, pred: F) -> bool {
        self.plan.active_at(self.now()).any(|f| pred(&f.kind))
    }

    /// Read the package energy counter. One-shot glitches scheduled at
    /// or before now fire here (they corrupt the counter, so they are
    /// visible — or not — exactly like the real artifact).
    pub fn read_package_energy(&mut self) -> Result<u32, FaultError> {
        let now = self.now();
        for (i, f) in self.plan.faults.iter().enumerate() {
            if self.fired[i] || now < f.start {
                continue;
            }
            let delta = match f.kind {
                FaultKind::EnergyGlitch { delta_units } => delta_units,
                // A spurious half-range jump: the classic mid-interval
                // wraparound artifact.
                FaultKind::EnergyRollover => u32::MAX / 2 + 1,
                _ => continue,
            };
            self.fired[i] = true;
            self.glitch_offset = self.glitch_offset.wrapping_add(delta);
            self.stats.glitches_fired += 1;
        }
        if self.read_fault(|k| matches!(k, FaultKind::PkgEnergyReadError)) {
            self.stats.failed_reads += 1;
            return Err(FaultError::InjectedRead("package energy MSR"));
        }
        let flaky = self.plan.active_at(now).find_map(|f| match f.kind {
            FaultKind::PkgEnergyFlaky { prob } => Some(prob),
            _ => None,
        });
        if let Some(prob) = flaky {
            if self.rng.gen_bool(prob) {
                self.stats.failed_reads += 1;
                return Err(FaultError::InjectedRead("package energy MSR (flaky)"));
            }
        }
        Ok(self
            .chip
            .package_energy_raw()
            .wrapping_add(self.glitch_offset))
    }

    /// Read one core's energy counter (per-core-power platforms only).
    pub fn read_core_energy(&mut self, core: usize) -> Result<u32, FaultError> {
        let raw = self.chip.core_energy_raw(core)?;
        if self
            .read_fault(|k| matches!(k, FaultKind::CoreEnergyReadError { core: c } if *c == core))
        {
            self.stats.failed_reads += 1;
            return Err(FaultError::InjectedRead("core energy MSR"));
        }
        let flaky = self.plan.active_at(self.now()).find_map(|f| match f.kind {
            FaultKind::CoreEnergyFlaky { core: c, prob } if c == core => Some(prob),
            _ => None,
        });
        if let Some(prob) = flaky {
            if self.rng.gen_bool(prob) {
                self.stats.failed_reads += 1;
                return Err(FaultError::InjectedRead("core energy MSR (flaky)"));
            }
        }
        let amp = self.plan.active_at(self.now()).find_map(|f| match f.kind {
            FaultKind::CoreEnergyNoise { core: c, amp_watts } if c == core => Some(amp_watts),
            _ => None,
        });
        if let Some(amp) = amp {
            self.stats.noisy_reads += 1;
            let jitter_units = (self.rng.gen_range(-amp..amp) * UNITS_PER_JOULE) as i64;
            return Ok(raw.wrapping_add(jitter_units as u32));
        }
        Ok(raw)
    }

    /// Read one core's fixed counters.
    pub fn read_counters(&mut self, core: usize) -> Result<CoreCounters, FaultError> {
        if core >= self.num_cores() {
            return Err(FaultError::Sim(SimError::NoSuchCore {
                core,
                num_cores: self.num_cores(),
            }));
        }
        if self.read_fault(|k| matches!(k, FaultKind::CounterReadError { core: c } if *c == core)) {
            self.stats.failed_reads += 1;
            return Err(FaultError::InjectedRead("fixed counters"));
        }
        Ok(self.chip.counters(core))
    }

    /// Read back one core's frequency-request register (the stuck-write
    /// detector). Shares the fixed-counter read path, so a
    /// [`FaultKind::CounterReadError`] takes it out too.
    pub fn read_requested(&mut self, core: usize) -> Result<KiloHertz, FaultError> {
        if core >= self.num_cores() {
            return Err(FaultError::Sim(SimError::NoSuchCore {
                core,
                num_cores: self.num_cores(),
            }));
        }
        if self.read_fault(|k| matches!(k, FaultKind::CounterReadError { core: c } if *c == core)) {
            self.stats.failed_reads += 1;
            return Err(FaultError::InjectedRead("frequency request register"));
        }
        Ok(self.shadow[core])
    }

    /// Request a frequency for one core. May error (injected), silently
    /// do nothing (stuck), or be latched-but-clamped (thermal).
    pub fn write_requested(&mut self, core: usize, f: KiloHertz) -> Result<(), FaultError> {
        if core >= self.num_cores() {
            return Err(FaultError::Sim(SimError::NoSuchCore {
                core,
                num_cores: self.num_cores(),
            }));
        }
        let grid = self.chip.spec().grid;
        if f < grid.min() || f > grid.max() {
            return Err(FaultError::Sim(SimError::FrequencyOutOfRange {
                requested: f,
                min: grid.min(),
                max: grid.max(),
            }));
        }
        let now = self.now();
        if self
            .plan
            .active_at(now)
            .any(|s| matches!(s.kind, FaultKind::FreqWriteError { core: c } if c == core))
        {
            self.stats.failed_writes += 1;
            return Err(FaultError::InjectedWrite("frequency request register"));
        }
        if self
            .plan
            .active_at(now)
            .any(|s| matches!(s.kind, FaultKind::FreqWriteStuck { core: c } if c == core))
        {
            self.stats.stuck_writes += 1;
            return Ok(()); // accepted, dropped: register unchanged
        }
        let snapped = grid.round(f);
        self.shadow[core] = snapped;
        if !self.in_emergency {
            self.chip.set_requested_freq(core, snapped)?;
        }
        Ok(())
    }

    /// Park or release a core. The C-state request path is modeled as
    /// reliable (it goes through MWAIT, not the MSR the plan breaks).
    pub fn set_parked(&mut self, core: usize, parked: bool) -> Result<(), FaultError> {
        self.chip.set_forced_idle(core, parked)?;
        Ok(())
    }

    /// Effective frequency of a core during the last tick (the workload
    /// engine needs it; it is the simulation contract, not an MSR).
    pub fn effective_freq(&self, core: usize) -> KiloHertz {
        self.chip.effective_freq(core)
    }

    /// Install a load descriptor (workload engine path, reliable).
    pub fn set_load(
        &mut self,
        core: usize,
        load: pap_simcpu::power::LoadDescriptor,
    ) -> Result<(), FaultError> {
        self.chip.set_load(core, load)?;
        Ok(())
    }

    /// Credit retired instructions (workload engine path, reliable).
    pub fn add_instructions(&mut self, core: usize, n: u64) -> Result<(), FaultError> {
        self.chip.add_instructions(core, n)?;
        Ok(())
    }

    /// Advance simulated time, handling thermal-emergency entry/exit.
    /// The emergency state is evaluated at the *post-tick* time, so a
    /// window opening mid-tick clamps from the next tick on (firmware
    /// reacts after the fact, exactly like the real PROCHOT path).
    pub fn tick(&mut self, dt: Seconds) {
        self.chip.tick(dt);
        let emergency = self
            .plan
            .active_at(self.now())
            .any(|f| matches!(f.kind, FaultKind::ThermalEmergency));
        if emergency && !self.in_emergency {
            self.in_emergency = true;
            self.stats.thermal_events += 1;
            let min = self.chip.spec().grid.min();
            for c in 0..self.num_cores() {
                self.chip
                    .set_requested_freq(c, min)
                    .expect("grid minimum is always writable");
            }
        } else if !emergency && self.in_emergency {
            self.in_emergency = false;
            for c in 0..self.num_cores() {
                let f = self.shadow[c];
                self.chip
                    .set_requested_freq(c, f)
                    .expect("shadow values were grid-snapped on write");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos_platform;
    use pap_simcpu::chip::Chip;
    use pap_simcpu::units::Seconds;

    const MS: Seconds = Seconds(0.001);

    fn harness(plan: FaultPlan) -> FaultyChip<Chip> {
        FaultyChip::new(Chip::new(chaos_platform()), plan, 99)
    }

    #[test]
    fn clean_plan_passes_everything_through() {
        let mut fc = harness(FaultPlan::new());
        fc.write_requested(0, KiloHertz::from_mhz(2500)).unwrap();
        fc.tick(MS);
        assert_eq!(fc.read_requested(0).unwrap(), KiloHertz::from_mhz(2500));
        assert!(fc.read_package_energy().is_ok());
        assert!(fc.read_core_energy(0).is_ok());
        assert!(fc.read_counters(0).is_ok());
        assert_eq!(fc.stats(), InjectionStats::default());
    }

    #[test]
    fn read_errors_follow_the_window() {
        let plan = FaultPlan::new().with(
            FaultKind::PkgEnergyReadError,
            Seconds(0.01),
            Some(Seconds(0.02)),
        );
        let mut fc = harness(plan);
        assert!(fc.read_package_energy().is_ok(), "before the window");
        fc.tick(Seconds(0.015));
        assert!(fc.read_package_energy().is_err(), "inside the window");
        fc.tick(Seconds(0.05));
        assert!(fc.read_package_energy().is_ok(), "after the window");
        assert_eq!(fc.stats().failed_reads, 1);
    }

    #[test]
    fn stuck_write_returns_ok_but_readback_disagrees() {
        let plan = FaultPlan::new().with(
            FaultKind::FreqWriteStuck { core: 2 },
            Seconds(0.0),
            Some(Seconds(1.0)),
        );
        let mut fc = harness(plan);
        let before = fc.read_requested(2).unwrap();
        fc.write_requested(2, KiloHertz::from_mhz(3400)).unwrap(); // "succeeds"
        assert_eq!(fc.read_requested(2).unwrap(), before, "write was dropped");
        assert_eq!(fc.stats().stuck_writes, 1);

        // Other cores are unaffected.
        fc.write_requested(0, KiloHertz::from_mhz(3400)).unwrap();
        assert_eq!(fc.read_requested(0).unwrap(), KiloHertz::from_mhz(3400));

        // After the window the write takes.
        fc.tick(Seconds(1.5));
        fc.write_requested(2, KiloHertz::from_mhz(3400)).unwrap();
        assert_eq!(fc.read_requested(2).unwrap(), KiloHertz::from_mhz(3400));
    }

    #[test]
    fn glitch_fires_once_and_persists() {
        let plan = FaultPlan::new().with(
            FaultKind::EnergyGlitch {
                delta_units: 1 << 22,
            },
            Seconds(0.0),
            None,
        );
        let mut fc = harness(plan);
        let base = fc.inner().package_energy_raw();
        let glitched = fc.read_package_energy().unwrap();
        assert_eq!(glitched, base.wrapping_add(1 << 22));
        // Firing again does not double-apply.
        let again = fc.read_package_energy().unwrap();
        assert_eq!(again, glitched);
        assert_eq!(fc.stats().glitches_fired, 1);
    }

    #[test]
    fn thermal_emergency_clamps_then_restores() {
        let plan = FaultPlan::new().with(
            FaultKind::ThermalEmergency,
            Seconds(0.01),
            Some(Seconds(0.05)),
        );
        let mut fc = harness(plan);
        let min = fc.spec().grid.min();
        fc.write_requested(0, KiloHertz::from_mhz(3400)).unwrap();
        fc.tick(Seconds(0.02)); // enters the emergency
        assert!(fc.in_thermal_emergency());
        assert_eq!(fc.inner().requested_freq(0), min, "chip clamped");
        assert_eq!(
            fc.read_requested(0).unwrap(),
            KiloHertz::from_mhz(3400),
            "register read-back shows the software request"
        );
        // A write during the emergency is latched, not applied.
        fc.write_requested(0, KiloHertz::from_mhz(2500)).unwrap();
        assert_eq!(fc.inner().requested_freq(0), min);
        fc.tick(Seconds(0.1)); // emergency over
        assert!(!fc.in_thermal_emergency());
        assert_eq!(
            fc.inner().requested_freq(0),
            KiloHertz::from_mhz(2500),
            "latched request applies when the clamp lifts"
        );
        assert_eq!(fc.stats().thermal_events, 1);
    }

    #[test]
    fn noise_perturbs_but_errors_do_not_accumulate() {
        let plan = FaultPlan::new().with(
            FaultKind::CoreEnergyNoise {
                core: 0,
                amp_watts: 0.5,
            },
            Seconds(0.0),
            None,
        );
        let mut fc = harness(plan);
        fc.set_load(0, pap_simcpu::power::LoadDescriptor::nominal())
            .unwrap();
        for _ in 0..1000 {
            fc.tick(MS);
        }
        let truth = fc.inner().core_energy_raw(0).unwrap();
        let noisy = fc.read_core_energy(0).unwrap();
        let delta = (noisy.wrapping_sub(truth) as i32).unsigned_abs() as f64;
        assert!(
            delta <= 0.5 * UNITS_PER_JOULE + 1.0,
            "jitter bounded by the amplitude, got {delta} units"
        );
        assert!(fc.stats().noisy_reads > 0);
    }

    #[test]
    fn out_of_range_writes_are_caller_bugs_not_faults() {
        let mut fc = harness(FaultPlan::new());
        assert!(matches!(
            fc.write_requested(0, KiloHertz::from_mhz(9000)),
            Err(FaultError::Sim(SimError::FrequencyOutOfRange { .. }))
        ));
        assert!(matches!(
            fc.write_requested(99, KiloHertz::from_mhz(2000)),
            Err(FaultError::Sim(SimError::NoSuchCore { .. }))
        ));
    }
}
