//! Deterministic fault injection for the per-application power daemon.
//!
//! The simulator (`pap_simcpu`) is perfectly reliable: every MSR read
//! succeeds, every frequency write lands, every energy counter ticks
//! monotonically. Real power-management hardware is not. This crate
//! makes the simulated platform *lie* in the ways real platforms lie —
//! deterministically, from a seed — so the daemon's resilience layer
//! ([`powerd::resilience`]) can be exercised and scored:
//!
//! * [`plan`] — [`plan::FaultPlan`]: a reproducible schedule of fault
//!   windows and one-shot events ([`plan::FaultKind`]), either scripted
//!   by hand or generated from a seed with [`plan::FaultPlan::chaos`].
//! * [`chip`] — [`chip::FaultyChip`]: wraps any
//!   [`pap_simcpu::chiplike::ChipLike`] backend (the batch-stepped
//!   `WideChip` by default, the scalar `Chip` as the reference)
//!   behind fallible read/write hooks that consult the plan: transient
//!   and persistent read errors, flaky (probabilistic) reads, stuck
//!   frequency writes that are accepted but ineffective, per-core power
//!   noise, energy-counter glitches and rollovers, and thermal
//!   emergencies where firmware clamps the chip underneath the OS.
//! * [`observe`] — [`observe::FaultObserver`]: a failure-aware sampler
//!   producing [`powerd::resilience::Observation`]s, with per-sensor
//!   snapshots, bounded retries and a plausibility screen.
//! * [`runner`] — [`runner::ChaosExperiment`]: drives a workload mix
//!   through a fault plan with either the resilient stack or a naïve
//!   stale-fill baseline, and scores both on the *inner* chip's ground
//!   truth (cap violations, Jain fairness, starvation).
//!
//! Everything is seeded: the same plan, seed and workload mix replay
//! the exact same run, so chaos results are regression-testable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chip;
pub mod observe;
pub mod plan;
pub mod runner;

use pap_simcpu::platform::PlatformSpec;

/// The platform chaos runs default to: a Ryzen-derived server part with
/// per-core power telemetry and fully independent per-core DVFS (no
/// shared P-state slots), and no hardware RAPL — the daemon alone
/// enforces the budget, which is exactly the regime where telemetry
/// faults are dangerous.
pub fn chaos_platform() -> PlatformSpec {
    let mut p = PlatformSpec::ryzen();
    p.name = "ryzen-server";
    p.shared_pstate_slots = None;
    p
}

/// Convenience re-exports of the crate's primary types.
pub mod prelude {
    pub use crate::chaos_platform;
    pub use crate::chip::{FaultError, FaultyChip, InjectionStats};
    pub use crate::observe::FaultObserver;
    pub use crate::plan::{ChaosProfile, FaultKind, FaultPlan, FaultSpec};
    pub use crate::runner::{ChaosAppResult, ChaosExperiment, ChaosResult};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_platform_has_independent_per_core_dvfs() {
        let p = chaos_platform();
        assert!(p.per_core_power);
        assert!(p.shared_pstate_slots.is_none());
        assert!(p.rapl.is_none(), "daemon-enforced cap, no hardware RAPL");
    }
}
