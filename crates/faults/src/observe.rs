//! Fallible telemetry collection over a [`FaultyChip`].
//!
//! [`FaultObserver`] is the failure-aware twin of
//! [`pap_telemetry::sampler::Sampler`]: it keeps a previous snapshot
//! *per sensor* (each with its own timestamp, because a sensor that was
//! dark for two intervals must derive power over the span it actually
//! missed) and emits a [`powerd::resilience::Observation`] in which every
//! reading is optional. Reads go through the daemon's
//! [`RetryPolicy`]; retries that rescued a read are reported in
//! [`Observation::retries`] so the health tracker can count the cost.
//!
//! Derived values also pass a plausibility screen: a package power above
//! five times TDP (the signature of an energy-counter glitch or spurious
//! rollover) or a per-core power above twice TDP is reported as a failed
//! reading rather than handed to the controller. The snapshot still
//! advances, so a one-shot glitch costs exactly one interval of
//! observability instead of poisoning every interval after it.

use pap_simcpu::core::CoreCounters;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::counters::{core_rates, power_from_energy};
use pap_telemetry::health::SensorId;
use powerd::resilience::{CoreObservation, Observation, RetryPolicy};

use pap_simcpu::chiplike::ChipLike;

use crate::chip::FaultyChip;

/// A previous raw-counter snapshot with the time it was taken.
#[derive(Debug, Clone, Copy)]
struct Snap<T> {
    value: T,
    time: Seconds,
}

/// Failure-aware sampler over a [`FaultyChip`].
#[derive(Debug, Clone)]
pub struct FaultObserver {
    retry: RetryPolicy,
    last_observation: Seconds,
    pkg: Option<Snap<u32>>,
    core_energy: Vec<Option<Snap<u32>>>,
    counters: Vec<Option<Snap<CoreCounters>>>,
    /// Package readings above this are rejected as implausible.
    pkg_bound: Watts,
    /// Per-core readings above this are rejected as implausible.
    core_bound: Watts,
}

impl FaultObserver {
    /// Build an observer and prime its snapshots with a best-effort read
    /// (failed primes simply mean the first interval for that sensor is
    /// unobservable, exactly as on real hardware).
    pub fn new<C: ChipLike>(chip: &mut FaultyChip<C>, retry: RetryPolicy) -> FaultObserver {
        let n = chip.num_cores();
        let tdp = chip.spec().tdp;
        let mut o = FaultObserver {
            retry,
            last_observation: chip.now(),
            pkg: None,
            core_energy: vec![None; n],
            counters: vec![None; n],
            pkg_bound: Watts(tdp.value() * 5.0),
            core_bound: Watts(tdp.value() * 2.0),
        };
        o.prime(chip);
        o
    }

    fn prime<C: ChipLike>(&mut self, chip: &mut FaultyChip<C>) {
        let now = chip.now();
        if let (Ok(raw), _) = self.retry.run(|| chip.read_package_energy()) {
            self.pkg = Some(Snap {
                value: raw,
                time: now,
            });
        }
        for c in 0..chip.num_cores() {
            if chip.spec().per_core_power {
                if let (Ok(raw), _) = self.retry.run(|| chip.read_core_energy(c)) {
                    self.core_energy[c] = Some(Snap {
                        value: raw,
                        time: now,
                    });
                }
            }
            if let (Ok(ctr), _) = self.retry.run(|| chip.read_counters(c)) {
                self.counters[c] = Some(Snap {
                    value: ctr,
                    time: now,
                });
            }
        }
    }

    /// Collect one observation covering the interval since the last call.
    pub fn observe<C: ChipLike>(&mut self, chip: &mut FaultyChip<C>) -> Observation {
        let now = chip.now();
        let interval = now - self.last_observation;
        self.last_observation = now;
        let retry = self.retry;
        let mut retries: Vec<(SensorId, u64)> = Vec::new();
        let mut note_retries = |sensor: SensorId, attempts: u32| {
            if attempts > 1 {
                retries.push((sensor, (attempts - 1) as u64));
            }
        };

        // Package power from the package energy counter.
        let (res, attempts) = retry.run(|| chip.read_package_energy());
        note_retries(SensorId::PackagePower, attempts);
        let package_power = match res {
            Ok(raw) => {
                let p = self.pkg.and_then(|prev| {
                    let dt = now - prev.time;
                    (dt.value() > 0.0).then(|| power_from_energy(prev.value, raw, dt))
                });
                self.pkg = Some(Snap {
                    value: raw,
                    time: now,
                });
                p.filter(|p| *p <= self.pkg_bound)
            }
            Err(_) => None,
        };

        let base = chip.spec().base_freq;
        let per_core_power = chip.spec().per_core_power;
        let mut cores = Vec::with_capacity(chip.num_cores());
        for c in 0..chip.num_cores() {
            // Per-core power.
            let power = if per_core_power {
                let (res, attempts) = retry.run(|| chip.read_core_energy(c));
                note_retries(SensorId::CorePower(c), attempts);
                match res {
                    Ok(raw) => {
                        let p = self.core_energy[c].and_then(|prev| {
                            let dt = now - prev.time;
                            (dt.value() > 0.0).then(|| power_from_energy(prev.value, raw, dt))
                        });
                        self.core_energy[c] = Some(Snap {
                            value: raw,
                            time: now,
                        });
                        p.filter(|p| *p <= self.core_bound)
                    }
                    Err(_) => None,
                }
            } else {
                None
            };

            // Fixed-counter rates.
            let (res, attempts) = retry.run(|| chip.read_counters(c));
            note_retries(SensorId::CoreCounters(c), attempts);
            let rates = match res {
                Ok(ctr) => {
                    let r = self.counters[c].and_then(|prev| {
                        let dt = now - prev.time;
                        (dt.value() > 0.0).then(|| core_rates(prev.value, ctr, dt, base))
                    });
                    self.counters[c] = Some(Snap {
                        value: ctr,
                        time: now,
                    });
                    r
                }
                Err(_) => None,
            };

            // Frequency-request read-back (stuck-write detection).
            let (res, attempts) = retry.run(|| chip.read_requested(c));
            note_retries(SensorId::FreqActuator(c), attempts);
            let requested = res.ok();

            cores.push(CoreObservation {
                rates,
                power,
                requested,
            });
        }

        Observation {
            time: now,
            interval,
            package_power,
            cores,
            retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos_platform;
    use crate::plan::{FaultKind, FaultPlan};
    use pap_simcpu::chip::Chip;
    use pap_simcpu::power::LoadDescriptor;

    fn run_for(chip: &mut FaultyChip<Chip>, secs: f64) {
        let dt = Seconds(0.001);
        let steps = (secs / dt.value()).round() as usize;
        for _ in 0..steps {
            chip.tick(dt);
        }
    }

    fn busy_harness(plan: FaultPlan) -> FaultyChip<Chip> {
        let mut fc = FaultyChip::new(Chip::new(chaos_platform()), plan, 5);
        fc.set_load(0, LoadDescriptor::nominal()).unwrap();
        fc
    }

    #[test]
    fn healthy_chip_full_observation() {
        let mut fc = busy_harness(FaultPlan::new());
        let mut obs = FaultObserver::new(&mut fc, RetryPolicy::default());
        run_for(&mut fc, 1.0);
        let o = obs.observe(&mut fc);
        assert!((o.interval.value() - 1.0).abs() < 1e-9);
        let p = o.package_power.expect("healthy package");
        assert!(p.value() > 1.0, "busy chip draws real power, got {p}");
        assert!(
            o.cores[0].power.is_some(),
            "per-core power on this platform"
        );
        assert!(o.cores[0].rates.is_some());
        assert!(o.cores[0].requested.is_some());
        assert!(o.retries.is_empty());
    }

    #[test]
    fn read_failure_blanks_only_the_failed_sensor() {
        let plan = FaultPlan::new().with(
            FaultKind::CoreEnergyReadError { core: 0 },
            Seconds(0.5),
            Some(Seconds(10.0)),
        );
        let mut fc = busy_harness(plan);
        let mut obs = FaultObserver::new(&mut fc, RetryPolicy::default());
        run_for(&mut fc, 1.0);
        let o = obs.observe(&mut fc);
        assert!(o.cores[0].power.is_none(), "injected failure");
        assert!(o.package_power.is_some(), "package unaffected");
        assert!(o.cores[1].power.is_some(), "other cores unaffected");
    }

    #[test]
    fn snapshot_spans_the_dark_period() {
        // Core 0 energy is dark for interval 2; interval 3's reading must
        // derive power over the 2 s the snapshot actually covers, not 1 s
        // (which would halve the value).
        let plan = FaultPlan::new().with(
            FaultKind::CoreEnergyReadError { core: 0 },
            Seconds(1.2),
            Some(Seconds(1.0)),
        );
        let mut fc = busy_harness(plan);
        let mut obs = FaultObserver::new(&mut fc, RetryPolicy::default());
        run_for(&mut fc, 1.0);
        let o1 = obs.observe(&mut fc);
        let p1 = o1.cores[0].power.unwrap();
        run_for(&mut fc, 1.0);
        let o2 = obs.observe(&mut fc);
        assert!(o2.cores[0].power.is_none(), "dark interval");
        run_for(&mut fc, 1.0);
        let o3 = obs.observe(&mut fc);
        let p3 = o3.cores[0].power.unwrap();
        assert!(
            (p3.value() - p1.value()).abs() < p1.value() * 0.3,
            "power derived over the true 2 s span: {p1} vs {p3}"
        );
    }

    #[test]
    fn glitch_rejected_as_implausible_then_recovers() {
        let plan = FaultPlan::new().with(
            FaultKind::EnergyGlitch {
                delta_units: 1 << 25, // 2048 J mid-interval: absurd power
            },
            Seconds(0.5),
            None,
        );
        let mut fc = busy_harness(plan);
        let mut obs = FaultObserver::new(&mut fc, RetryPolicy::default());
        run_for(&mut fc, 1.0);
        let o1 = obs.observe(&mut fc);
        assert!(
            o1.package_power.is_none(),
            "glitched interval rejected, got {:?}",
            o1.package_power
        );
        run_for(&mut fc, 1.0);
        let o2 = obs.observe(&mut fc);
        let p = o2.package_power.expect("one interval of cost, then clean");
        assert!(p <= Watts(fc.spec().tdp.value()), "sane again: {p}");
    }

    #[test]
    fn retries_rescue_flaky_reads() {
        let plan =
            FaultPlan::new().with(FaultKind::PkgEnergyFlaky { prob: 0.5 }, Seconds(0.0), None);
        let mut fc = busy_harness(plan);
        let retry = RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        };
        let mut obs = FaultObserver::new(&mut fc, retry);
        let mut ok = 0;
        let mut retried = 0;
        for _ in 0..20 {
            run_for(&mut fc, 1.0);
            let o = obs.observe(&mut fc);
            if o.package_power.is_some() {
                ok += 1;
            }
            retried += o
                .retries
                .iter()
                .filter(|(s, _)| *s == SensorId::PackagePower)
                .map(|(_, n)| *n)
                .sum::<u64>();
        }
        assert!(ok >= 18, "8 attempts beat a 50% flake: {ok}/20 rescued");
        assert!(retried > 0, "the rescues cost retries, which are reported");
    }

    #[test]
    fn retries_rescue_and_are_reported() {
        // Impossible to rescue: the whole interval errors. But with a
        // clean plan and max_attempts=1 nothing is reported either.
        let mut fc = busy_harness(FaultPlan::new());
        let mut obs = FaultObserver::new(&mut fc, RetryPolicy::none());
        run_for(&mut fc, 1.0);
        let o = obs.observe(&mut fc);
        assert!(o.retries.is_empty());
        assert!(o.package_power.is_some());
    }
}
