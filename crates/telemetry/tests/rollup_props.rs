//! Property tests for the delta rollup. Exact mode: under *arbitrary*
//! add / remove / update sequences, a `DeltaRollup` with `epsilon = 0`
//! is exactly equal — bit-for-bit on every float — to a full
//! re-aggregation (`ClusterRollup::new`) over the latest surviving row
//! of every resident node. This is the invariant the sharded cluster
//! engine's serial-parity proof rests on (DESIGN.md §14). Approximate
//! mode: with `epsilon > 0` every cached row stays within epsilon
//! (relative-or-absolute, per field) of the node's latest telemetry, so
//! the incremental totals drift from a fresh fold by at most the sum of
//! tolerated per-node deltas — the bound the 1000-node arbiter relies
//! on when it trades exactness for skip rate.

use std::collections::BTreeMap;

use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::rollup::{ClusterRollup, DeltaRollup, NodeTelemetry};
use proptest::prelude::*;

/// One step of the life of a cluster's telemetry stream.
#[derive(Debug, Clone)]
enum Op {
    /// Fresh telemetry for a node (insert or overwrite).
    Update(NodeTelemetry),
    /// A node departs.
    Remove(usize),
}

fn telemetry(node: usize, raw: (f64, f64, u8, f64, f64, bool)) -> NodeTelemetry {
    let (power, cap, busy, shares, ips, predicted) = raw;
    NodeTelemetry {
        node,
        package_power: Watts(power),
        power_cap: Watts(cap),
        busy_cores: busy as usize,
        num_cores: 10,
        total_shares: shares,
        total_ips: ips,
        predicted_capacity: predicted.then_some(Watts(cap + 7.0)),
    }
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0usize..24,
            any::<bool>(),
            (
                0.0f64..120.0,
                15.0f64..85.0,
                0u8..10,
                0.0f64..800.0,
                0.0f64..4e10,
                any::<bool>(),
            ),
        )
            .prop_map(|(node, remove, raw)| {
                if remove {
                    Op::Remove(node)
                } else {
                    Op::Update(telemetry(node, raw))
                }
            }),
        1..120usize,
    )
}

/// Exact equality including float bits: `PartialEq` on the rows
/// compares f64s with `==`, which is what we want (NaNs cannot appear —
/// rows are sanitized), plus an explicit bit check on the headline fold.
fn assert_exactly_equal(delta: &DeltaRollup, reference: &BTreeMap<usize, NodeTelemetry>) {
    let full = ClusterRollup::new(Seconds(1.0), reference.values().cloned().collect());
    let materialized = delta.to_rollup();
    assert_eq!(materialized.nodes, full.nodes, "materialized rows diverged");
    assert_eq!(
        delta.total_power().value().to_bits(),
        full.total_power().value().to_bits(),
        "total power fold diverged at the bit level"
    );
    assert_eq!(
        delta.total_ips().to_bits(),
        full.total_ips().to_bits(),
        "total ips fold diverged at the bit level"
    );
    assert_eq!(
        delta.total_shares().to_bits(),
        full.total_shares().to_bits(),
        "total shares fold diverged at the bit level"
    );
    assert_eq!(
        delta.total_cap().value().to_bits(),
        full.total_cap().value().to_bits()
    );
    assert_eq!(delta.busy_cores(), full.busy_cores());
    assert_eq!(delta.total_cores(), full.total_cores());
    assert_eq!(delta.len(), full.nodes.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// epsilon = 0 delta aggregation ≡ full re-aggregation after every
    /// prefix of an arbitrary add/remove/update sequence.
    #[test]
    fn exact_mode_equals_full_reaggregation(ops in ops()) {
        let mut delta = DeltaRollup::new(Seconds(1.0), 0.0);
        let mut reference: BTreeMap<usize, NodeTelemetry> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Update(tel) => {
                    delta.update(tel.clone());
                    reference.insert(tel.node, tel);
                }
                Op::Remove(node) => {
                    let was_there = reference.remove(&node).is_some();
                    prop_assert_eq!(delta.remove(node), was_there);
                }
            }
            assert_exactly_equal(&delta, &reference);
        }
    }

    /// Sanitization is applied identically on both paths, so even
    /// streams carrying NaN/∞ rows stay exactly equal (and flag the
    /// same unhealthy nodes).
    #[test]
    fn exact_mode_equals_full_under_poisoned_rows(
        ops in ops(),
        poison_every in 2usize..5,
    ) {
        let mut delta = DeltaRollup::new(Seconds(1.0), 0.0);
        let mut reference: BTreeMap<usize, NodeTelemetry> = BTreeMap::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Update(mut tel) => {
                    if i % poison_every == 0 {
                        tel.package_power = Watts(f64::NAN);
                        tel.total_ips = f64::INFINITY;
                    }
                    delta.update(tel.clone());
                    let mut sane = tel;
                    sane.sanitize();
                    reference.insert(sane.node, sane);
                }
                Op::Remove(node) => {
                    reference.remove(&node);
                    delta.remove(node);
                }
            }
        }
        assert_exactly_equal(&delta, &reference);
        let full = ClusterRollup::new(Seconds(1.0), reference.values().cloned().collect());
        prop_assert!(full.total_power().value().is_finite());
    }

    /// epsilon > 0: after every prefix of an arbitrary sequence, each
    /// incremental float total differs from a full re-aggregation over
    /// the latest rows by at most the sum over resident nodes of the
    /// per-node tolerance `eps · max(|field|, 1)` (inflated by
    /// 1/(1−eps) because the tolerance is anchored at the *cached*
    /// value, which itself sits within eps of the latest). Structural
    /// fields (core counts, caps, membership) always bust the
    /// tolerance, so their totals stay exact.
    #[test]
    fn epsilon_mode_drift_is_bounded_per_node(
        ops in ops(),
        eps in 0.001f64..0.2,
    ) {
        let mut delta = DeltaRollup::new(Seconds(1.0), eps);
        let mut reference: BTreeMap<usize, NodeTelemetry> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Update(tel) => {
                    delta.update(tel.clone());
                    reference.insert(tel.node, tel);
                }
                Op::Remove(node) => {
                    reference.remove(&node);
                    delta.remove(node);
                }
            }
            let full = ClusterRollup::new(Seconds(1.0), reference.values().cloned().collect());
            let bound = |field: fn(&NodeTelemetry) -> f64| -> f64 {
                let per_node: f64 = full
                    .nodes
                    .iter()
                    .map(|n| field(n).abs().max(1.0))
                    .sum();
                eps / (1.0 - eps) * per_node
            };
            let close = |got: f64, want: f64, bound: f64| -> bool {
                // float slack for the subtract-old/add-new re-association
                (got - want).abs() <= bound + 1e-9 * (1.0 + want.abs())
            };
            prop_assert!(
                close(
                    delta.total_power().value(),
                    full.total_power().value(),
                    bound(|n| n.package_power.value()),
                ),
                "power drift {} vs {} beyond bound",
                delta.total_power().value(),
                full.total_power().value(),
            );
            prop_assert!(
                close(delta.total_ips(), full.total_ips(), bound(|n| n.total_ips)),
                "ips drift {} vs {} beyond bound",
                delta.total_ips(),
                full.total_ips(),
            );
            prop_assert!(
                close(
                    delta.total_shares(),
                    full.total_shares(),
                    bound(|n| n.total_shares),
                ),
                "shares drift {} vs {} beyond bound",
                delta.total_shares(),
                full.total_shares(),
            );
            // Structural fields re-aggregate on any change: exact.
            prop_assert_eq!(delta.busy_cores(), full.busy_cores());
            prop_assert_eq!(delta.total_cores(), full.total_cores());
            prop_assert!(close(
                delta.total_cap().value(),
                full.total_cap().value(),
                0.0,
            ));
            prop_assert_eq!(delta.len(), full.nodes.len());
        }
    }
}
