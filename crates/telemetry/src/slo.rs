//! SLO targets and windowed attainment tracking.
//!
//! Multi-tenant scoring (ROADMAP item 3) judges a policy not on raw tail
//! latency but on *SLO attainment*: the fraction of measurement windows
//! in which a tenant's measured tail sat at or under its target. This
//! module holds the target type, the per-tenant attainment tracker, and
//! the Jain fairness index used to compare attainment across tenants —
//! all pure bookkeeping so the scenario layer and the SLO controller can
//! share one definition of "meeting the SLO".

/// A tail-latency service-level objective: "the `percentile`-th
/// percentile latency stays at or below `latency_ms`".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTarget {
    /// Which percentile the objective constrains (0..100, e.g. 90 or 99).
    pub percentile: f64,
    /// The latency bound at that percentile, in milliseconds.
    pub latency_ms: f64,
}

impl SloTarget {
    /// A p90 objective.
    pub fn p90(latency_ms: f64) -> SloTarget {
        SloTarget {
            percentile: 90.0,
            latency_ms,
        }
    }

    /// A p99 objective.
    pub fn p99(latency_ms: f64) -> SloTarget {
        SloTarget {
            percentile: 99.0,
            latency_ms,
        }
    }

    /// Whether an observed tail meets the objective.
    pub fn met(&self, observed_ms: f64) -> bool {
        observed_ms.is_finite() && observed_ms <= self.latency_ms
    }

    /// Pressure ratio: observed tail over target. 1.0 is exactly at the
    /// objective; above 1.0 the SLO is violated. Degenerate inputs
    /// (non-finite tail, non-positive target) read as maximal pressure
    /// so a broken measurement escalates rather than masks.
    pub fn pressure(&self, observed_ms: f64) -> f64 {
        if !(observed_ms.is_finite() && self.latency_ms > 0.0) {
            return f64::MAX;
        }
        (observed_ms / self.latency_ms).max(0.0)
    }
}

/// Windowed SLO attainment for one tenant: feed it one tail measurement
/// per control window, read back the attained fraction.
#[derive(Debug, Clone)]
pub struct SloTracker {
    target: SloTarget,
    windows: u64,
    met: u64,
    last_pressure: f64,
}

impl SloTracker {
    /// A fresh tracker for the given objective.
    pub fn new(target: SloTarget) -> SloTracker {
        SloTracker {
            target,
            windows: 0,
            met: 0,
            last_pressure: 0.0,
        }
    }

    /// The objective being tracked.
    pub fn target(&self) -> SloTarget {
        self.target
    }

    /// Record one measurement window's observed tail (in ms).
    pub fn observe(&mut self, observed_ms: f64) {
        self.windows += 1;
        if self.target.met(observed_ms) {
            self.met += 1;
        }
        self.last_pressure = self.target.pressure(observed_ms);
    }

    /// Number of windows observed.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Fraction of windows that met the objective (1.0 before any
    /// observations — no evidence of violation).
    pub fn attainment(&self) -> f64 {
        if self.windows == 0 {
            1.0
        } else {
            self.met as f64 / self.windows as f64
        }
    }

    /// Pressure ratio from the most recent window (0 before any).
    pub fn last_pressure(&self) -> f64 {
        self.last_pressure
    }

    /// Forget accumulated windows (e.g. after warm-up) but keep the
    /// last-pressure reading for the controller.
    pub fn reset(&mut self) {
        self.windows = 0;
        self.met = 0;
    }
}

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n·Σx²)`, 1.0 when perfectly equal, →1/n when one value
/// dominates. Empty or all-zero inputs read as perfectly fair (there is
/// nothing to divide unfairly); non-finite entries are ignored.
pub fn jain_index(values: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut n = 0.0;
    for &v in values {
        if v.is_finite() && v >= 0.0 {
            sum += v;
            sum_sq += v * v;
            n += 1.0;
        }
    }
    if n == 0.0 || sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (n * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_met_and_pressure() {
        let t = SloTarget::p99(20.0);
        assert!(t.met(20.0));
        assert!(!t.met(20.1));
        assert!(!t.met(f64::NAN));
        assert!((t.pressure(10.0) - 0.5).abs() < 1e-12);
        assert!((t.pressure(30.0) - 1.5).abs() < 1e-12);
        assert_eq!(t.pressure(f64::INFINITY), f64::MAX);
        let broken = SloTarget {
            percentile: 90.0,
            latency_ms: 0.0,
        };
        assert_eq!(broken.pressure(5.0), f64::MAX);
    }

    #[test]
    fn tracker_attainment_counts_windows() {
        let mut tr = SloTracker::new(SloTarget::p90(10.0));
        assert_eq!(tr.attainment(), 1.0);
        for ms in [5.0, 8.0, 12.0, 9.0] {
            tr.observe(ms);
        }
        assert_eq!(tr.windows(), 4);
        assert!((tr.attainment() - 0.75).abs() < 1e-12);
        assert!((tr.last_pressure() - 0.9).abs() < 1e-12);
        tr.reset();
        assert_eq!(tr.windows(), 0);
        assert_eq!(tr.attainment(), 1.0);
        assert!((tr.last_pressure() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        let skew = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
        // Non-finite entries are ignored, not propagated.
        assert!((jain_index(&[1.0, f64::NAN, 1.0]) - 1.0).abs() < 1e-12);
        let mid = jain_index(&[1.0, 2.0, 3.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }
}
