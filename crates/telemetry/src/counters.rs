//! Counter snapshot/delta arithmetic.
//!
//! Telemetry derives all its rates from free-running hardware counters:
//! active frequency from APERF/MPERF, C0 residency from MPERF/TSC, IPS
//! from the retired-instruction counter, and power from wrapping RAPL
//! energy counters. Everything here is pure delta arithmetic with
//! wraparound handling.

use pap_simcpu::core::CoreCounters;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::rapl::EnergyCounter;
use pap_simcpu::units::{Seconds, Watts};

/// Rates derived from two [`CoreCounters`] snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreRates {
    /// Active (C0) frequency: `Δaperf / Δmperf × base`. Zero when the core
    /// never woke during the interval — matching how turbostat reports
    /// fully idle cores.
    pub active_freq: KiloHertz,
    /// Fraction of the interval spent in C0: `Δmperf / Δtsc`.
    pub c0_residency: f64,
    /// Retired instructions per second.
    pub ips: f64,
}

/// Compute rates between two counter snapshots taken `dt` apart on a part
/// with nominal frequency `base_freq`.
pub fn core_rates(
    prev: CoreCounters,
    now: CoreCounters,
    dt: Seconds,
    base_freq: KiloHertz,
) -> CoreRates {
    debug_assert!(dt.value() > 0.0);
    let d_aperf = now.aperf.wrapping_sub(prev.aperf);
    let d_mperf = now.mperf.wrapping_sub(prev.mperf);
    let d_tsc = now.tsc.wrapping_sub(prev.tsc);
    let d_instr = now.instructions.wrapping_sub(prev.instructions);

    let active_freq = if d_mperf == 0 {
        KiloHertz::ZERO
    } else {
        base_freq.scale(d_aperf as f64 / d_mperf as f64)
    };
    let c0_residency = if d_tsc == 0 {
        0.0
    } else {
        (d_mperf as f64 / d_tsc as f64).clamp(0.0, 1.0)
    };
    CoreRates {
        active_freq,
        c0_residency,
        ips: d_instr as f64 / dt.value(),
    }
}

/// Average power over an interval from two raw RAPL energy readings.
pub fn power_from_energy(prev_raw: u32, now_raw: u32, dt: Seconds) -> Watts {
    debug_assert!(dt.value() > 0.0);
    EnergyCounter::delta_joules(prev_raw, now_raw) / dt
}

/// Average power over an interval from two microjoule energy readings of
/// a counter that wraps at a caller-supplied range — the format Linux
/// powercap exposes (`energy_uj` counts up to `max_energy_range_uj`,
/// then wraps to zero). Unlike [`power_from_energy`], which assumes the
/// 32-bit raw-MSR format in fixed energy units, this variant takes the
/// counter's actual range, since powercap domains advertise ranges that
/// are neither 32-bit nor power-of-two.
///
/// The counter is modelled as counting `0..=max_energy_range_uj` and
/// wrapping from the maximum back to zero, so a wrapped delta is
/// `(max - prev) + now + 1` µJ. Readings above the advertised range are
/// clamped to it (a defensive measure against drivers that briefly
/// report out-of-range values).
pub fn power_from_energy_uj(
    prev_uj: u64,
    now_uj: u64,
    max_energy_range_uj: u64,
    dt: Seconds,
) -> Watts {
    debug_assert!(dt.value() > 0.0);
    debug_assert!(max_energy_range_uj > 0);
    let prev = prev_uj.min(max_energy_range_uj);
    let now = now_uj.min(max_energy_range_uj);
    let delta_uj = if now >= prev {
        now - prev
    } else {
        // `now < prev <= max`, so this cannot overflow: the wrapped
        // delta is at most `max`.
        (max_energy_range_uj - prev) + now + 1
    };
    Watts(delta_uj as f64 * 1e-6 / dt.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(aperf: u64, mperf: u64, tsc: u64, instr: u64) -> CoreCounters {
        CoreCounters {
            aperf,
            mperf,
            tsc,
            instructions: instr,
        }
    }

    #[test]
    fn active_frequency_from_aperf_mperf() {
        let base = KiloHertz::from_mhz(2200);
        // ran at half the base clock while active
        let r = core_rates(
            counters(0, 0, 0, 0),
            counters(1_100_000_000, 2_200_000_000, 2_200_000_000, 1_000_000),
            Seconds(1.0),
            base,
        );
        assert_eq!(r.active_freq, KiloHertz::from_mhz(1100));
        assert!((r.c0_residency - 1.0).abs() < 1e-12);
        assert!((r.ips - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn idle_core_reports_zero_freq() {
        let r = core_rates(
            counters(5, 5, 100, 7),
            counters(5, 5, 2_200_000_100, 7),
            Seconds(1.0),
            KiloHertz::from_mhz(2200),
        );
        assert_eq!(r.active_freq, KiloHertz::ZERO);
        assert_eq!(r.c0_residency, 0.0);
        assert_eq!(r.ips, 0.0);
    }

    #[test]
    fn partial_residency() {
        let base = KiloHertz::from_mhz(2000);
        let r = core_rates(
            counters(0, 0, 0, 0),
            counters(500_000_000, 500_000_000, 2_000_000_000, 0),
            Seconds(1.0),
            base,
        );
        assert!((r.c0_residency - 0.25).abs() < 1e-12);
        // active frequency is full base while awake
        assert_eq!(r.active_freq, base);
    }

    #[test]
    fn counter_wraparound_handled() {
        let r = core_rates(
            counters(u64::MAX - 10, u64::MAX - 10, u64::MAX - 10, u64::MAX - 5),
            counters(90, 90, 90, 5),
            Seconds(1.0),
            KiloHertz::from_mhz(1000),
        );
        // 101 cycles of each
        assert_eq!(r.active_freq, KiloHertz::from_mhz(1000));
        assert!((r.ips - 11.0).abs() < 1e-9);
    }

    #[test]
    fn microjoule_power_without_wrap() {
        // 2 J over 0.5 s = 4 W, far from the range boundary.
        let p = power_from_energy_uj(1_000_000, 3_000_000, 262_143_328_850, Seconds(0.5));
        assert!((p.value() - 4.0).abs() < 1e-9);
        // Zero delta is zero watts.
        let p = power_from_energy_uj(5, 5, 1_000, Seconds(1.0));
        assert_eq!(p.value(), 0.0);
    }

    #[test]
    fn microjoule_power_wraps_at_caller_supplied_range() {
        // A typical powercap package range (not a power of two). Counter
        // runs from 10 µJ below the max, wraps to 0, and lands at 19 µJ:
        // 10 µJ to reach max, 1 µJ for the max -> 0 step, 19 µJ after.
        let max = 262_143_328_850u64;
        let p = power_from_energy_uj(max - 10, 19, max, Seconds(1.0));
        assert!((p.value() - 30e-6).abs() < 1e-12, "{}", p.value());

        // Exactly at the boundary: prev == max, now == 0 is a 1 µJ step.
        let p = power_from_energy_uj(max, 0, max, Seconds(1.0));
        assert!((p.value() - 1e-6).abs() < 1e-15);

        // A small range wraps many orders of magnitude before u32/u64 do.
        let p = power_from_energy_uj(900, 99, 999, Seconds(0.1));
        // (999 - 900) + 99 + 1 = 199 µJ over 0.1 s
        assert!((p.value() - 199e-5).abs() < 1e-12);
    }

    #[test]
    fn microjoule_power_clamps_out_of_range_readings() {
        // A reading above the advertised range is clamped rather than
        // producing a garbage multi-joule delta.
        let p = power_from_energy_uj(100, u64::MAX, 1_000, Seconds(1.0));
        assert!((p.value() - 900e-6).abs() < 1e-12);
    }

    #[test]
    fn power_from_energy_readings() {
        // 16384 units = 1 J over 0.5 s = 2 W
        let p = power_from_energy(100, 100 + 16384, Seconds(0.5));
        assert!((p.value() - 2.0).abs() < 1e-9);
        // wraparound
        let p = power_from_energy(u32::MAX - 8191, 8192, Seconds(1.0));
        assert!((p.value() - 1.0).abs() < 1e-3);
    }
}
