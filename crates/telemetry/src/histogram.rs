//! Log-bucketed latency histograms.
//!
//! Latency experiments record hundreds of thousands of sojourn times; a
//! log-bucketed histogram keeps percentile queries cheap with bounded
//! memory and bounded relative error, the standard approach in production
//! latency tooling.

/// A histogram with logarithmically spaced buckets over
/// `[min_value, max_value]`, plus overflow/underflow buckets.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    min_value: f64,
    /// log-width of each bucket.
    log_step: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Create a histogram spanning `[min_value, max_value]` with
    /// `buckets` log-spaced buckets.
    ///
    /// # Panics
    /// Panics unless `0 < min_value < max_value` and `buckets >= 1`.
    pub fn new(min_value: f64, max_value: f64, buckets: usize) -> LogHistogram {
        assert!(min_value > 0.0 && max_value > min_value && buckets >= 1);
        LogHistogram {
            min_value,
            log_step: (max_value / min_value).ln() / buckets as f64,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// A latency histogram from 10 µs to 100 s with ~2 % relative
    /// resolution (value in seconds).
    pub fn latency() -> LogHistogram {
        LogHistogram::new(1e-5, 100.0, 800)
    }

    /// Record one value.
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite());
        self.total += 1;
        if value < self.min_value {
            self.underflow += 1;
            return;
        }
        let idx = ((value / self.min_value).ln() / self.log_step) as usize;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate percentile (`p` in 0..100): the geometric midpoint of
    /// the bucket containing the rank. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = (p / 100.0 * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return self.min_value;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let lo = self.min_value * (self.log_step * i as f64).exp();
                let hi = self.min_value * (self.log_step * (i + 1) as f64).exp();
                return (lo * hi).sqrt();
            }
        }
        // rank lands in overflow
        self.min_value * (self.log_step * self.counts.len() as f64).exp()
    }

    /// Rebuild a histogram from raw parts. Used by the lock-free
    /// [`crate::metrics::AtomicLogHistogram`] to snapshot its atomic
    /// buckets into a queryable histogram with the same geometry.
    pub(crate) fn from_parts(
        min_value: f64,
        log_step: f64,
        counts: Vec<u64>,
        underflow: u64,
        overflow: u64,
        total: u64,
    ) -> LogHistogram {
        LogHistogram {
            min_value,
            log_step,
            counts,
            underflow,
            overflow,
            total,
        }
    }

    /// Merge another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "geometry mismatch");
        assert!((self.min_value - other.min_value).abs() < 1e-12);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_accuracy() {
        let mut h = LogHistogram::latency();
        // 1..=1000 ms uniformly
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(50.0);
        assert!((p50 - 0.5).abs() / 0.5 < 0.05, "p50 {p50}");
        let p90 = h.percentile(90.0);
        assert!((p90 - 0.9).abs() / 0.9 < 0.05, "p90 {p90}");
    }

    #[test]
    fn empty_and_extremes() {
        let mut h = LogHistogram::new(1.0, 100.0, 10);
        assert_eq!(h.percentile(90.0), 0.0);
        h.record(0.5); // underflow
        h.record(1000.0); // overflow
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), 1.0);
        assert!(h.percentile(100.0) >= 100.0 * 0.99);
    }

    #[test]
    fn percentiles_monotone() {
        let mut h = LogHistogram::latency();
        let mut x = 0.001;
        for _ in 0..10_000 {
            h.record(x);
            x *= 1.0007;
        }
        let mut prev = 0.0;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let v = h.percentile(p);
            assert!(v >= prev, "non-monotone at p{p}");
            prev = v;
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new(1.0, 100.0, 50);
        let mut b = LogHistogram::new(1.0, 100.0, 50);
        for _ in 0..100 {
            a.record(2.0);
            b.record(50.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        let p25 = a.percentile(25.0);
        let p75 = a.percentile(75.0);
        assert!(p25 < 3.0 && p75 > 40.0, "p25={p25} p75={p75}");
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = LogHistogram::new(1.0, 100.0, 50);
        let b = LogHistogram::new(1.0, 100.0, 60);
        a.merge(&b);
    }
}
