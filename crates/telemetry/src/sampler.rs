//! A turbostat-like sampler.
//!
//! The paper records package power, per-core power (Ryzen), retired
//! instructions and active frequency once per second with a modified
//! `turbostat` (§3.1). [`Sampler`] does the same against a simulated chip:
//! it remembers the previous counter snapshot and, on each call, emits a
//! [`Sample`] of derived rates.

use pap_simcpu::chiplike::ChipLike;
use pap_simcpu::core::CoreCounters;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::units::{Seconds, Watts};

use crate::counters::{core_rates, power_from_energy, CoreRates};

/// Per-core slice of one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSample {
    /// Derived counter rates.
    pub rates: CoreRates,
    /// Average core power over the interval, if the platform exposes
    /// per-core energy (Ryzen); `None` on Skylake.
    pub power: Option<Watts>,
    /// The frequency software had requested at sample time.
    pub requested_freq: KiloHertz,
}

/// One telemetry sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Simulated time at the sample.
    pub time: Seconds,
    /// Interval covered by the sample.
    pub interval: Seconds,
    /// Average package power over the interval.
    pub package_power: Watts,
    /// Average core-domain power over the interval.
    pub cores_power: Watts,
    /// Per-core slices.
    pub cores: Vec<CoreSample>,
}

impl Sample {
    /// An empty sample, suitable as the reusable target of
    /// [`Sampler::sample_into`].
    pub fn empty() -> Sample {
        Sample {
            time: Seconds(0.0),
            interval: Seconds(0.0),
            package_power: Watts(0.0),
            cores_power: Watts(0.0),
            cores: Vec::new(),
        }
    }
}

impl Default for Sample {
    fn default() -> Sample {
        Sample::empty()
    }
}

/// Stateful sampler over a chip (any [`ChipLike`] backend; the sampler
/// stores only counter snapshots, so one type serves both simulators).
#[derive(Debug, Clone)]
pub struct Sampler {
    prev_time: Seconds,
    prev_counters: Vec<CoreCounters>,
    prev_core_energy: Vec<u32>,
    prev_pkg_energy: u32,
    prev_cores_energy: u32,
}

impl Sampler {
    /// Initialize against the chip's current counters; the first
    /// [`Sampler::sample`] call covers the interval from here.
    pub fn new<C: ChipLike>(chip: &C) -> Sampler {
        Sampler {
            prev_time: chip.now(),
            prev_counters: (0..chip.num_cores()).map(|c| chip.counters(c)).collect(),
            prev_core_energy: (0..chip.num_cores())
                .map(|c| chip.core_energy_raw(c).unwrap_or(0))
                .collect(),
            prev_pkg_energy: chip.package_energy_raw(),
            prev_cores_energy: chip.cores_energy_raw(),
        }
    }

    /// Take a sample covering the interval since the previous call (or
    /// construction). Returns `None` if no simulated time has passed.
    pub fn sample<C: ChipLike>(&mut self, chip: &C) -> Option<Sample> {
        let mut out = Sample::empty();
        out.cores.reserve(chip.num_cores());
        if self.sample_into(chip, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Buffer-reusing variant of [`Sampler::sample`]: writes the sample
    /// into `out`, reusing its `cores` allocation. Returns `false` (and
    /// leaves `out` untouched) if no simulated time has passed. Once
    /// `out.cores` has reached the chip's core count this performs no
    /// heap allocation.
    pub fn sample_into<C: ChipLike>(&mut self, chip: &C, out: &mut Sample) -> bool {
        let now = chip.now();
        let dt = now - self.prev_time;
        if dt.value() <= 0.0 {
            return false;
        }
        let base = chip.spec().base_freq;
        let per_core_power = chip.spec().per_core_power;

        out.cores.clear();
        for c in 0..chip.num_cores() {
            let counters = chip.counters(c);
            let rates = core_rates(self.prev_counters[c], counters, dt, base);
            let power = if per_core_power {
                let raw = chip.core_energy_raw(c).expect("per-core energy");
                let p = power_from_energy(self.prev_core_energy[c], raw, dt);
                self.prev_core_energy[c] = raw;
                Some(p)
            } else {
                None
            };
            self.prev_counters[c] = counters;
            out.cores.push(CoreSample {
                rates,
                power,
                requested_freq: chip.requested_freq(c),
            });
        }

        let pkg_raw = chip.package_energy_raw();
        let cores_raw = chip.cores_energy_raw();
        out.time = now;
        out.interval = dt;
        out.package_power = power_from_energy(self.prev_pkg_energy, pkg_raw, dt);
        out.cores_power = power_from_energy(self.prev_cores_energy, cores_raw, dt);
        self.prev_pkg_energy = pkg_raw;
        self.prev_cores_energy = cores_raw;
        self.prev_time = now;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_simcpu::chip::Chip;
    use pap_simcpu::platform::PlatformSpec;
    use pap_simcpu::power::LoadDescriptor;

    fn run_chip(spec: PlatformSpec) -> (Chip, Sampler) {
        let mut chip = Chip::new(spec);
        chip.set_load(0, LoadDescriptor::nominal()).unwrap();
        let sampler = Sampler::new(&chip);
        (chip, sampler)
    }

    #[test]
    fn sample_covers_elapsed_interval() {
        let (mut chip, mut sampler) = run_chip(PlatformSpec::skylake());
        chip.run_ticks(1000, Seconds(0.001));
        let s = sampler.sample(&chip).expect("time passed");
        assert!((s.interval.value() - 1.0).abs() < 1e-9);
        assert!(s.package_power.value() > 10.0);
        assert_eq!(s.cores.len(), 10);
    }

    #[test]
    fn no_time_no_sample() {
        let (chip, mut sampler) = run_chip(PlatformSpec::skylake());
        assert!(sampler.sample(&chip).is_none());
    }

    #[test]
    fn active_core_reports_its_frequency() {
        let (mut chip, mut sampler) = run_chip(PlatformSpec::skylake());
        chip.set_requested_freq(0, KiloHertz::from_mhz(1500))
            .unwrap();
        chip.run_ticks(1000, Seconds(0.001));
        let s = sampler.sample(&chip).unwrap();
        assert_eq!(s.cores[0].rates.active_freq, KiloHertz::from_mhz(1500));
        assert_eq!(s.cores[0].requested_freq, KiloHertz::from_mhz(1500));
        // idle cores report zero active frequency
        assert_eq!(s.cores[5].rates.active_freq, KiloHertz::ZERO);
    }

    #[test]
    fn per_core_power_only_on_ryzen() {
        let (mut chip, mut sampler) = run_chip(PlatformSpec::skylake());
        chip.run_ticks(100, Seconds(0.001));
        let s = sampler.sample(&chip).unwrap();
        assert!(s.cores[0].power.is_none());

        let (mut chip, mut sampler) = run_chip(PlatformSpec::ryzen());
        chip.run_ticks(100, Seconds(0.001));
        let s = sampler.sample(&chip).unwrap();
        let p = s.cores[0].power.expect("Ryzen exposes per-core power");
        assert!(p.value() > 0.5, "busy core power {p}");
        assert!(s.cores[7].power.unwrap().value() < 0.2, "idle core power");
    }

    #[test]
    fn consecutive_samples_independent() {
        let (mut chip, mut sampler) = run_chip(PlatformSpec::skylake());
        chip.run_ticks(500, Seconds(0.001));
        let s1 = sampler.sample(&chip).unwrap();
        // stop the workload; second interval should show near-idle power
        chip.set_load(0, LoadDescriptor::IDLE).unwrap();
        chip.run_ticks(500, Seconds(0.001));
        let s2 = sampler.sample(&chip).unwrap();
        assert!(s2.package_power < s1.package_power);
        assert_eq!(s2.cores[0].rates.ips, 0.0);
    }

    #[test]
    fn sample_into_reuses_buffer_and_matches_sample() {
        let (mut chip, sampler) = run_chip(PlatformSpec::skylake());
        let mut a = sampler.clone();
        let mut b = sampler;
        let mut out = Sample::empty();
        assert!(!b.sample_into(&chip, &mut out), "no time passed");

        chip.run_ticks(500, Seconds(0.001));
        let owned = a.sample(&chip).unwrap();
        assert!(b.sample_into(&chip, &mut out));
        assert_eq!(out, owned);

        // A second interval must overwrite, not append, the cores buffer.
        let cap = out.cores.capacity();
        chip.run_ticks(500, Seconds(0.001));
        let owned2 = a.sample(&chip).unwrap();
        assert!(b.sample_into(&chip, &mut out));
        assert_eq!(out, owned2);
        assert_eq!(out.cores.capacity(), cap, "steady state must not realloc");
    }

    #[test]
    fn instructions_rate() {
        let (mut chip, mut sampler) = run_chip(PlatformSpec::skylake());
        for _ in 0..1000 {
            chip.add_instructions(0, 2_000_000).unwrap();
            chip.tick(Seconds(0.001));
        }
        let s = sampler.sample(&chip).unwrap();
        assert!((s.cores[0].rates.ips - 2.0e9).abs() / 2.0e9 < 0.01);
    }
}
