//! Multi-node telemetry aggregation for cluster-level arbitration.
//!
//! A cluster allocator reasons about *nodes*, not cores: each node's
//! `powerd` daemon samples its own chip at the control cadence, and the
//! arbiter needs those per-node views folded into one cluster picture —
//! total draw vs the global cap, per-node saturation for placement, and
//! headroom for rebalancing. [`NodeTelemetry`] is the one-node summary
//! (built from a [`Sample`] plus the node's static membership facts);
//! [`ClusterRollup`] is the cluster-wide fold the allocator consumes.

use pap_simcpu::units::{Seconds, Watts};

use crate::sampler::Sample;

/// One node's telemetry for one control interval, summarized to what
/// cluster-level arbitration needs.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTelemetry {
    /// Node identifier within the cluster.
    pub node: usize,
    /// Measured package power over the interval.
    pub package_power: Watts,
    /// The node's currently enforced power cap.
    pub power_cap: Watts,
    /// Cores with an application pinned (membership, not C0 residency:
    /// a momentarily idle service core is still occupied).
    pub busy_cores: usize,
    /// The node's total core count.
    pub num_cores: usize,
    /// Sum of proportional shares across the node's applications.
    pub total_shares: f64,
    /// Aggregate retired instructions per second across all cores.
    pub total_ips: f64,
    /// The node daemon's learned prediction of its maximum package draw
    /// (every app core at the top P-state), when its online power model
    /// is confident. `None` when the node runs the naive translation or
    /// the fit is not yet trustworthy; the cluster allocator then falls
    /// back to the platform ceiling.
    pub predicted_capacity: Option<Watts>,
}

impl NodeTelemetry {
    /// Summarize a node's chip sample. `busy_cores` and `total_shares`
    /// come from the daemon's app membership — the sampler cannot know
    /// them.
    pub fn from_sample(
        node: usize,
        sample: &Sample,
        power_cap: Watts,
        busy_cores: usize,
        total_shares: f64,
    ) -> NodeTelemetry {
        NodeTelemetry {
            node,
            package_power: sample.package_power,
            power_cap,
            busy_cores,
            num_cores: sample.cores.len(),
            total_shares,
            total_ips: sample.cores.iter().map(|c| c.rates.ips).sum(),
            predicted_capacity: None,
        }
    }

    /// Attach the daemon's learned capacity prediction (the sampler
    /// cannot know it; only the node's daemon can).
    pub fn with_predicted_capacity(mut self, capacity: Option<Watts>) -> NodeTelemetry {
        self.predicted_capacity = capacity;
        self
    }

    /// Occupied fraction of the node's cores.
    pub fn saturation(&self) -> f64 {
        if self.num_cores == 0 {
            return 1.0;
        }
        self.busy_cores as f64 / self.num_cores as f64
    }

    /// Unoccupied cores available for placement.
    pub fn free_cores(&self) -> usize {
        self.num_cores.saturating_sub(self.busy_cores)
    }

    /// Cap minus draw (negative when the node overshoots its cap).
    pub fn headroom(&self) -> Watts {
        self.power_cap - self.package_power
    }
}

/// The cluster-wide aggregation of one control interval's per-node
/// telemetry, in ascending node order.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRollup {
    /// Sampling interval the rows cover.
    pub interval: Seconds,
    /// Per-node summaries, sorted by node id.
    pub nodes: Vec<NodeTelemetry>,
}

impl ClusterRollup {
    /// Fold per-node telemetry (any order) into a rollup; rows are
    /// sorted by node id so downstream iteration is deterministic.
    pub fn new(interval: Seconds, mut nodes: Vec<NodeTelemetry>) -> ClusterRollup {
        nodes.sort_by_key(|n| n.node);
        ClusterRollup { interval, nodes }
    }

    /// Total measured power across the cluster.
    pub fn total_power(&self) -> Watts {
        self.nodes.iter().map(|n| n.package_power).sum()
    }

    /// Sum of all node caps (the budget currently handed out).
    pub fn total_cap(&self) -> Watts {
        self.nodes.iter().map(|n| n.power_cap).sum()
    }

    /// Sum of shares across every application in the cluster.
    pub fn total_shares(&self) -> f64 {
        self.nodes.iter().map(|n| n.total_shares).sum()
    }

    /// Aggregate instruction throughput across the cluster.
    pub fn total_ips(&self) -> f64 {
        self.nodes.iter().map(|n| n.total_ips).sum()
    }

    /// Occupied cores across the cluster.
    pub fn busy_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.busy_cores).sum()
    }

    /// All cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.num_cores).sum()
    }

    /// Occupied fraction of the whole cluster.
    pub fn saturation(&self) -> f64 {
        let total = self.total_cores();
        if total == 0 {
            return 1.0;
        }
        self.busy_cores() as f64 / total as f64
    }

    /// The least-saturated node with at least one free core — the
    /// placement target. Ties break to the lowest node id (placement
    /// must be deterministic for the parallel engine's replay checks).
    pub fn least_saturated(&self) -> Option<usize> {
        self.nodes
            .iter()
            .filter(|n| n.free_cores() > 0)
            .min_by(|a, b| {
                a.saturation()
                    .total_cmp(&b.saturation())
                    .then(a.node.cmp(&b.node))
            })
            .map(|n| n.node)
    }

    /// Jain fairness of per-node power draw (1 = perfectly even).
    pub fn power_balance(&self) -> f64 {
        let draws: Vec<f64> = self.nodes.iter().map(|n| n.package_power.value()).collect();
        crate::stats::jain(&draws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: usize, power: f64, cap: f64, busy: usize, shares: f64) -> NodeTelemetry {
        NodeTelemetry {
            node: id,
            package_power: Watts(power),
            power_cap: Watts(cap),
            busy_cores: busy,
            num_cores: 8,
            total_shares: shares,
            total_ips: 1e9 * busy as f64,
            predicted_capacity: None,
        }
    }

    #[test]
    fn aggregates_and_sorts() {
        let r = ClusterRollup::new(
            Seconds(1.0),
            vec![node(2, 30.0, 45.0, 4, 100.0), node(0, 40.0, 45.0, 8, 200.0)],
        );
        assert_eq!(r.nodes[0].node, 0, "rows sorted by node id");
        assert!((r.total_power().value() - 70.0).abs() < 1e-12);
        assert!((r.total_cap().value() - 90.0).abs() < 1e-12);
        assert_eq!(r.busy_cores(), 12);
        assert_eq!(r.total_cores(), 16);
        assert!((r.total_shares() - 300.0).abs() < 1e-12);
        assert!((r.saturation() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn placement_targets_least_saturated_with_deterministic_ties() {
        let r = ClusterRollup::new(
            Seconds(1.0),
            vec![
                node(0, 40.0, 45.0, 8, 200.0), // full
                node(1, 30.0, 45.0, 3, 80.0),
                node(2, 30.0, 45.0, 3, 80.0), // tie with node 1
                node(3, 35.0, 45.0, 6, 150.0),
            ],
        );
        assert_eq!(r.least_saturated(), Some(1), "tie breaks to lowest id");

        let full = ClusterRollup::new(
            Seconds(1.0),
            vec![node(0, 40.0, 45.0, 8, 200.0), node(1, 41.0, 45.0, 8, 210.0)],
        );
        assert_eq!(full.least_saturated(), None, "no free core anywhere");
    }

    #[test]
    fn node_headroom_and_balance() {
        let n = node(0, 50.0, 45.0, 8, 100.0);
        assert!(n.headroom().value() < 0.0, "overshoot is negative headroom");
        assert_eq!(n.free_cores(), 0);

        let even = ClusterRollup::new(
            Seconds(1.0),
            vec![node(0, 30.0, 45.0, 4, 1.0), node(1, 30.0, 45.0, 4, 1.0)],
        );
        assert!((even.power_balance() - 1.0).abs() < 1e-12);
        let skewed = ClusterRollup::new(
            Seconds(1.0),
            vec![node(0, 60.0, 45.0, 4, 1.0), node(1, 0.0, 45.0, 4, 1.0)],
        );
        assert!(skewed.power_balance() < 0.6);
    }

    #[test]
    fn from_sample_folds_core_rates() {
        use crate::counters::CoreRates;
        use crate::sampler::CoreSample;
        use pap_simcpu::freq::KiloHertz;

        let sample = Sample {
            time: Seconds(2.0),
            interval: Seconds(1.0),
            package_power: Watts(33.0),
            cores_power: Watts(25.0),
            cores: (0..4)
                .map(|_| CoreSample {
                    rates: CoreRates {
                        active_freq: KiloHertz::from_mhz(2000),
                        c0_residency: 1.0,
                        ips: 2e9,
                    },
                    power: None,
                    requested_freq: KiloHertz::from_mhz(2000),
                })
                .collect(),
        };
        let t = NodeTelemetry::from_sample(3, &sample, Watts(45.0), 2, 120.0);
        assert_eq!(t.node, 3);
        assert_eq!(t.num_cores, 4);
        assert!((t.total_ips - 8e9).abs() < 1.0);
        assert!((t.saturation() - 0.5).abs() < 1e-12);
    }
}
