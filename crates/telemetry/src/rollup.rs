//! Multi-node telemetry aggregation for cluster-level arbitration.
//!
//! A cluster allocator reasons about *nodes*, not cores: each node's
//! `powerd` daemon samples its own chip at the control cadence, and the
//! arbiter needs those per-node views folded into one cluster picture —
//! total draw vs the global cap, per-node saturation for placement, and
//! headroom for rebalancing. [`NodeTelemetry`] is the one-node summary
//! (built from a [`Sample`] plus the node's static membership facts);
//! [`ClusterRollup`] is the cluster-wide fold the allocator consumes.
//!
//! At datacenter scale re-folding every node each tick is the
//! bottleneck, so [`DeltaRollup`] keeps the per-node rows resident and
//! only re-aggregates nodes whose telemetry moved beyond a configurable
//! epsilon. With `epsilon = 0` the delta path is *exact*: the
//! materialized rollup and every total are bit-identical to a full
//! re-aggregation (property-tested in `tests/rollup_props.rs`), which
//! is what lets the sharded engine in `pap-scale` prove itself against
//! the serial `clusterd` reference.

use std::collections::BTreeSet;

use pap_simcpu::units::{Seconds, Watts};

use crate::sampler::Sample;

/// One node's telemetry for one control interval, summarized to what
/// cluster-level arbitration needs.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTelemetry {
    /// Node identifier within the cluster.
    pub node: usize,
    /// Measured package power over the interval.
    pub package_power: Watts,
    /// The node's currently enforced power cap.
    pub power_cap: Watts,
    /// Cores with an application pinned (membership, not C0 residency:
    /// a momentarily idle service core is still occupied).
    pub busy_cores: usize,
    /// The node's total core count.
    pub num_cores: usize,
    /// Sum of proportional shares across the node's applications.
    pub total_shares: f64,
    /// Aggregate retired instructions per second across all cores.
    pub total_ips: f64,
    /// The node daemon's learned prediction of its maximum package draw
    /// (every app core at the top P-state), when its online power model
    /// is confident. `None` when the node runs the naive translation or
    /// the fit is not yet trustworthy; the cluster allocator then falls
    /// back to the platform ceiling.
    pub predicted_capacity: Option<Watts>,
}

impl NodeTelemetry {
    /// Summarize a node's chip sample. `busy_cores` and `total_shares`
    /// come from the daemon's app membership — the sampler cannot know
    /// them.
    pub fn from_sample(
        node: usize,
        sample: &Sample,
        power_cap: Watts,
        busy_cores: usize,
        total_shares: f64,
    ) -> NodeTelemetry {
        NodeTelemetry {
            node,
            package_power: sample.package_power,
            power_cap,
            busy_cores,
            num_cores: sample.cores.len(),
            total_shares,
            total_ips: sample.cores.iter().map(|c| c.rates.ips).sum(),
            predicted_capacity: None,
        }
    }

    /// Attach the daemon's learned capacity prediction (the sampler
    /// cannot know it; only the node's daemon can).
    pub fn with_predicted_capacity(mut self, capacity: Option<Watts>) -> NodeTelemetry {
        self.predicted_capacity = capacity;
        self
    }

    /// Whether every numeric field is finite and non-negative — i.e.
    /// the row can enter a cluster aggregate without poisoning it.
    pub fn is_healthy(&self) -> bool {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        ok(self.package_power.value())
            && ok(self.power_cap.value())
            && ok(self.total_ips)
            && ok(self.total_shares)
            && self.predicted_capacity.is_none_or(|c| ok(c.value()))
    }

    /// Clamp non-finite or negative telemetry (a faulty node reporting
    /// NaN power or IPS) to safe zeros so one sick sensor cannot poison
    /// the cluster aggregate. Returns `true` when anything was clamped;
    /// healthy rows pass through bit-unchanged.
    pub fn sanitize(&mut self) -> bool {
        if self.is_healthy() {
            return false;
        }
        let fix = |v: &mut f64| {
            if !v.is_finite() || *v < 0.0 {
                *v = 0.0;
            }
        };
        fix(&mut self.package_power.0);
        fix(&mut self.power_cap.0);
        fix(&mut self.total_ips);
        fix(&mut self.total_shares);
        if let Some(c) = self.predicted_capacity {
            if !c.value().is_finite() || c.value() < 0.0 {
                // A garbage prediction must not clamp the allocator's
                // ceiling; dropping it falls back to the platform max.
                self.predicted_capacity = None;
            }
        }
        true
    }

    /// Occupied fraction of the node's cores.
    pub fn saturation(&self) -> f64 {
        if self.num_cores == 0 {
            return 1.0;
        }
        self.busy_cores as f64 / self.num_cores as f64
    }

    /// Unoccupied cores available for placement.
    pub fn free_cores(&self) -> usize {
        self.num_cores.saturating_sub(self.busy_cores)
    }

    /// Cap minus draw (negative when the node overshoots its cap).
    pub fn headroom(&self) -> Watts {
        self.power_cap - self.package_power
    }
}

/// The cluster-wide aggregation of one control interval's per-node
/// telemetry, in ascending node order.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRollup {
    /// Sampling interval the rows cover.
    pub interval: Seconds,
    /// Per-node summaries, sorted by node id.
    pub nodes: Vec<NodeTelemetry>,
    /// Nodes whose telemetry was clamped by [`NodeTelemetry::sanitize`]
    /// this interval (ascending). Kept out of the public fields so the
    /// only way to build a rollup is through the sanitizing paths.
    unhealthy: Vec<usize>,
}

impl ClusterRollup {
    /// Fold per-node telemetry (any order) into a rollup; rows are
    /// sorted by node id so downstream iteration is deterministic, and
    /// non-finite rows are clamped ([`NodeTelemetry::sanitize`]) with
    /// the offending nodes flagged in [`ClusterRollup::unhealthy_nodes`].
    pub fn new(interval: Seconds, mut nodes: Vec<NodeTelemetry>) -> ClusterRollup {
        nodes.sort_by_key(|n| n.node);
        let mut unhealthy = Vec::new();
        for n in &mut nodes {
            if n.sanitize() {
                unhealthy.push(n.node);
            }
        }
        ClusterRollup {
            interval,
            nodes,
            unhealthy,
        }
    }

    /// Nodes whose telemetry had to be clamped this interval — the
    /// health flag a cluster operator alarms on (ascending node ids).
    pub fn unhealthy_nodes(&self) -> &[usize] {
        &self.unhealthy
    }

    /// Total measured power across the cluster.
    pub fn total_power(&self) -> Watts {
        self.nodes.iter().map(|n| n.package_power).sum()
    }

    /// Sum of all node caps (the budget currently handed out).
    pub fn total_cap(&self) -> Watts {
        self.nodes.iter().map(|n| n.power_cap).sum()
    }

    /// Sum of shares across every application in the cluster.
    pub fn total_shares(&self) -> f64 {
        self.nodes.iter().map(|n| n.total_shares).sum()
    }

    /// Aggregate instruction throughput across the cluster.
    pub fn total_ips(&self) -> f64 {
        self.nodes.iter().map(|n| n.total_ips).sum()
    }

    /// Occupied cores across the cluster.
    pub fn busy_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.busy_cores).sum()
    }

    /// All cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.num_cores).sum()
    }

    /// Occupied fraction of the whole cluster.
    pub fn saturation(&self) -> f64 {
        let total = self.total_cores();
        if total == 0 {
            return 1.0;
        }
        self.busy_cores() as f64 / total as f64
    }

    /// The least-saturated node with at least one free core — the
    /// placement target. Ties break to the lowest node id (placement
    /// must be deterministic for the parallel engine's replay checks).
    pub fn least_saturated(&self) -> Option<usize> {
        self.nodes
            .iter()
            .filter(|n| n.free_cores() > 0)
            .min_by(|a, b| {
                a.saturation()
                    .total_cmp(&b.saturation())
                    .then(a.node.cmp(&b.node))
            })
            .map(|n| n.node)
    }

    /// Jain fairness of per-node power draw (1 = perfectly even). An
    /// empty or fully-idle cluster reports 1.0 (the
    /// [`crate::stats::jain`] degenerate-input convention).
    pub fn power_balance(&self) -> f64 {
        let draws: Vec<f64> = self.nodes.iter().map(|n| n.package_power.value()).collect();
        crate::stats::jain(&draws)
    }
}

/// Did a row move beyond the tolerance? Structural fields (membership,
/// caps, prediction presence) count as moved on any change; the float
/// fields use a relative-or-absolute test so epsilon is meaningful for
/// both watt-scale power and 1e9-scale IPS. `eps = 0` degenerates to
/// "any bit changed".
fn moved(old: &NodeTelemetry, new: &NodeTelemetry, eps: f64) -> bool {
    fn beyond(new: f64, old: f64, eps: f64) -> bool {
        (new - old).abs() > eps * old.abs().max(1.0)
    }
    old.busy_cores != new.busy_cores
        || old.num_cores != new.num_cores
        || old.power_cap != new.power_cap
        || old.predicted_capacity.is_some() != new.predicted_capacity.is_some()
        || matches!(
            (old.predicted_capacity, new.predicted_capacity),
            (Some(a), Some(b)) if beyond(b.value(), a.value(), eps)
        )
        || beyond(new.package_power.value(), old.package_power.value(), eps)
        || beyond(new.total_ips, old.total_ips, eps)
        || beyond(new.total_shares, old.total_shares, eps)
}

/// Incremental cluster aggregation for the sharded control plane.
///
/// Rows stay resident between intervals, indexed by node id; an update
/// whose telemetry has not moved beyond `epsilon` (see [`moved`]) is
/// *skipped* — the cached row and running totals stand. Two regimes:
///
/// * **`epsilon = 0` (exact mode)** — a row is only skipped when it is
///   bit-identical to the cached one, and every total is computed by a
///   full in-node-order fold over the resident rows, so
///   [`DeltaRollup::to_rollup`] and all totals are bit-identical to
///   [`ClusterRollup::new`] over the same latest rows. This is the mode
///   the sharded engine's serial-parity proof runs in.
/// * **`epsilon > 0`** — totals are maintained incrementally
///   (subtract-old/add-new on accepted updates), so skipped rows cost
///   nothing and totals drift from a fresh fold by at most the sum of
///   tolerated per-row deltas plus float re-association error. The
///   speed/accuracy trade the arbiter makes at 1000+ nodes.
///
/// Rows are sanitized on the way in exactly like
/// [`ClusterRollup::new`]; nodes currently flagged unhealthy are
/// reported by [`DeltaRollup::unhealthy_nodes`].
#[derive(Debug, Clone)]
pub struct DeltaRollup {
    epsilon: f64,
    interval: Seconds,
    rows: Vec<Option<NodeTelemetry>>,
    // Running totals; authoritative only when `epsilon > 0`.
    power_w: f64,
    cap_w: f64,
    shares: f64,
    ips: f64,
    busy: usize,
    cores: usize,
    present: usize,
    unhealthy: BTreeSet<usize>,
    updates: u64,
    skips: u64,
}

impl DeltaRollup {
    /// An empty delta store. `epsilon` must be finite and non-negative
    /// (clamped otherwise); `0` selects the exact mode.
    pub fn new(interval: Seconds, epsilon: f64) -> DeltaRollup {
        let epsilon = if epsilon.is_finite() && epsilon > 0.0 {
            epsilon
        } else {
            0.0
        };
        DeltaRollup {
            epsilon,
            interval,
            rows: Vec::new(),
            power_w: 0.0,
            cap_w: 0.0,
            shares: 0.0,
            ips: 0.0,
            busy: 0,
            cores: 0,
            present: 0,
            unhealthy: BTreeSet::new(),
            updates: 0,
            skips: 0,
        }
    }

    /// The configured tolerance (0 = exact mode).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The interval stamped on materialized rollups.
    pub fn interval(&self) -> Seconds {
        self.interval
    }

    /// Number of nodes currently resident.
    pub fn len(&self) -> usize {
        self.present
    }

    /// Whether no nodes are resident.
    pub fn is_empty(&self) -> bool {
        self.present == 0
    }

    /// Updates accepted (row re-aggregated) so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Updates skipped (row within epsilon of the cached one) so far.
    pub fn skips(&self) -> u64 {
        self.skips
    }

    /// Nodes whose most recent accepted update had to be clamped.
    pub fn unhealthy_nodes(&self) -> Vec<usize> {
        self.unhealthy.iter().copied().collect()
    }

    fn add_totals(&mut self, t: &NodeTelemetry) {
        self.power_w += t.package_power.value();
        self.cap_w += t.power_cap.value();
        self.shares += t.total_shares;
        self.ips += t.total_ips;
        self.busy += t.busy_cores;
        self.cores += t.num_cores;
    }

    fn sub_totals(&mut self, t: &NodeTelemetry) {
        self.power_w -= t.package_power.value();
        self.cap_w -= t.power_cap.value();
        self.shares -= t.total_shares;
        self.ips -= t.total_ips;
        self.busy -= t.busy_cores;
        self.cores -= t.num_cores;
    }

    /// Fold one node's fresh telemetry in. Returns `true` when the row
    /// was re-aggregated, `false` when the change was within epsilon
    /// and the cached row stands.
    pub fn update(&mut self, mut tel: NodeTelemetry) -> bool {
        let clamped = tel.sanitize();
        let id = tel.node;
        if id >= self.rows.len() {
            self.rows.resize_with(id + 1, || None);
        }
        match self.rows[id].take() {
            Some(old) => {
                if !moved(&old, &tel, self.epsilon) {
                    self.rows[id] = Some(old);
                    self.skips += 1;
                    return false;
                }
                self.sub_totals(&old);
            }
            None => self.present += 1,
        }
        self.add_totals(&tel);
        if clamped {
            self.unhealthy.insert(id);
        } else {
            self.unhealthy.remove(&id);
        }
        self.rows[id] = Some(tel);
        self.updates += 1;
        true
    }

    /// Drop a departed node's row. Returns whether it was resident.
    pub fn remove(&mut self, node: usize) -> bool {
        match self.rows.get_mut(node).and_then(Option::take) {
            Some(old) => {
                self.sub_totals(&old);
                self.present -= 1;
                self.unhealthy.remove(&node);
                true
            }
            None => false,
        }
    }

    fn exact(&self) -> bool {
        self.epsilon == 0.0
    }

    /// Total measured power. Exact in-order fold in exact mode, cached
    /// running total otherwise.
    pub fn total_power(&self) -> Watts {
        if self.exact() {
            self.rows.iter().flatten().map(|n| n.package_power).sum()
        } else {
            Watts(self.power_w)
        }
    }

    /// Sum of node caps currently handed out.
    pub fn total_cap(&self) -> Watts {
        if self.exact() {
            self.rows.iter().flatten().map(|n| n.power_cap).sum()
        } else {
            Watts(self.cap_w)
        }
    }

    /// Sum of shares across the resident nodes.
    pub fn total_shares(&self) -> f64 {
        if self.exact() {
            self.rows.iter().flatten().map(|n| n.total_shares).sum()
        } else {
            self.shares
        }
    }

    /// Aggregate instruction throughput.
    pub fn total_ips(&self) -> f64 {
        if self.exact() {
            self.rows.iter().flatten().map(|n| n.total_ips).sum()
        } else {
            self.ips
        }
    }

    /// Occupied cores across resident nodes.
    pub fn busy_cores(&self) -> usize {
        if self.exact() {
            self.rows.iter().flatten().map(|n| n.busy_cores).sum()
        } else {
            self.busy
        }
    }

    /// All cores across resident nodes.
    pub fn total_cores(&self) -> usize {
        if self.exact() {
            self.rows.iter().flatten().map(|n| n.num_cores).sum()
        } else {
            self.cores
        }
    }

    /// Materialize the resident rows as a [`ClusterRollup`] (node-id
    /// order). In exact mode the result is bit-identical to
    /// `ClusterRollup::new(interval, latest_rows)`.
    pub fn to_rollup(&self) -> ClusterRollup {
        let nodes: Vec<NodeTelemetry> = self.rows.iter().flatten().cloned().collect();
        // Rows were sanitized on entry, so `new` re-sanitizes no-ops;
        // carry the live health flags instead of the (empty) recompute.
        let mut rollup = ClusterRollup::new(self.interval, nodes);
        rollup.unhealthy = self.unhealthy.iter().copied().collect();
        rollup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: usize, power: f64, cap: f64, busy: usize, shares: f64) -> NodeTelemetry {
        NodeTelemetry {
            node: id,
            package_power: Watts(power),
            power_cap: Watts(cap),
            busy_cores: busy,
            num_cores: 8,
            total_shares: shares,
            total_ips: 1e9 * busy as f64,
            predicted_capacity: None,
        }
    }

    #[test]
    fn aggregates_and_sorts() {
        let r = ClusterRollup::new(
            Seconds(1.0),
            vec![node(2, 30.0, 45.0, 4, 100.0), node(0, 40.0, 45.0, 8, 200.0)],
        );
        assert_eq!(r.nodes[0].node, 0, "rows sorted by node id");
        assert!((r.total_power().value() - 70.0).abs() < 1e-12);
        assert!((r.total_cap().value() - 90.0).abs() < 1e-12);
        assert_eq!(r.busy_cores(), 12);
        assert_eq!(r.total_cores(), 16);
        assert!((r.total_shares() - 300.0).abs() < 1e-12);
        assert!((r.saturation() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn placement_targets_least_saturated_with_deterministic_ties() {
        let r = ClusterRollup::new(
            Seconds(1.0),
            vec![
                node(0, 40.0, 45.0, 8, 200.0), // full
                node(1, 30.0, 45.0, 3, 80.0),
                node(2, 30.0, 45.0, 3, 80.0), // tie with node 1
                node(3, 35.0, 45.0, 6, 150.0),
            ],
        );
        assert_eq!(r.least_saturated(), Some(1), "tie breaks to lowest id");

        let full = ClusterRollup::new(
            Seconds(1.0),
            vec![node(0, 40.0, 45.0, 8, 200.0), node(1, 41.0, 45.0, 8, 210.0)],
        );
        assert_eq!(full.least_saturated(), None, "no free core anywhere");
    }

    #[test]
    fn node_headroom_and_balance() {
        let n = node(0, 50.0, 45.0, 8, 100.0);
        assert!(n.headroom().value() < 0.0, "overshoot is negative headroom");
        assert_eq!(n.free_cores(), 0);

        let even = ClusterRollup::new(
            Seconds(1.0),
            vec![node(0, 30.0, 45.0, 4, 1.0), node(1, 30.0, 45.0, 4, 1.0)],
        );
        assert!((even.power_balance() - 1.0).abs() < 1e-12);
        let skewed = ClusterRollup::new(
            Seconds(1.0),
            vec![node(0, 60.0, 45.0, 4, 1.0), node(1, 0.0, 45.0, 4, 1.0)],
        );
        assert!(skewed.power_balance() < 0.6);
    }

    #[test]
    fn non_finite_telemetry_is_clamped_and_flagged() {
        let mut bad = node(1, 30.0, 45.0, 4, 100.0);
        bad.package_power = Watts(f64::NAN);
        bad.total_ips = f64::INFINITY;
        bad.total_shares = -3.0;
        bad.predicted_capacity = Some(Watts(f64::NEG_INFINITY));
        let r = ClusterRollup::new(Seconds(1.0), vec![node(0, 40.0, 45.0, 8, 200.0), bad]);
        assert_eq!(r.unhealthy_nodes(), &[1], "sick node flagged");
        assert!(
            r.total_power().value().is_finite() && (r.total_power().value() - 40.0).abs() < 1e-12,
            "NaN power clamped out of the aggregate"
        );
        assert!((r.total_ips() - 1e9 * 8.0).abs() < 1.0);
        assert!((r.total_shares() - 200.0).abs() < 1e-12);
        assert!(
            r.nodes[1].predicted_capacity.is_none(),
            "garbage prediction dropped"
        );
        assert!(r.nodes[1].is_healthy(), "row is safe after sanitize");

        let healthy = ClusterRollup::new(Seconds(1.0), vec![node(0, 40.0, 45.0, 8, 200.0)]);
        assert!(healthy.unhealthy_nodes().is_empty());
    }

    #[test]
    fn delta_rollup_exact_mode_matches_full_fold() {
        let mut delta = DeltaRollup::new(Seconds(1.0), 0.0);
        let rows = vec![
            node(0, 40.0, 45.0, 8, 200.0),
            node(1, 30.5, 45.0, 4, 100.0),
            node(2, 12.25, 20.0, 1, 10.0),
        ];
        for r in &rows {
            assert!(delta.update(r.clone()));
        }
        let full = ClusterRollup::new(Seconds(1.0), rows.clone());
        assert_eq!(delta.to_rollup(), full);
        assert_eq!(
            delta.total_power().value().to_bits(),
            full.total_power().value().to_bits()
        );

        // identical re-submission is skipped, state unchanged
        assert!(!delta.update(rows[1].clone()));
        assert_eq!(delta.skips(), 1);
        assert_eq!(delta.to_rollup(), full);

        // any bit of movement is re-aggregated in exact mode
        let mut moved = rows[1].clone();
        moved.package_power = Watts(30.5 + 1e-12);
        assert!(delta.update(moved.clone()));
        let full2 = ClusterRollup::new(Seconds(1.0), vec![rows[0].clone(), moved, rows[2].clone()]);
        assert_eq!(delta.to_rollup(), full2);

        // removal drops the row and the totals
        assert!(delta.remove(2));
        assert!(!delta.remove(2), "double remove is a no-op");
        assert_eq!(delta.len(), 2);
        assert_eq!(
            delta.total_power().value().to_bits(),
            (Watts(40.0) + Watts(30.5 + 1e-12)).value().to_bits()
        );
    }

    #[test]
    fn delta_rollup_epsilon_skips_small_moves() {
        let mut delta = DeltaRollup::new(Seconds(1.0), 0.05);
        delta.update(node(0, 40.0, 45.0, 8, 200.0));
        // 1% power wobble: within 5% tolerance, cached row stands
        assert!(!delta.update(node(0, 40.4, 45.0, 8, 200.0)));
        assert!((delta.total_power().value() - 40.0).abs() < 1e-12);
        // 10% move: re-aggregated
        assert!(delta.update(node(0, 44.0, 45.0, 8, 200.0)));
        assert!((delta.total_power().value() - 44.0).abs() < 1e-9);
        // membership changes always bust the tolerance
        assert!(delta.update(node(0, 44.0, 45.0, 7, 200.0)));
        assert_eq!(delta.busy_cores(), 7);
        // a NaN update is clamped and the node flagged, then recovers
        let mut bad = node(0, f64::NAN, 45.0, 7, 200.0);
        bad.total_ips = f64::NAN;
        assert!(delta.update(bad));
        assert_eq!(delta.unhealthy_nodes(), vec![0]);
        assert_eq!(delta.total_power(), Watts(0.0));
        assert!(delta.update(node(0, 41.0, 45.0, 7, 200.0)));
        assert!(delta.unhealthy_nodes().is_empty());
    }

    #[test]
    fn from_sample_folds_core_rates() {
        use crate::counters::CoreRates;
        use crate::sampler::CoreSample;
        use pap_simcpu::freq::KiloHertz;

        let sample = Sample {
            time: Seconds(2.0),
            interval: Seconds(1.0),
            package_power: Watts(33.0),
            cores_power: Watts(25.0),
            cores: (0..4)
                .map(|_| CoreSample {
                    rates: CoreRates {
                        active_freq: KiloHertz::from_mhz(2000),
                        c0_residency: 1.0,
                        ips: 2e9,
                    },
                    power: None,
                    requested_freq: KiloHertz::from_mhz(2000),
                })
                .collect(),
        };
        let t = NodeTelemetry::from_sample(3, &sample, Watts(45.0), 2, 120.0);
        assert_eq!(t.node, 3);
        assert_eq!(t.num_cores, 4);
        assert!((t.total_ips - 8e9).abs() < 1.0);
        assert!((t.saturation() - 0.5).abs() < 1e-12);
    }
}
