//! # pap-telemetry — turbostat-like telemetry for the simulated chip
//!
//! The paper collects package power, per-core power (Ryzen), retired
//! instruction counts and active frequency once per second with a modified
//! `turbostat` (§3.1). This crate provides the equivalent over
//! [`pap_simcpu::chip::Chip`]:
//!
//! * [`counters`] — delta/rate arithmetic over wrapping hardware counters;
//! * [`energy`] — per-entity Wh/cost accounting at a configurable tariff;
//! * [`health`] — per-sensor health tracking with hysteresis;
//! * [`sampler`] — the stateful 1 Hz sampler;
//! * [`trace`] — time-series recording and CSV export;
//! * [`stats`] — means, percentiles and the box-plot five-number summary;
//! * [`rolling`] — online EWMA / sliding-window / Welford estimators;
//! * [`histogram`] — log-bucketed latency histograms;
//! * [`metrics`] — lock-free counters/histograms with Prometheus-style
//!   exposition for the control plane;
//! * [`slo`] — SLO targets, windowed attainment tracking and the Jain
//!   fairness index for multi-tenant scoring;
//! * [`rollup`] — multi-node aggregation for cluster-level arbitration.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counters;
pub mod energy;
pub mod health;
pub mod histogram;
pub mod metrics;
pub mod rolling;
pub mod rollup;
pub mod sampler;
pub mod slo;
pub mod stats;
pub mod trace;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::counters::{core_rates, power_from_energy, power_from_energy_uj, CoreRates};
    pub use crate::energy::{EnergyAccount, EnergyLedger, Tariff};
    pub use crate::health::{HealthEvent, HealthTracker, SensorHealth, SensorId, SensorState};
    pub use crate::histogram::LogHistogram;
    pub use crate::metrics::{AtomicLogHistogram, ControlMetrics, Counter};
    pub use crate::rollup::{ClusterRollup, NodeTelemetry};
    pub use crate::sampler::{CoreSample, Sample, Sampler};
    pub use crate::slo::{jain_index, SloTarget, SloTracker};
    pub use crate::stats::BoxStats;
    pub use crate::trace::Trace;
}
