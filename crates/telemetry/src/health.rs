//! Per-sensor health tracking with hysteresis.
//!
//! Production power daemons cannot assume their telemetry sources work:
//! MSR reads fail transiently (an `EIO` from `/dev/cpu/<n>/msr`), stay
//! broken after a microcode or driver fault, and frequency writes can be
//! silently ignored. The resilience layer needs one place that answers
//! "can I trust this sensor right now?" without flapping on a single
//! bad read. [`HealthTracker`] keeps a [`SensorHealth`] record per
//! [`SensorId`] and applies two-sided hysteresis: a sensor turns
//! *unhealthy* only after `demote_after` consecutive failures, and turns
//! *healthy* again only after `promote_after` consecutive successes.
//! Every state change is recorded as a [`HealthEvent`] for traces and
//! post-mortems.

use std::collections::BTreeMap;

use pap_simcpu::units::Seconds;

/// Identifies one telemetry source or actuator the daemon depends on.
///
/// The variants mirror the paper's telemetry-requirements table: power
/// shares need [`SensorId::CorePower`] (Ryzen energy MSRs), frequency
/// shares need only [`SensorId::PackagePower`], and a plain uniform cap
/// needs just a working [`SensorId::FreqActuator`] on each core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SensorId {
    /// The package energy counter (package power derives from it).
    PackagePower,
    /// A per-core energy counter (per-core power; Ryzen only).
    CorePower(usize),
    /// A core's fixed counters (APERF/MPERF/TSC/instructions).
    CoreCounters(usize),
    /// A core's P-state write path (`IA32_PERF_CTL` or the AMD
    /// equivalent); unhealthy when writes error or are accepted but
    /// ineffective (stuck).
    FreqActuator(usize),
    /// The host's CPU-utilization source (`/proc/stat` on Linux).
    /// Unhealthy means per-core C0 residency is a stale or assumed
    /// value, so IPS-derived policy inputs must not be trusted.
    Utilization,
}

impl std::fmt::Display for SensorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensorId::PackagePower => write!(f, "pkg-power"),
            SensorId::CorePower(c) => write!(f, "core{c}-power"),
            SensorId::CoreCounters(c) => write!(f, "core{c}-counters"),
            SensorId::FreqActuator(c) => write!(f, "core{c}-freq-wr"),
            SensorId::Utilization => write!(f, "cpu-util"),
        }
    }
}

/// Health state of one sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorState {
    /// Readings are trustworthy.
    Healthy,
    /// The sensor has failed often enough that consumers must stop
    /// relying on it.
    Unhealthy,
}

/// Counters and state for one sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorHealth {
    /// Current state after hysteresis.
    pub state: SensorState,
    /// Failures since the last success.
    pub consecutive_failures: u32,
    /// Successes since the last failure.
    pub consecutive_successes: u32,
    /// Total observations recorded.
    pub total_observations: u64,
    /// Total failed observations.
    pub total_failures: u64,
    /// Total retries spent on this sensor (recorded separately by the
    /// retry layer; a success after two retries is one observation and
    /// two retries).
    pub total_retries: u64,
    /// Healthy→unhealthy and unhealthy→healthy transitions.
    pub transitions: u32,
}

impl SensorHealth {
    fn new() -> SensorHealth {
        SensorHealth {
            state: SensorState::Healthy,
            consecutive_failures: 0,
            consecutive_successes: 0,
            total_observations: 0,
            total_failures: 0,
            total_retries: 0,
            transitions: 0,
        }
    }
}

/// One recorded health-state transition, for trace output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthEvent {
    /// Simulated time of the transition.
    pub time: Seconds,
    /// The sensor that changed state.
    pub sensor: SensorId,
    /// The state it changed to.
    pub to: SensorState,
}

/// Tracks health for any number of sensors with two-sided hysteresis.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    demote_after: u32,
    promote_after: u32,
    sensors: BTreeMap<SensorId, SensorHealth>,
    events: Vec<HealthEvent>,
}

impl HealthTracker {
    /// A tracker that declares a sensor unhealthy after `demote_after`
    /// consecutive failures and healthy again after `promote_after`
    /// consecutive successes. Both must be positive.
    pub fn new(demote_after: u32, promote_after: u32) -> HealthTracker {
        assert!(demote_after > 0 && promote_after > 0);
        HealthTracker {
            demote_after,
            promote_after,
            sensors: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// Record one observation of `sensor` at `time`. Returns the
    /// transition event if this observation flipped the sensor's state.
    pub fn record(&mut self, sensor: SensorId, ok: bool, time: Seconds) -> Option<HealthEvent> {
        let demote_after = self.demote_after;
        let promote_after = self.promote_after;
        let h = self.sensors.entry(sensor).or_insert_with(SensorHealth::new);
        h.total_observations += 1;
        if ok {
            h.consecutive_successes += 1;
            h.consecutive_failures = 0;
        } else {
            h.total_failures += 1;
            h.consecutive_failures += 1;
            h.consecutive_successes = 0;
        }
        let next = match h.state {
            SensorState::Healthy if h.consecutive_failures >= demote_after => {
                SensorState::Unhealthy
            }
            SensorState::Unhealthy if h.consecutive_successes >= promote_after => {
                SensorState::Healthy
            }
            same => same,
        };
        if next != h.state {
            h.state = next;
            h.transitions += 1;
            let event = HealthEvent {
                time,
                sensor,
                to: next,
            };
            self.events.push(event);
            Some(event)
        } else {
            None
        }
    }

    /// Credit `n` retries against `sensor`'s counters.
    pub fn record_retries(&mut self, sensor: SensorId, n: u64) {
        self.sensors
            .entry(sensor)
            .or_insert_with(SensorHealth::new)
            .total_retries += n;
    }

    /// Whether `sensor` is currently healthy. Sensors never observed are
    /// healthy: absence of evidence is not failure.
    pub fn is_healthy(&self, sensor: SensorId) -> bool {
        self.sensors
            .get(&sensor)
            .is_none_or(|h| h.state == SensorState::Healthy)
    }

    /// The full record for one sensor, if it has ever been observed.
    pub fn sensor(&self, sensor: SensorId) -> Option<&SensorHealth> {
        self.sensors.get(&sensor)
    }

    /// Every sensor observed so far, in [`SensorId`] order.
    pub fn sensors(&self) -> impl Iterator<Item = (&SensorId, &SensorHealth)> {
        self.sensors.iter()
    }

    /// All state transitions recorded, in time order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Seconds = Seconds(1.0);

    #[test]
    fn unknown_sensor_is_healthy() {
        let t = HealthTracker::new(3, 5);
        assert!(t.is_healthy(SensorId::PackagePower));
        assert!(t.sensor(SensorId::CorePower(2)).is_none());
    }

    #[test]
    fn demotion_needs_consecutive_failures() {
        let mut t = HealthTracker::new(3, 2);
        let s = SensorId::CorePower(0);
        // two failures, a success, two failures: never three in a row
        for ok in [false, false, true, false, false] {
            assert!(t.record(s, ok, T).is_none());
        }
        assert!(t.is_healthy(s));
        let ev = t.record(s, false, T).expect("third consecutive failure");
        assert_eq!(ev.to, SensorState::Unhealthy);
        assert!(!t.is_healthy(s));
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn promotion_needs_consecutive_successes() {
        let mut t = HealthTracker::new(1, 3);
        let s = SensorId::PackagePower;
        t.record(s, false, T);
        assert!(!t.is_healthy(s));
        t.record(s, true, T);
        t.record(s, true, T);
        assert!(!t.is_healthy(s), "two of three successes");
        t.record(s, false, T); // resets the streak
        t.record(s, true, T);
        t.record(s, true, T);
        assert!(!t.is_healthy(s));
        let ev = t.record(s, true, Seconds(9.0)).expect("third success");
        assert_eq!(ev.to, SensorState::Healthy);
        assert_eq!(ev.time, Seconds(9.0));
        assert!(t.is_healthy(s));
    }

    #[test]
    fn counters_accumulate() {
        let mut t = HealthTracker::new(2, 2);
        let s = SensorId::FreqActuator(3);
        t.record(s, false, T);
        t.record(s, true, T);
        t.record_retries(s, 4);
        let h = t.sensor(s).unwrap();
        assert_eq!(h.total_observations, 2);
        assert_eq!(h.total_failures, 1);
        assert_eq!(h.total_retries, 4);
        assert_eq!(h.transitions, 0);
    }

    #[test]
    fn sensors_iterate_in_order() {
        let mut t = HealthTracker::new(1, 1);
        t.record(SensorId::FreqActuator(1), true, T);
        t.record(SensorId::PackagePower, true, T);
        t.record(SensorId::CorePower(0), true, T);
        let ids: Vec<SensorId> = t.sensors().map(|(id, _)| *id).collect();
        assert_eq!(
            ids,
            vec![
                SensorId::PackagePower,
                SensorId::CorePower(0),
                SensorId::FreqActuator(1),
            ]
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(SensorId::PackagePower.to_string(), "pkg-power");
        assert_eq!(SensorId::CorePower(5).to_string(), "core5-power");
        assert_eq!(SensorId::FreqActuator(2).to_string(), "core2-freq-wr");
        assert_eq!(SensorId::CoreCounters(1).to_string(), "core1-counters");
    }
}
