//! Rolling (online) statistics for control loops.
//!
//! Controllers act on noisy 1 Hz samples; these small online estimators
//! give them smoothed views without storing whole traces: an EWMA (the
//! same filter RAPL's running average uses), a fixed-length window with
//! exact mean/min/max/percentile, and an online mean/variance
//! (Welford) for settling detection.

use std::collections::VecDeque;

/// Exponentially weighted moving average.
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with smoothing factor `alpha` in (0, 1]; larger = faster.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        Ewma { alpha, value: None }
    }

    /// Create from a time constant: `alpha = dt / tau` (clamped to 1).
    pub fn from_time_constant(dt: f64, tau: f64) -> Ewma {
        assert!(dt > 0.0 && tau > 0.0);
        Ewma::new((dt / tau).min(1.0))
    }

    /// Feed one observation; returns the updated average.
    pub fn observe(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(v);
        v
    }

    /// Current average (`None` before the first observation).
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Fixed-capacity sliding window with exact order statistics.
#[derive(Debug, Clone)]
pub struct Window {
    cap: usize,
    buf: VecDeque<f64>,
}

impl Window {
    /// Create a window holding the last `cap` observations.
    pub fn new(cap: usize) -> Window {
        assert!(cap > 0, "window capacity must be positive");
        Window {
            cap,
            buf: VecDeque::with_capacity(cap),
        }
    }

    /// Push an observation, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(x);
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// Mean over the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        self.buf.iter().sum::<f64>() / self.buf.len() as f64
    }

    /// Minimum over the window.
    pub fn min(&self) -> Option<f64> {
        self.buf.iter().copied().reduce(f64::min)
    }

    /// Maximum over the window.
    pub fn max(&self) -> Option<f64> {
        self.buf.iter().copied().reduce(f64::max)
    }

    /// Exact percentile over the window contents.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let v: Vec<f64> = self.buf.iter().copied().collect();
        Some(crate::stats::percentile(&v, p))
    }
}

/// Welford's online mean/variance, for settling detection ("has the
/// signal's variance over the run dropped below a threshold?").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        for _ in 0..100 {
            e.observe(42.0);
        }
        assert!((e.value().unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_observation_initializes() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.observe(7.0), 7.0);
        // second observation moves by alpha of the gap
        assert!((e.observe(17.0) - 8.0).abs() < 1e-12);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    fn ewma_time_constant_matches_rapl_form() {
        // dt=1ms, tau=100ms -> alpha 0.01, same as the RAPL controller's
        let e = Ewma::from_time_constant(0.001, 0.1);
        let _ = e;
        let clamped = Ewma::from_time_constant(1.0, 0.5);
        let mut c = clamped;
        assert_eq!(c.observe(5.0), 5.0);
        assert_eq!(c.observe(9.0), 9.0, "alpha clamped to 1 tracks instantly");
    }

    #[test]
    fn window_evicts_and_aggregates() {
        let mut w = Window::new(3);
        assert!(w.is_empty());
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        assert!(w.is_full());
        assert_eq!(w.len(), 3);
        assert!((w.mean() - 3.0).abs() < 1e-12); // 2,3,4
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(4.0));
        assert_eq!(w.percentile(50.0), Some(3.0));
    }

    #[test]
    fn window_empty_queries() {
        let w = Window::new(5);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.percentile(90.0), None);
    }

    #[test]
    fn welford_matches_batch_statistics() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.observe(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        // batch reference
        assert!((w.mean() - crate::stats::mean(&data)).abs() < 1e-12);
        assert!((w.std_dev() - crate::stats::std_dev(&data)).abs() < 1e-12);
    }

    #[test]
    fn welford_degenerate_cases() {
        let mut w = Welford::new();
        assert_eq!(w.variance(), 0.0);
        w.observe(3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.mean(), 3.0);
    }
}
