//! Lock-free control-plane metrics.
//!
//! The decision trace (see `powerd::obs`) answers *why* the controller
//! did what it did; this module answers *how often* and *how fast*.
//! [`Counter`] and [`AtomicLogHistogram`] are shared-nothing atomics a
//! control loop can bump from any thread without taking a lock, and
//! [`ControlMetrics`] groups the fixed set of control-plane series with a
//! Prometheus-style text exposition. The histogram reuses the bucket
//! geometry and percentile machinery of [`LogHistogram`] so both sinks
//! report identical quantiles.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::histogram::LogHistogram;

/// A monotonically increasing event counter (relaxed atomics — counts are
/// for reporting, not synchronization).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free variant of [`LogHistogram`]: identical log-spaced bucket
/// geometry, but atomic buckets so concurrent recorders never contend on
/// a lock. Queries go through [`AtomicLogHistogram::snapshot`], which
/// materializes a plain [`LogHistogram`] and reuses its percentile code.
#[derive(Debug)]
pub struct AtomicLogHistogram {
    min_value: f64,
    log_step: f64,
    counts: Vec<AtomicU64>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    total: AtomicU64,
}

impl AtomicLogHistogram {
    /// Create a histogram spanning `[min_value, max_value]` with
    /// `buckets` log-spaced buckets.
    ///
    /// # Panics
    /// Panics unless `0 < min_value < max_value` and `buckets >= 1`.
    pub fn new(min_value: f64, max_value: f64, buckets: usize) -> AtomicLogHistogram {
        assert!(min_value > 0.0 && max_value > min_value && buckets >= 1);
        AtomicLogHistogram {
            min_value,
            log_step: (max_value / min_value).ln() / buckets as f64,
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Record one value. Non-finite values are dropped (a poisoned timer
    /// must not poison the distribution).
    pub fn record(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.total.fetch_add(1, Ordering::Relaxed);
        if value < self.min_value {
            self.underflow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = ((value / self.min_value).ln() / self.log_step) as usize;
        match self.counts.get(idx) {
            Some(c) => c.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Materialize the current counts into a plain [`LogHistogram`]
    /// (same geometry) for percentile queries and merging.
    pub fn snapshot(&self) -> LogHistogram {
        LogHistogram::from_parts(
            self.min_value,
            self.log_step,
            self.counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            self.underflow.load(Ordering::Relaxed),
            self.overflow.load(Ordering::Relaxed),
            self.total.load(Ordering::Relaxed),
        )
    }

    /// Approximate percentile via [`LogHistogram::percentile`] on a
    /// snapshot; 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        self.snapshot().percentile(p)
    }
}

/// The fixed set of control-plane series: event counters plus decision
/// latency and budget-overshoot histograms. All methods take `&self`, so
/// one instance can sit behind an `Arc` and be bumped from the daemon,
/// the resilience ladder and the cluster arbiter concurrently.
#[derive(Debug)]
pub struct ControlMetrics {
    /// Control decisions recorded (one per control interval).
    pub decisions: Counter,
    /// Malformed samples carrying fewer cores than an app's pin.
    pub short_samples: Counter,
    /// Intervals where a core's achieved frequency saturated below its
    /// target (the paper's "useful max" ceiling).
    pub saturations: Counter,
    /// Actions held/reused instead of recomputed (telemetry gaps,
    /// actuator overrides, short samples).
    pub held_actions: Counter,
    /// Backstop engagements (sustained over-limit streaks).
    pub backstops: Counter,
    /// Degradation-ladder transitions.
    pub ladder_transitions: Counter,
    /// Actuator-override detections (external agent moved the knobs).
    pub actuator_overrides: Counter,
    /// Cluster power-claim revocations (min-funding style).
    pub revocations: Counter,
    /// Cluster node cap retargets.
    pub retargets: Counter,
    /// Cluster rebalance rounds.
    pub rebalances: Counter,
    /// Per-app share retargets (SLO controller boosts/sheds).
    pub share_retargets: Counter,
    /// Nodes taken out of service (drained and excluded from placement).
    pub quarantines: Counter,
    /// Quarantined nodes returned to service.
    pub restores: Counter,
    /// Decision computation latency in seconds (10 ns .. 1 s).
    pub decision_latency: AtomicLogHistogram,
    /// Measured power above budget, in watts, recorded only on overshoot
    /// intervals (10 mW .. 1 kW).
    pub overshoot_watts: AtomicLogHistogram,
}

impl ControlMetrics {
    /// A zeroed registry.
    pub fn new() -> ControlMetrics {
        ControlMetrics {
            decisions: Counter::new(),
            short_samples: Counter::new(),
            saturations: Counter::new(),
            held_actions: Counter::new(),
            backstops: Counter::new(),
            ladder_transitions: Counter::new(),
            actuator_overrides: Counter::new(),
            revocations: Counter::new(),
            retargets: Counter::new(),
            rebalances: Counter::new(),
            share_retargets: Counter::new(),
            quarantines: Counter::new(),
            restores: Counter::new(),
            decision_latency: AtomicLogHistogram::new(1e-8, 1.0, 400),
            overshoot_watts: AtomicLogHistogram::new(1e-2, 1e3, 200),
        }
    }

    /// Prometheus-style text exposition of every series. Histograms are
    /// rendered as summaries (p50/p90/p99 quantile gauges plus `_count`).
    pub fn expose(&self) -> String {
        let mut out = String::new();
        let counters: [(&str, &str, &Counter); 13] = [
            (
                "pap_decisions_total",
                "Control decisions recorded.",
                &self.decisions,
            ),
            (
                "pap_short_samples_total",
                "Malformed samples shorter than an app's core pin.",
                &self.short_samples,
            ),
            (
                "pap_saturations_total",
                "Cores saturated below their frequency target.",
                &self.saturations,
            ),
            (
                "pap_held_actions_total",
                "Actions held instead of recomputed.",
                &self.held_actions,
            ),
            (
                "pap_backstops_total",
                "Backstop engagements on over-limit streaks.",
                &self.backstops,
            ),
            (
                "pap_ladder_transitions_total",
                "Degradation-ladder transitions.",
                &self.ladder_transitions,
            ),
            (
                "pap_actuator_overrides_total",
                "External actuator overrides detected.",
                &self.actuator_overrides,
            ),
            (
                "pap_revocations_total",
                "Cluster power-claim revocations.",
                &self.revocations,
            ),
            (
                "pap_retargets_total",
                "Cluster node cap retargets.",
                &self.retargets,
            ),
            (
                "pap_rebalances_total",
                "Cluster rebalance rounds.",
                &self.rebalances,
            ),
            (
                "pap_share_retargets_total",
                "Per-app share retargets (SLO controller boosts/sheds).",
                &self.share_retargets,
            ),
            (
                "pap_quarantines_total",
                "Nodes taken out of service.",
                &self.quarantines,
            ),
            (
                "pap_restores_total",
                "Quarantined nodes returned to service.",
                &self.restores,
            ),
        ];
        for (name, help, c) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        let summaries: [(&str, &str, &AtomicLogHistogram); 2] = [
            (
                "pap_decision_latency_seconds",
                "Control decision computation latency.",
                &self.decision_latency,
            ),
            (
                "pap_budget_overshoot_watts",
                "Measured power above budget on overshoot intervals.",
                &self.overshoot_watts,
            ),
        ];
        for (name, help, h) in summaries {
            let snap = h.snapshot();
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} summary");
            for q in [50.0, 90.0, 99.0] {
                let _ = writeln!(
                    out,
                    "{name}{{quantile=\"{}\"}} {:.9}",
                    q / 100.0,
                    snap.percentile(q)
                );
            }
            let _ = writeln!(out, "{name}_count {}", snap.count());
        }
        out
    }
}

impl Default for ControlMetrics {
    fn default() -> ControlMetrics {
        ControlMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_increments() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn atomic_histogram_matches_plain_histogram() {
        let atomic = AtomicLogHistogram::new(1e-5, 100.0, 800);
        let mut plain = LogHistogram::new(1e-5, 100.0, 800);
        for i in 1..=1000 {
            let v = i as f64 / 1000.0;
            atomic.record(v);
            plain.record(v);
        }
        assert_eq!(atomic.count(), plain.count());
        for p in [1.0, 25.0, 50.0, 90.0, 99.0] {
            assert_eq!(atomic.percentile(p), plain.percentile(p), "p{p}");
        }
        // Snapshots merge with plain histograms of the same geometry.
        let mut merged = atomic.snapshot();
        merged.merge(&plain);
        assert_eq!(merged.count(), 2000);
    }

    #[test]
    fn atomic_histogram_drops_non_finite() {
        let h = AtomicLogHistogram::new(1.0, 10.0, 4);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = Arc::new(ControlMetrics::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        m.decisions.inc();
                        m.decision_latency.record(1e-6 * (1 + i % 10) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.decisions.get(), 4000);
        assert_eq!(m.decision_latency.count(), 4000);
    }

    #[test]
    fn exposition_format() {
        let m = ControlMetrics::new();
        m.decisions.add(7);
        m.overshoot_watts.record(2.5);
        let text = m.expose();
        assert!(text.contains("# TYPE pap_decisions_total counter"));
        assert!(text.contains("pap_decisions_total 7"));
        assert!(text.contains("pap_budget_overshoot_watts{quantile=\"0.5\"}"));
        assert!(text.contains("pap_budget_overshoot_watts_count 1"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed line: {line}");
        }
    }
}
