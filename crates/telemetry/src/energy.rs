//! Per-entity energy and cost accounting.
//!
//! FastCap-style per-watt efficiency scoring needs more than interval
//! power: operators bill in watt-hours and dollars. [`EnergyLedger`]
//! accumulates joules per named entity (an app, a tenant, a node) plus
//! a package total, and converts to Wh and USD at a configurable
//! [`Tariff`]. Accumulation is pure arithmetic over values the control
//! loop already has (interval power × interval length), so attaching a
//! ledger to a daemon is strictly off the control path: a run with
//! accounting enabled produces bit-identical control actions to one
//! without (`tests/energy_offpath.rs` and the `ext_tenants` gate
//! enforce this).
//!
//! Export follows the PR 4 sink idioms: hand-rolled JSONL (one object
//! per entity plus a package summary line) and Prometheus-style text
//! exposition, with no serde dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Joules per watt-hour.
const J_PER_WH: f64 = 3600.0;

/// An electricity price in USD per kilowatt-hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tariff {
    /// Price of one kWh in USD (e.g. `0.12` for 12 ¢/kWh).
    pub usd_per_kwh: f64,
}

impl Tariff {
    /// A tariff of `usd_per_kwh` dollars per kilowatt-hour. Must be
    /// finite and non-negative.
    pub fn new(usd_per_kwh: f64) -> Tariff {
        assert!(
            usd_per_kwh.is_finite() && usd_per_kwh >= 0.0,
            "tariff must be a finite non-negative $/kWh, got {usd_per_kwh}"
        );
        Tariff { usd_per_kwh }
    }

    /// Cost in USD of `wh` watt-hours.
    pub fn cost_usd(&self, wh: f64) -> f64 {
        wh / 1000.0 * self.usd_per_kwh
    }
}

/// One entity's accumulated energy, resolved at read time.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyAccount {
    /// Entity name (app, tenant, ...).
    pub name: String,
    /// Accumulated energy in watt-hours.
    pub wh: f64,
    /// Cost at the ledger's tariff, if one is set.
    pub cost_usd: Option<f64>,
}

/// Accumulates energy per named entity plus a package total.
///
/// Entities are created on first touch; accumulating into an existing
/// entity performs no heap allocation, so a ledger can ride along the
/// daemon's zero-allocation steady-state control step.
#[derive(Debug, Clone, Default)]
pub struct EnergyLedger {
    tariff: Option<Tariff>,
    names: Vec<String>,
    joules: Vec<f64>,
    index: BTreeMap<String, usize>,
    package_j: f64,
    elapsed_s: f64,
}

impl EnergyLedger {
    /// An empty ledger with no tariff (energy only, no cost).
    pub fn new() -> EnergyLedger {
        EnergyLedger::default()
    }

    /// An empty ledger pricing energy at `tariff`.
    pub fn with_tariff(tariff: Tariff) -> EnergyLedger {
        EnergyLedger {
            tariff: Some(tariff),
            ..EnergyLedger::default()
        }
    }

    /// The ledger's tariff, if any.
    pub fn tariff(&self) -> Option<Tariff> {
        self.tariff
    }

    /// Register `name` ahead of time and return its index, so hot paths
    /// can accumulate by index without a map lookup. Registering an
    /// existing name returns its existing index.
    pub fn register(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.joules.push(0.0);
        self.index.insert(name.to_string(), i);
        i
    }

    /// Accumulate `joules` against the entity at `index` (from
    /// [`EnergyLedger::register`]). Allocation-free.
    pub fn add(&mut self, index: usize, joules: f64) {
        debug_assert!(joules >= 0.0 && joules.is_finite(), "energy {joules}");
        self.joules[index] += joules.max(0.0);
    }

    /// Accumulate `joules` against `name`, creating the account on
    /// first touch. Allocation-free for existing accounts.
    pub fn add_named(&mut self, name: &str, joules: f64) {
        match self.index.get(name) {
            Some(&i) => self.add(i, joules),
            None => {
                let i = self.register(name);
                self.add(i, joules);
            }
        }
    }

    /// Accumulate one interval of package energy (`joules` over `dt`
    /// seconds). Entity energy is attributed separately by the caller;
    /// the package total is the ground truth the bill is paid on.
    pub fn add_package(&mut self, joules: f64, dt_s: f64) {
        debug_assert!(joules >= 0.0 && joules.is_finite(), "energy {joules}");
        debug_assert!(dt_s >= 0.0 && dt_s.is_finite(), "interval {dt_s}");
        self.package_j += joules.max(0.0);
        self.elapsed_s += dt_s.max(0.0);
    }

    /// Accumulated package energy in watt-hours.
    pub fn package_wh(&self) -> f64 {
        self.package_j / J_PER_WH
    }

    /// Package cost in USD at the tariff, if one is set.
    pub fn package_cost_usd(&self) -> Option<f64> {
        self.tariff.map(|t| t.cost_usd(self.package_wh()))
    }

    /// Seconds of accounted runtime.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// One entity's watt-hours by name.
    pub fn wh(&self, name: &str) -> Option<f64> {
        self.index.get(name).map(|&i| self.joules[i] / J_PER_WH)
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the ledger has no entities.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All accounts in registration order, with costs resolved.
    pub fn accounts(&self) -> Vec<EnergyAccount> {
        self.names
            .iter()
            .zip(&self.joules)
            .map(|(name, &j)| {
                let wh = j / J_PER_WH;
                EnergyAccount {
                    name: name.clone(),
                    wh,
                    cost_usd: self.tariff.map(|t| t.cost_usd(wh)),
                }
            })
            .collect()
    }

    /// JSONL export: one object per entity in registration order, then
    /// a package summary line. Cost fields appear only when a tariff is
    /// set, so tariff-free ledgers stay byte-stable.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for a in self.accounts() {
            let _ = write!(out, "{{\"entity\":\"{}\",\"energy_wh\":{:.6}", a.name, a.wh);
            if let Some(c) = a.cost_usd {
                let _ = write!(out, ",\"cost_usd\":{c:.6}");
            }
            out.push_str("}\n");
        }
        let _ = write!(
            out,
            "{{\"entity\":\"_package\",\"energy_wh\":{:.6},\"elapsed_s\":{:.3}",
            self.package_wh(),
            self.elapsed_s
        );
        if let Some(t) = self.tariff {
            let _ = write!(
                out,
                ",\"tariff_usd_per_kwh\":{},\"cost_usd\":{:.6}",
                t.usd_per_kwh,
                t.cost_usd(self.package_wh())
            );
        }
        out.push_str("}\n");
        out
    }

    /// Prometheus-style text exposition: per-entity Wh (and USD when a
    /// tariff is set) counters plus the package totals.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# HELP pap_energy_wh_total Accumulated energy attributed to the entity."
        );
        let _ = writeln!(out, "# TYPE pap_energy_wh_total counter");
        for a in self.accounts() {
            let _ = writeln!(
                out,
                "pap_energy_wh_total{{entity=\"{}\"}} {:.6}",
                a.name, a.wh
            );
        }
        let _ = writeln!(
            out,
            "# HELP pap_package_energy_wh_total Accumulated package energy."
        );
        let _ = writeln!(out, "# TYPE pap_package_energy_wh_total counter");
        let _ = writeln!(out, "pap_package_energy_wh_total {:.6}", self.package_wh());
        if let Some(t) = self.tariff {
            let _ = writeln!(
                out,
                "# HELP pap_energy_cost_usd_total Energy cost attributed to the entity."
            );
            let _ = writeln!(out, "# TYPE pap_energy_cost_usd_total counter");
            for a in self.accounts() {
                let _ = writeln!(
                    out,
                    "pap_energy_cost_usd_total{{entity=\"{}\"}} {:.6}",
                    a.name,
                    a.cost_usd.unwrap_or(0.0)
                );
            }
            let _ = writeln!(
                out,
                "# HELP pap_package_energy_cost_usd_total Package energy cost at the tariff."
            );
            let _ = writeln!(out, "# TYPE pap_package_energy_cost_usd_total counter");
            let _ = writeln!(
                out,
                "pap_package_energy_cost_usd_total {:.6}",
                t.cost_usd(self.package_wh())
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tariff_prices_watt_hours() {
        let t = Tariff::new(0.12);
        // 1 kWh at 12 ¢.
        assert!((t.cost_usd(1000.0) - 0.12).abs() < 1e-12);
        assert_eq!(Tariff::new(0.0).cost_usd(500.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "tariff")]
    fn negative_tariff_rejected() {
        Tariff::new(-0.1);
    }

    #[test]
    fn ledger_accumulates_per_entity_and_package() {
        let mut l = EnergyLedger::with_tariff(Tariff::new(0.10));
        let web = l.register("web");
        let bg = l.register("bg");
        assert_eq!(l.register("web"), web, "re-registering is idempotent");
        for _ in 0..3600 {
            l.add(web, 20.0); // 20 W for one "second"
            l.add(bg, 10.0);
            l.add_package(36.0, 1.0);
        }
        assert!((l.wh("web").unwrap() - 20.0).abs() < 1e-9);
        assert!((l.wh("bg").unwrap() - 10.0).abs() < 1e-9);
        assert!((l.package_wh() - 36.0).abs() < 1e-9);
        assert!((l.elapsed_s() - 3600.0).abs() < 1e-9);
        // 36 Wh at $0.10/kWh = $0.0036
        assert!((l.package_cost_usd().unwrap() - 0.0036).abs() < 1e-12);
        let accounts = l.accounts();
        assert_eq!(accounts.len(), 2);
        assert!((accounts[0].cost_usd.unwrap() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn add_named_creates_then_reuses() {
        let mut l = EnergyLedger::new();
        l.add_named("a", 3600.0);
        l.add_named("a", 3600.0);
        assert_eq!(l.len(), 1);
        assert!((l.wh("a").unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(l.wh("missing"), None);
        assert!(l.package_cost_usd().is_none(), "no tariff, no cost");
    }

    #[test]
    fn jsonl_shape_with_and_without_tariff() {
        let mut l = EnergyLedger::with_tariff(Tariff::new(0.25));
        l.add_named("web", 7200.0);
        l.add_package(7200.0, 2.0);
        let text = l.to_jsonl();
        assert_eq!(text.lines().count(), 2, "one entity + package summary");
        assert!(text.contains("\"entity\":\"web\""));
        assert!(text.contains("\"cost_usd\":0.000500"));
        assert!(text.contains("\"tariff_usd_per_kwh\":0.25"));
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }

        let mut plain = EnergyLedger::new();
        plain.add_named("web", 7200.0);
        plain.add_package(7200.0, 2.0);
        assert!(
            !plain.to_jsonl().contains("cost_usd"),
            "no tariff, no cost fields"
        );
    }

    #[test]
    fn prometheus_shape() {
        let mut l = EnergyLedger::with_tariff(Tariff::new(0.10));
        l.add_named("web", 3600.0);
        l.add_package(3600.0, 1.0);
        let text = l.prometheus();
        assert!(text.contains("# TYPE pap_energy_wh_total counter"));
        assert!(text.contains("pap_energy_wh_total{entity=\"web\"} 1.000000"));
        assert!(text.contains("pap_package_energy_wh_total 1.000000"));
        assert!(text.contains("pap_energy_cost_usd_total{entity=\"web\"} 0.000100"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed line: {line}");
        }
        let mut plain = EnergyLedger::new();
        plain.add_named("web", 3600.0);
        assert!(
            !plain.prometheus().contains("cost"),
            "no tariff, no cost series"
        );
    }
}
