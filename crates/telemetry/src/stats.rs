//! Descriptive statistics for experiment reporting.
//!
//! The paper's DVFS figures (2 and 3) are box plots: median, quartiles,
//! 1st/99th percentile whiskers, and outliers. [`BoxStats`] computes that
//! five-number summary; the free functions cover the aggregate statistics
//! used elsewhere.

/// Arithmetic mean; 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; 0 for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Linear-interpolated percentile (`p` in 0..=100); 0 for empty input.
///
/// NaN samples are ignored (a sensor dropout must not poison the whole
/// summary); an all-NaN slice behaves like an empty one. Out-of-range `p`
/// is clamped to `[0, 100]` — a `p > 100` would otherwise compute a rank
/// past the end of the slice and panic even in release builds. Debug
/// builds assert on both NaN and out-of-range `p` so the producing
/// experiment is still caught in development.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    debug_assert!(
        values.iter().all(|v| !v.is_nan()),
        "NaN sample fed to percentile"
    );
    debug_assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let p = p.clamp(0.0, 100.0);
    let mut v: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let t = rank - lo as f64;
        v[lo] * (1.0 - t) + v[hi] * t
    }
}

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n · Σx²)`. 1 when all values are equal, approaching `1/n`
/// when one value dominates.
///
/// Degenerate-input convention (callers feed measured attainments,
/// power draws and normalized speedups, any of which can collapse):
///
/// * **empty slice** → 1.0 — no allocations, nothing unequal;
/// * **all-zero** → 1.0 — the 0/0 case of the formula; everyone got
///   the same (zero) allocation, which is equal, hence fair;
/// * **NaN / infinite samples** → ignored (an all-non-finite slice
///   behaves like an empty one), so one dead sensor cannot poison a
///   whole scorecard;
/// * **negative samples** → counted as zero allocation.
///
/// Debug builds assert on non-finite or negative input so the producing
/// experiment is caught in development; release builds degrade as above
/// instead of returning NaN.
pub fn jain(values: &[f64]) -> f64 {
    debug_assert!(
        values.iter().all(|&v| v.is_finite() && v >= 0.0),
        "Jain needs finite non-negative values"
    );
    let mut n = 0usize;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for &v in values {
        if !v.is_finite() {
            continue;
        }
        let v = v.max(0.0);
        n += 1;
        sum += v;
        sum_sq += v * v;
    }
    if n == 0 || sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sum_sq)
}

/// The five-number summary the paper's box plots report, plus outliers
/// beyond the 1st/99th-percentile whiskers.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxStats {
    /// 1st percentile (lower whisker).
    pub p1: f64,
    /// First quartile (box bottom).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (box top).
    pub q3: f64,
    /// 99th percentile (upper whisker).
    pub p99: f64,
    /// Values outside the whiskers.
    pub outliers: Vec<f64>,
}

impl BoxStats {
    /// Summarize a sample. Returns `None` for empty input.
    pub fn from(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let p1 = percentile(values, 1.0);
        let p99 = percentile(values, 99.0);
        Some(BoxStats {
            p1,
            q1: percentile(values, 25.0),
            median: percentile(values, 50.0),
            q3: percentile(values, 75.0),
            p99,
            outliers: values
                .iter()
                .copied()
                .filter(|&v| v < p1 || v > p99)
                .collect(),
        })
    }

    /// One-line rendering for experiment tables.
    pub fn render(&self) -> String {
        format!(
            "p1={:.3} q1={:.3} med={:.3} q3={:.3} p99={:.3} outliers={}",
            self.p1,
            self.q1,
            self.median,
            self.q3,
            self.p99,
            self.outliers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        // unsorted input is handled
        let u = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&u, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "NaN sample"))]
    fn percentile_survives_nan_in_release_and_asserts_in_debug() {
        // Release builds filter NaN dropouts instead of panicking in
        // sort; debug builds flag the producing experiment.
        let v = [4.0, f64::NAN, 1.0, 3.0, f64::NAN, 2.0];
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "out of range"))]
    fn percentile_clamps_out_of_range_p_in_release_and_asserts_in_debug() {
        // Before the clamp, p > 100 computed a rank past the end of the
        // slice and release builds panicked on the index; now it behaves
        // like p = 100 (and negative p like p = 0).
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 150.0), 4.0);
        assert_eq!(percentile(&v, -5.0), 1.0);
    }

    #[test]
    fn box_stats_ordering() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let b = BoxStats::from(&v).unwrap();
        assert!(b.p1 <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.p99);
        assert!((b.median - 499.5).abs() < 1.0);
        assert!(!b.outliers.is_empty(), "tails beyond p1/p99 are outliers");
        assert!(BoxStats::from(&[]).is_none());
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain(&[]), 1.0, "empty: vacuously fair");
        assert_eq!(jain(&[0.0, 0.0]), 1.0, "all-zero (0/0 case): fair");
        assert!(
            (jain(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12,
            "equal = fair"
        );
        let skewed = jain(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "one hog → 1/n");
        let mid = jain(&[1.0, 2.0, 3.0]);
        assert!(
            mid > 0.25 && mid < 1.0,
            "partial skew in between, got {mid}"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "finite non-negative"))]
    fn jain_degrades_on_junk_in_release_and_asserts_in_debug() {
        // One dead sensor (NaN) must not turn the whole scorecard into
        // NaN; release builds drop the sample.
        let j = jain(&[2.0, f64::NAN, 2.0]);
        assert!((j - 1.0).abs() < 1e-12, "NaN ignored, rest equal: {j}");
        assert_eq!(jain(&[f64::NAN, f64::INFINITY]), 1.0, "all junk = empty");
        // Negative allocations count as zero allocation.
        let j = jain(&[4.0, -4.0]);
        assert!((j - 0.5).abs() < 1e-12, "negative clamps to 0: {j}");
    }

    #[test]
    fn box_stats_single_value() {
        let b = BoxStats::from(&[7.0]).unwrap();
        assert_eq!(b.median, 7.0);
        assert_eq!(b.p1, 7.0);
        assert_eq!(b.p99, 7.0);
        assert!(b.outliers.is_empty());
        assert!(b.render().contains("med=7.000"));
    }
}
