//! Time-series recording and CSV export.
//!
//! Experiments append [`Sample`]s to a [`Trace`] as the run progresses and
//! query aggregates afterwards; the CSV export matches the column layout
//! of the paper's published turbostat logs (time, package power, then
//! per-core frequency/IPS/power triples).

use std::io::{self, Write};

use pap_simcpu::units::{Seconds, Watts};

use crate::sampler::Sample;
use crate::stats;

/// A recorded sequence of telemetry samples.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    samples: Vec<Sample>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Append a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// All samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Drop the first `n` samples (warm-up trimming).
    pub fn trim_warmup(&mut self, n: usize) {
        let n = n.min(self.samples.len());
        self.samples.drain(..n);
    }

    /// Mean package power over the trace.
    pub fn mean_package_power(&self) -> Watts {
        let v: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.package_power.value())
            .collect();
        Watts(stats::mean(&v))
    }

    /// Mean active frequency of one core over the trace, counting only
    /// samples where the core was awake.
    pub fn mean_active_freq_mhz(&self, core: usize) -> f64 {
        let v: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.cores[core].rates.active_freq.mhz() as f64)
            .filter(|&f| f > 0.0)
            .collect();
        stats::mean(&v)
    }

    /// Mean IPS of one core over the trace.
    pub fn mean_ips(&self, core: usize) -> f64 {
        let v: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.cores[core].rates.ips)
            .collect();
        stats::mean(&v)
    }

    /// Mean per-core power of one core (Ryzen only; `None` if the samples
    /// carry no per-core power).
    pub fn mean_core_power(&self, core: usize) -> Option<Watts> {
        let v: Vec<f64> = self
            .samples
            .iter()
            .filter_map(|s| s.cores[core].power.map(|p| p.value()))
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(Watts(stats::mean(&v)))
        }
    }

    /// Total simulated time covered.
    pub fn duration(&self) -> Seconds {
        Seconds(self.samples.iter().map(|s| s.interval.value()).sum())
    }

    /// Render as CSV into a `String` (thin wrapper over
    /// [`Trace::write_csv`]).
    pub fn to_csv(&self) -> String {
        let mut out = Vec::new();
        self.write_csv(&mut out)
            .expect("writing CSV to a Vec cannot fail");
        String::from_utf8(out).expect("CSV output is ASCII")
    }

    /// Stream as CSV into any [`io::Write`]: header plus one row per
    /// sample, without materialising the whole document in memory.
    ///
    /// The column count is sized from the *maximum* core count across all
    /// samples — traces whose samples disagree (mid-run admission on a
    /// cluster node) stay rectangular, with absent cores padded as `-`.
    pub fn write_csv<W: Write>(&self, mut out: W) -> io::Result<()> {
        let ncores = self
            .samples
            .iter()
            .map(|s| s.cores.len())
            .max()
            .unwrap_or(0);
        out.write_all(b"time_s,pkg_w,cores_w")?;
        for c in 0..ncores {
            write!(out, ",c{c}_mhz,c{c}_ips,c{c}_w")?;
        }
        out.write_all(b"\n")?;
        for s in &self.samples {
            write!(
                out,
                "{:.3},{:.3},{:.3}",
                s.time.value(),
                s.package_power.value(),
                s.cores_power.value()
            )?;
            for c in 0..ncores {
                match s.cores.get(c) {
                    Some(cs) => {
                        write!(out, ",{},{:.0},", cs.rates.active_freq.mhz(), cs.rates.ips)?;
                        match cs.power {
                            Some(p) => write!(out, "{:.3}", p.value())?,
                            None => out.write_all(b"-")?,
                        }
                    }
                    None => out.write_all(b",-,-,-")?,
                }
            }
            out.write_all(b"\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CoreRates;
    use crate::sampler::CoreSample;
    use pap_simcpu::freq::KiloHertz;

    fn sample(t: f64, pkg: f64, freq_mhz: u64, ips: f64) -> Sample {
        Sample {
            time: Seconds(t),
            interval: Seconds(1.0),
            package_power: Watts(pkg),
            cores_power: Watts(pkg - 10.0),
            cores: vec![CoreSample {
                rates: CoreRates {
                    active_freq: KiloHertz::from_mhz(freq_mhz),
                    c0_residency: 1.0,
                    ips,
                },
                power: None,
                requested_freq: KiloHertz::from_mhz(freq_mhz),
            }],
        }
    }

    #[test]
    fn aggregates() {
        let mut t = Trace::new();
        t.push(sample(1.0, 40.0, 2000, 1e9));
        t.push(sample(2.0, 50.0, 1000, 5e8));
        assert_eq!(t.len(), 2);
        assert!((t.mean_package_power().value() - 45.0).abs() < 1e-12);
        assert!((t.mean_active_freq_mhz(0) - 1500.0).abs() < 1e-12);
        assert!((t.mean_ips(0) - 7.5e8).abs() < 1.0);
        assert_eq!(t.mean_core_power(0), None);
        assert!((t.duration().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn idle_samples_excluded_from_freq_mean() {
        let mut t = Trace::new();
        t.push(sample(1.0, 40.0, 2000, 1e9));
        t.push(sample(2.0, 40.0, 0, 0.0));
        assert!((t.mean_active_freq_mhz(0) - 2000.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_trimming() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.push(sample(i as f64, 30.0 + i as f64, 1000, 1e9));
        }
        t.trim_warmup(4);
        assert_eq!(t.len(), 6);
        assert!(t.samples()[0].time.value() >= 4.0);
        t.trim_warmup(100);
        assert!(t.is_empty());
    }

    #[test]
    fn csv_layout() {
        let mut t = Trace::new();
        t.push(sample(1.0, 40.5, 2000, 1e9));
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "time_s,pkg_w,cores_w,c0_mhz,c0_ips,c0_w"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("1.000,40.500,30.500,2000,1000000000,-"));
    }

    #[test]
    fn write_csv_matches_to_csv() {
        let mut t = Trace::new();
        t.push(sample(1.0, 40.5, 2000, 1e9));
        t.push(sample(2.0, 41.5, 1800, 9e8));
        let mut streamed = Vec::new();
        t.write_csv(&mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), t.to_csv());
    }

    #[test]
    fn csv_ragged_core_counts_stay_rectangular() {
        // Mid-run admission: a later sample carries more cores than the
        // first. The header must be sized from the max core count and
        // short rows padded, so every row has the same column count.
        let mut wide = sample(2.0, 50.0, 1500, 5e8);
        wide.cores.push(wide.cores[0].clone());
        wide.cores.push(wide.cores[0].clone());

        let mut t = Trace::new();
        t.push(sample(1.0, 40.0, 2000, 1e9)); // 1 core
        t.push(wide); // 3 cores
        let csv = t.to_csv();

        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.ends_with("c2_mhz,c2_ips,c2_w"), "header: {header}");
        let ncols = header.split(',').count();
        for row in lines {
            assert_eq!(row.split(',').count(), ncols, "ragged row: {row}");
        }
        // The short row is padded with placeholders for the absent cores.
        let short = csv.lines().nth(1).unwrap();
        assert!(short.ends_with(",-,-,-,-,-,-"), "short row: {short}");
    }
}
