//! A counting global allocator for zero-allocation assertions.
//!
//! The control hot path promises **zero heap allocations per
//! steady-state step** (DESIGN.md §11). That promise is only worth
//! having if it is machine-checked, so the `ext_hotpath` bench binary
//! and the golden-replay suite install [`CountingAlloc`] as their
//! `#[global_allocator]` and assert the per-thread allocation count does
//! not move across a step.
//!
//! Counts are **per-thread** (plain `thread_local!` cells), so the
//! multi-threaded test harness and parallel sweeps don't bleed
//! allocations into each other's measurements. The counters themselves
//! are `Cell`s with const initializers: reading or bumping them never
//! allocates, so the allocator cannot recurse.
//!
//! ```
//! use pap_alloccount::AllocCounter;
//! // (In a binary this would be `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.)
//! let before = AllocCounter::snapshot();
//! let v: Vec<u64> = Vec::with_capacity(32);
//! drop(v);
//! let after = AllocCounter::snapshot();
//! // Under the counting allocator `after.allocs - before.allocs` would be 1.
//! assert!(after.allocs >= before.allocs);
//! ```

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static REALLOCS: Cell<u64> = const { Cell::new(0) };
    static PANIC_ON_ALLOC: Cell<bool> = const { Cell::new(false) };
}

/// Debugging aid: make the *next* allocation event on this thread panic
/// (the flag clears itself first, so the panic machinery can allocate).
/// Run with `RUST_BACKTRACE=1` to see exactly where a hot path allocates.
pub fn panic_on_alloc(enabled: bool) {
    PANIC_ON_ALLOC.with(|c| c.set(enabled));
}

fn trip(kind: &str, size: usize) {
    if PANIC_ON_ALLOC.with(|c| c.replace(false)) {
        panic!("unexpected heap {kind} of {size} bytes on a no-alloc path");
    }
}

/// A `#[global_allocator]` that forwards to [`System`] and counts
/// allocations per thread.
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the thread-local bookkeeping is
// const-initialized `Cell`s, which never allocate, so there is no
// re-entrancy into the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        trip("alloc", layout.size());
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        trip("realloc", new_size);
        REALLOCS.with(|c| c.set(c.get() + 1));
        if new_size > layout.size() {
            BYTES.with(|c| c.set(c.get() + (new_size - layout.size()) as u64));
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        trip("alloc_zeroed", layout.size());
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc_zeroed(layout)
    }
}

/// A point-in-time reading of this thread's allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocCounter {
    /// Heap allocations (`alloc` + `alloc_zeroed`) on this thread.
    pub allocs: u64,
    /// Grow-only byte volume requested on this thread.
    pub bytes: u64,
    /// `realloc` calls on this thread (a growing `Vec` shows up here).
    pub reallocs: u64,
}

impl AllocCounter {
    /// Read the current thread's counters.
    pub fn snapshot() -> AllocCounter {
        AllocCounter {
            allocs: ALLOCS.with(|c| c.get()),
            bytes: BYTES.with(|c| c.get()),
            reallocs: REALLOCS.with(|c| c.get()),
        }
    }

    /// Allocation events since `earlier` (allocs + reallocs): the number
    /// that must be **zero** across a steady-state control step.
    pub fn events_since(&self, earlier: &AllocCounter) -> u64 {
        (self.allocs - earlier.allocs) + (self.reallocs - earlier.reallocs)
    }

    /// Bytes requested since `earlier`.
    pub fn bytes_since(&self, earlier: &AllocCounter) -> u64 {
        self.bytes - earlier.bytes
    }
}

/// Count the allocation events (allocs + reallocs) performed by `f` on
/// the current thread.
pub fn count_events<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = AllocCounter::snapshot();
    let r = f();
    let after = AllocCounter::snapshot();
    (r, after.events_since(&before))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the test binary does NOT install CountingAlloc (unit tests
    // here only check counter plumbing; the end-to-end behaviour is
    // exercised by the hotpath suite, which does install it).
    #[test]
    fn snapshot_is_monotone() {
        let a = AllocCounter::snapshot();
        let b = AllocCounter::snapshot();
        assert_eq!(b.events_since(&a), 0);
        assert_eq!(b.bytes_since(&a), 0);
    }

    #[test]
    fn count_events_returns_value() {
        let (v, _) = count_events(|| 41 + 1);
        assert_eq!(v, 42);
    }
}
