//! Golden-replay property test: under *arbitrary* interleavings of
//! admissions, departures and run segments, the sharded engine at
//! `epsilon = 0` leaves the cluster in a state bit-identical to the
//! serial reference — energy to the bit, caps, per-app reports, and
//! the final telemetry roll-up. This is the end-to-end form of the
//! delta-rollup exactness property in `pap-telemetry`, with the real
//! chips, daemons and arbiter in the loop.

use clusterd::{AppRequest, Cluster, ClusterConfig, DemandClass};
use pap_scale::{run_sharded, ScaleConfig};
use pap_simcpu::units::{Seconds, Watts};
use powerd::config::PolicyKind;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Admit app `t<n>` with these shares and demand class.
    Admit(u32, u8),
    /// Depart the `i`-th oldest still-resident app (mod residents).
    Depart(usize),
    /// Run both engines this many intervals.
    Run(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u32..3, 0u32..256, 1u64..4, 0usize..64).prop_map(
            |(kind, raw, intervals, pick)| match kind {
                0 => Op::Admit(10 + (raw % 10) * 10, (raw % 3) as u8),
                1 => Op::Depart(pick),
                _ => Op::Run(intervals),
            },
        ),
        4..24,
    )
}

fn cluster(nodes: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(
        nodes,
        PolicyKind::FrequencyShares,
        Watts(60.0 * nodes as f64),
    );
    cfg.tick = Seconds(0.25);
    Cluster::new(cfg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_replay_is_bit_identical_to_serial(ops in ops(), shards in 1usize..5) {
        let mut serial = cluster(5);
        let mut sharded = cluster(5);
        let scale = ScaleConfig { shards, chunk_nodes: 2, epsilon: 0.0 };
        let mut next_app = 0u64;
        let mut resident: Vec<String> = Vec::new();
        for op in ops {
            match op {
                Op::Admit(shares, class) => {
                    let class = match class {
                        0 => DemandClass::Heavy,
                        1 => DemandClass::Moderate,
                        _ => DemandClass::Light,
                    };
                    let req = AppRequest::new(format!("t{next_app}"), shares, class);
                    next_app += 1;
                    let a = serial.admit(&req);
                    let b = sharded.admit(&req);
                    prop_assert_eq!(&a, &b, "admission diverged");
                    if a.is_ok() {
                        resident.push(req.name);
                    }
                }
                Op::Depart(pick) => {
                    if resident.is_empty() {
                        continue;
                    }
                    let name = resident.remove(pick % resident.len());
                    prop_assert_eq!(serial.depart(&name), sharded.depart(&name));
                }
                Op::Run(intervals) => {
                    serial.run(intervals);
                    run_sharded(&mut sharded, intervals, &scale);
                }
            }
            prop_assert_eq!(serial.intervals_run(), sharded.intervals_run());
            prop_assert_eq!(
                serial.energy_j().to_bits(),
                sharded.energy_j().to_bits(),
                "energy diverged at the bit level"
            );
            prop_assert_eq!(serial.node_caps(), sharded.node_caps());
        }
        // Final deep comparison.
        prop_assert_eq!(serial.reports(), sharded.reports());
        prop_assert_eq!(serial.last_rollup(), sharded.last_rollup());
        prop_assert_eq!(serial.free_cores(), sharded.free_cores());
    }
}
