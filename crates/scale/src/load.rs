//! Cluster-scale churn load: turning a tenant arrival trace into
//! per-epoch admission/departure batches.
//!
//! `pap-tenants` models offered load on one socket as an
//! [`ArrivalTrace`] — a diurnal (or flash-crowd) intensity in `[0, 1]`
//! over simulated time. At cluster scale the same trace instead drives
//! *population*: how many tenant apps are resident across the fleet.
//! [`ChurnLoad`] tracks that target and emits one [`ChurnBatch`] per
//! batching window — the arrivals needed to climb toward the target,
//! the departures needed to fall toward it, plus symmetric background
//! turnover so even a flat trace exercises placement. The batches are
//! meant for [`Cluster::admit_batch`]/[`Cluster::depart_batch`]
//! (`clusterd`), which amortize a day of churn into per-epoch heap
//! operations instead of per-app candidate sorts.
//!
//! Everything is deterministic per seed (vendored SplitMix64 stream),
//! so the serial and sharded engines can replay identical churn and be
//! compared bit-for-bit.

use clusterd::{AppRequest, DemandClass};
use pap_simcpu::units::Seconds;
use pap_tenants::arrival::ArrivalTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One batching window's worth of churn.
#[derive(Debug, Clone, Default)]
pub struct ChurnBatch {
    /// Apps arriving this window, in admission order.
    pub arrivals: Vec<AppRequest>,
    /// Resident apps departing this window.
    pub departures: Vec<String>,
}

impl ChurnBatch {
    /// Total operations in the batch.
    pub fn len(&self) -> usize {
        self.arrivals.len() + self.departures.len()
    }

    /// Whether the batch carries no operations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Deterministic churn generator over an arrival trace.
#[derive(Debug, Clone)]
pub struct ChurnLoad {
    trace: ArrivalTrace,
    rng: StdRng,
    capacity: usize,
    turnover: usize,
    next_id: u64,
    resident: Vec<String>,
}

impl ChurnLoad {
    /// A churn stream over `trace`. `capacity` is the app population at
    /// intensity 1.0 (usually the cluster's core count); `turnover` is
    /// the extra arrivals *and* departures per window even when the
    /// target population is flat.
    pub fn new(trace: ArrivalTrace, seed: u64, capacity: usize, turnover: usize) -> ChurnLoad {
        ChurnLoad {
            trace,
            rng: StdRng::seed_from_u64(seed),
            capacity,
            turnover,
            next_id: 0,
            resident: Vec::new(),
        }
    }

    /// Apps this stream currently believes are resident.
    pub fn resident(&self) -> usize {
        self.resident.len()
    }

    fn fresh_request(&mut self) -> AppRequest {
        let name = format!("t{}", self.next_id);
        self.next_id += 1;
        let class = match self.rng.gen_range(0u32..3) {
            0 => DemandClass::Heavy,
            1 => DemandClass::Moderate,
            _ => DemandClass::Light,
        };
        let shares = 10 + self.rng.gen_range(0u32..10) * 10;
        AppRequest::new(name, shares, class)
    }

    /// Emit the batch for the window at simulated time `now`.
    /// Departures are drained oldest-first (and are removed from the
    /// resident set immediately); arrivals must be confirmed back via
    /// [`ChurnLoad::commit`] so apps the cluster rejected or dropped do
    /// not linger in the resident set.
    pub fn next_batch(&mut self, now: Seconds) -> ChurnBatch {
        let target =
            (self.trace.intensity(now).clamp(0.0, 1.0) * self.capacity as f64).round() as usize;
        let mut batch = ChurnBatch::default();
        let have = self.resident.len();
        let shrink = have.saturating_sub(target);
        let grow = target.saturating_sub(have);
        // Turnover replaces survivors one-for-one; it never overdrains.
        let churn = self
            .turnover
            .min(have.saturating_sub(shrink))
            .min(self.capacity);
        for name in self.resident.drain(..shrink + churn) {
            batch.departures.push(name);
        }
        for _ in 0..grow + churn {
            batch.arrivals.push(self.fresh_request());
        }
        batch
    }

    /// Record which arrivals the cluster actually admitted: `admitted`
    /// holds one flag per [`ChurnBatch::arrivals`] entry, in order.
    pub fn commit(&mut self, batch: &ChurnBatch, admitted: &[bool]) {
        debug_assert_eq!(batch.arrivals.len(), admitted.len());
        for (req, ok) in batch.arrivals.iter().zip(admitted) {
            if *ok {
                self.resident.push(req.name.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(load: &mut ChurnLoad, t: f64) -> ChurnBatch {
        let batch = load.next_batch(Seconds(t));
        let admitted = vec![true; batch.arrivals.len()];
        load.commit(&batch, &admitted);
        batch
    }

    #[test]
    fn population_follows_the_trace() {
        let mut load = ChurnLoad::new(ArrivalTrace::flat(0.5), 7, 100, 0);
        let b = drive(&mut load, 0.0);
        assert_eq!(b.arrivals.len(), 50);
        assert!(b.departures.is_empty());
        assert_eq!(load.resident(), 50);
        // Flat trace, no turnover: steady state is empty batches.
        assert!(drive(&mut load, 10.0).is_empty());
    }

    #[test]
    fn diurnal_swings_grow_and_shrink() {
        let mut load = ChurnLoad::new(ArrivalTrace::diurnal(0.5, 0.4, Seconds(100.0)), 7, 200, 0);
        // Midday peak (sin peaks at period/4), then walk to the
        // overnight trough at 3/4 of the period.
        drive(&mut load, 25.0);
        let peak = load.resident();
        for t in [40.0, 55.0, 65.0, 75.0] {
            drive(&mut load, t);
        }
        assert!(
            load.resident() < peak,
            "trough shed apps: {} -> {}",
            peak,
            load.resident()
        );
    }

    #[test]
    fn turnover_churns_at_steady_state() {
        let mut load = ChurnLoad::new(ArrivalTrace::flat(0.4), 7, 100, 5);
        drive(&mut load, 0.0);
        let b = drive(&mut load, 1.0);
        assert_eq!(b.departures.len(), 5);
        assert_eq!(b.arrivals.len(), 5);
        assert_eq!(load.resident(), 40);
        // Names never repeat.
        let b2 = drive(&mut load, 2.0);
        assert!(b2
            .arrivals
            .iter()
            .all(|r| !b.arrivals.iter().any(|p| p.name == r.name)));
    }

    #[test]
    fn rejected_arrivals_do_not_linger() {
        let mut load = ChurnLoad::new(ArrivalTrace::flat(1.0), 7, 10, 0);
        let batch = load.next_batch(Seconds(0.0));
        let mut admitted = vec![true; batch.arrivals.len()];
        admitted[3] = false;
        admitted[7] = false;
        load.commit(&batch, &admitted);
        assert_eq!(load.resident(), 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            let mut load =
                ChurnLoad::new(ArrivalTrace::diurnal(0.5, 0.3, Seconds(50.0)), 42, 80, 3);
            let mut log = String::new();
            for t in 0..20 {
                let b = drive(&mut load, t as f64 * 5.0);
                for a in &b.arrivals {
                    log.push_str(&format!("{}:{} ", a.name, a.shares));
                }
                for d in &b.departures {
                    log.push_str(d);
                }
            }
            log
        };
        assert_eq!(mk(), mk());
    }
}
