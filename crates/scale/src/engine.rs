//! The sharded, event-driven cluster engine.
//!
//! The serial `clusterd` reference advances every node in turn, folds a
//! fresh [`ClusterRollup`] per interval, and the parallel engine in
//! `clusterd::engine` pins one thread per node with two full barriers
//! per interval — both fine at 8 nodes, both hopeless at 1024. This
//! engine replaces them with an epoch-committed shard pool:
//!
//! * nodes are partitioned **in id order** into fixed chunks, and a
//!   small pool of shard workers pulls chunk indices from a shared
//!   queue — workers never wait while work remains, and a slow chunk
//!   steals no one's schedule;
//! * instead of two global barriers, each epoch ends with a
//!   **lightweight commit** run by whichever worker finishes the last
//!   chunk: fold the epoch's telemetry into a resident [`DeltaRollup`],
//!   account energy, arbitrate when a rebalance is due, refill the
//!   queue, wake anyone parked. No other thread touches shared state;
//! * new caps are not pushed through a barrier either: the commit
//!   leaves them as **pending caps** on each chunk, and the chunk's
//!   next local step applies them before ticking — observationally
//!   identical to the serial engine retargeting at the end of the
//!   interval, since no simulated time passes in between.
//!
//! At `epsilon = 0` the delta rollup folds totals in node order over
//! sanitized resident rows, so every number the arbiter sees — and
//! therefore every cap, every trace record, the energy meter, and the
//! final cluster state — is **bit-identical to the serial reference**
//! (property-tested in `tests/scale_parity.rs`, enforced at runtime by
//! the `ext_cluster_scale` CI bench). With `epsilon > 0` rows that
//! moved less than the tolerance are skipped and totals are maintained
//! incrementally: the documented speed/accuracy trade at 1000+ nodes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use clusterd::cluster::EngineSeam;
use clusterd::{Cluster, Node};
use crossbeam::queue::SegQueue;
use pap_simcpu::chiplike::ChipLike;
use pap_simcpu::units::Watts;
use pap_telemetry::rollup::{ClusterRollup, DeltaRollup, NodeTelemetry};

/// Tuning for [`run_sharded`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Shard worker threads. `0` selects one per available CPU (capped
    /// at the chunk count); `1` runs the same epoch loop inline.
    pub shards: usize,
    /// Nodes per work chunk. Smaller chunks balance better, larger
    /// chunks amortize queue traffic; the default of 8 keeps a 1024-node
    /// cluster at 128 chunks.
    pub chunk_nodes: usize,
    /// Delta-rollup tolerance. `0` = exact mode (bit-identical to the
    /// serial reference); `> 0` skips re-aggregating nodes whose
    /// telemetry moved less than this relative tolerance.
    pub epsilon: f64,
}

impl Default for ScaleConfig {
    fn default() -> ScaleConfig {
        ScaleConfig {
            shards: 0,
            chunk_nodes: 8,
            epsilon: 0.0,
        }
    }
}

impl ScaleConfig {
    /// The default config with the shard count overridden by the
    /// `PAP_SCALE_SHARDS` environment variable (unset, empty, `auto` or
    /// `0` keeps auto; `serial` or `1` forces the inline path; any
    /// other integer is a fixed worker count). The CI parity gate uses
    /// this the same way sweeps use `PAP_SWEEP_THREADS`.
    pub fn from_env() -> ScaleConfig {
        let mut cfg = ScaleConfig::default();
        if let Ok(v) = std::env::var("PAP_SCALE_SHARDS") {
            cfg.shards = match v.trim() {
                "" | "auto" | "0" => 0,
                "serial" => 1,
                n => n.parse().unwrap_or(0),
            };
        }
        cfg
    }

    fn workers(&self, chunks: usize) -> usize {
        let n = match self.shards {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            n => n,
        };
        n.min(chunks).max(1)
    }
}

/// What a sharded run did, for reports and the CI bench.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleStats {
    /// Control intervals (epochs) executed.
    pub intervals: u64,
    /// Shard workers used.
    pub shards: usize,
    /// Work chunks the nodes were partitioned into.
    pub chunks: usize,
    /// Telemetry rows re-aggregated by the delta rollup.
    pub delta_updates: u64,
    /// Telemetry rows skipped as within epsilon.
    pub delta_skips: u64,
    /// Nodes flagged unhealthy (clamped telemetry) at run end.
    pub unhealthy_nodes: Vec<usize>,
}

impl ScaleStats {
    /// Fraction of telemetry rows the delta rollup skipped.
    pub fn skip_rate(&self) -> f64 {
        let total = self.delta_updates + self.delta_skips;
        if total == 0 {
            return 0.0;
        }
        self.delta_skips as f64 / total as f64
    }
}

/// One chunk of consecutive nodes plus its per-epoch scratch: the
/// telemetry each node produced this epoch and the pending cap (if a
/// rebalance just ran) to apply before its next local step.
struct Chunk<C: ChipLike> {
    nodes: Vec<Node<C>>,
    tele: Vec<Option<NodeTelemetry>>,
    caps: Vec<Option<Watts>>,
}

/// State only the epoch committer touches. Kept in its own mutex so
/// shard workers processing chunks never contend on it.
struct CommitState<C: ChipLike> {
    seam: EngineSeam<C>,
    delta: DeltaRollup,
    last: Option<ClusterRollup>,
    target_intervals: u64,
}

/// Epoch sequencing: bumped by every commit, watched by idle workers.
struct Epoch {
    seq: u64,
    finished: bool,
}

/// Drive `cluster` for `intervals` control intervals on the sharded
/// engine. At `cfg.epsilon == 0` the resulting cluster state (caps,
/// reports, energy, intervals, final roll-up, trace records) is
/// bit-identical to [`Cluster::run`] over the same span.
///
/// Generic over the node backend: the default `Cluster` (WideChip, the
/// fleet fast path) and the scalar-`Chip` reference both drive through
/// here — `Send` because chunks of nodes cross shard-thread boundaries.
pub fn run_sharded<C: ChipLike + Send>(
    cluster: &mut Cluster<C>,
    intervals: u64,
    cfg: &ScaleConfig,
) -> ScaleStats {
    // Resume the delta store from the last materialized rollup, so a
    // cluster driven one window at a time (churn between calls) still
    // gets incremental aggregation: a node whose telemetry has not
    // moved since the previous window is a skip, not a re-fold. At
    // epsilon = 0 this is identity-preserving — a row only skips when
    // it is bit-identical to the resumed one.
    let seed_rows: Vec<NodeTelemetry> = cluster
        .last_rollup()
        .map(|r| r.nodes.clone())
        .unwrap_or_default();
    let mut seam = cluster.detach_engine();
    let nodes = seam.take_nodes();
    let n_nodes = nodes.len();
    if intervals == 0 || n_nodes == 0 {
        seam.put_nodes(nodes);
        cluster.attach_engine(seam, None);
        return ScaleStats {
            intervals: 0,
            shards: 0,
            chunks: 0,
            delta_updates: 0,
            delta_skips: 0,
            unhealthy_nodes: Vec::new(),
        };
    }

    let chunk_nodes = cfg.chunk_nodes.max(1);
    let interval = seam.cfg().control_interval;
    let target_intervals = seam.intervals_run() + intervals;

    // Partition nodes into chunks, preserving id order across the
    // concatenation so the commit's chunk-order fold is a node-order
    // fold.
    let mut chunks: Vec<Mutex<Chunk<C>>> = Vec::with_capacity(n_nodes.div_ceil(chunk_nodes));
    let mut nodes = nodes.into_iter().peekable();
    while nodes.peek().is_some() {
        let batch: Vec<Node<C>> = nodes.by_ref().take(chunk_nodes).collect();
        let len = batch.len();
        chunks.push(Mutex::new(Chunk {
            nodes: batch,
            tele: vec![None; len],
            caps: vec![None; len],
        }));
    }
    let shards = cfg.workers(chunks.len());

    let queue = SegQueue::new();
    for i in 0..chunks.len() {
        queue.push(i);
    }
    let done = AtomicUsize::new(0);
    let epoch = Mutex::new(Epoch {
        seq: 0,
        finished: false,
    });
    let wake = Condvar::new();
    let mut delta = DeltaRollup::new(interval, cfg.epsilon);
    for row in seed_rows {
        delta.update(row);
    }
    // Seeding is bookkeeping, not work: report only the live folds.
    let seeded = delta.updates();
    let commit = Mutex::new(CommitState {
        seam,
        delta,
        last: None,
        target_intervals,
    });

    let shared = Shared {
        chunks: &chunks,
        queue: &queue,
        done: &done,
        epoch: &epoch,
        wake: &wake,
        commit: &commit,
    };
    if shards == 1 {
        worker(&shared);
    } else {
        crossbeam::thread::scope(|s| {
            for _ in 0..shards {
                s.spawn(|_| worker(&shared));
            }
        })
        .expect("shard worker panicked");
    }

    // Teardown: flush caps a final-interval rebalance left pending (the
    // serial engine applied its retargets inside that interval), then
    // hand everything back to the cluster.
    let CommitState {
        mut seam,
        delta,
        last,
        ..
    } = commit.into_inner().expect("commit state poisoned");
    let mut nodes = Vec::with_capacity(n_nodes);
    for chunk in chunks {
        let mut c = chunk.into_inner().expect("chunk poisoned");
        for (k, mut node) in c.nodes.drain(..).enumerate() {
            if let Some(cap) = c.caps[k].take() {
                node.retarget(cap)
                    .expect("allocator output stays within platform bounds");
            }
            nodes.push(node);
        }
    }
    seam.put_nodes(nodes);
    cluster.attach_engine(seam, last);
    ScaleStats {
        intervals,
        shards,
        chunks: n_nodes.div_ceil(chunk_nodes),
        delta_updates: delta.updates() - seeded,
        delta_skips: delta.skips(),
        unhealthy_nodes: delta.unhealthy_nodes(),
    }
}

/// Everything a shard worker can see.
struct Shared<'a, C: ChipLike> {
    chunks: &'a [Mutex<Chunk<C>>],
    queue: &'a SegQueue<usize>,
    done: &'a AtomicUsize,
    epoch: &'a Mutex<Epoch>,
    wake: &'a Condvar,
    commit: &'a Mutex<CommitState<C>>,
}

/// Shard worker loop: local chunk steps while work exists, park on the
/// epoch condvar when the queue runs dry mid-epoch, exit when the run
/// finishes. The worker that completes an epoch's last chunk performs
/// the commit itself — there is no coordinator thread.
fn worker<C: ChipLike>(sh: &Shared<'_, C>) {
    let mut seen = 0u64;
    loop {
        match sh.queue.pop() {
            Some(ci) => {
                {
                    let mut chunk = sh.chunks[ci].lock().expect("chunk poisoned");
                    let chunk = &mut *chunk;
                    for (k, node) in chunk.nodes.iter_mut().enumerate() {
                        if let Some(cap) = chunk.caps[k].take() {
                            node.retarget(cap)
                                .expect("allocator output stays within platform bounds");
                        }
                        chunk.tele[k] = Some(node.advance_interval());
                    }
                }
                if sh.done.fetch_add(1, Ordering::AcqRel) + 1 == sh.chunks.len() {
                    seen = commit_epoch(sh);
                }
            }
            None => {
                let mut ep = sh.epoch.lock().expect("epoch poisoned");
                while ep.seq == seen && !ep.finished {
                    ep = sh.wake.wait(ep).expect("epoch poisoned");
                }
                if ep.finished {
                    return;
                }
                seen = ep.seq;
            }
        }
    }
}

/// The epoch commit: fold this epoch's telemetry into the delta rollup
/// (chunk order == node order, so the exact-mode fold matches the
/// serial reference bit-for-bit), account the interval, arbitrate when
/// due (leaving new caps pending on each chunk), then either refill the
/// queue for the next epoch or mark the run finished. Returns the new
/// epoch sequence number.
fn commit_epoch<C: ChipLike>(sh: &Shared<'_, C>) -> u64 {
    let mut cs = sh.commit.lock().expect("commit state poisoned");
    for chunk in sh.chunks {
        let mut c = chunk.lock().expect("chunk poisoned");
        for t in c.tele.iter_mut() {
            let t = t.take().expect("every node reported this epoch");
            cs.delta.update(t);
        }
    }
    let total_power = cs.delta.total_power();
    cs.seam.note_interval(total_power);
    let finished = cs.seam.intervals_run() >= cs.target_intervals;
    let due = cs.seam.rebalance_due();
    // The serial engine materializes a rollup every interval; here one
    // only exists when someone consumes it — the arbiter, or the final
    // cluster state.
    if due || finished {
        let rollup = cs.delta.to_rollup();
        if due {
            let caps = cs.seam.rebalance(&rollup);
            let mut caps = caps.into_iter();
            for chunk in sh.chunks {
                let mut c = chunk.lock().expect("chunk poisoned");
                for slot in c.caps.iter_mut() {
                    *slot = Some(caps.next().expect("one cap per node"));
                }
            }
        }
        cs.last = Some(rollup);
    }
    drop(cs);
    sh.done.store(0, Ordering::Release);
    let mut ep = sh.epoch.lock().expect("epoch poisoned");
    ep.seq += 1;
    if finished {
        ep.finished = true;
    } else {
        for i in 0..sh.chunks.len() {
            sh.queue.push(i);
        }
    }
    sh.wake.notify_all();
    ep.seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterd::{AppRequest, ClusterConfig, DemandClass};
    use pap_simcpu::units::Seconds;
    use powerd::config::PolicyKind;

    fn cluster(nodes: usize) -> Cluster {
        let mut cfg = ClusterConfig::new(
            nodes,
            PolicyKind::FrequencyShares,
            Watts(85.0 * nodes as f64),
        );
        // Coarse ticks keep the test fast; parity is tick-agnostic.
        cfg.tick = Seconds(0.25);
        let mut c = Cluster::new(cfg).unwrap();
        for i in 0..nodes * 3 {
            let class = match i % 3 {
                0 => DemandClass::Heavy,
                1 => DemandClass::Moderate,
                _ => DemandClass::Light,
            };
            c.admit(&AppRequest::new(
                format!("a{i}"),
                20 + (i % 5) as u32 * 20,
                class,
            ))
            .unwrap();
        }
        c
    }

    fn assert_identical(serial: &Cluster, sharded: &Cluster) {
        assert_eq!(serial.intervals_run(), sharded.intervals_run());
        assert_eq!(
            serial.energy_j().to_bits(),
            sharded.energy_j().to_bits(),
            "energy accounting diverged"
        );
        assert_eq!(serial.node_caps(), sharded.node_caps());
        assert_eq!(serial.reports(), sharded.reports());
        assert_eq!(serial.last_rollup(), sharded.last_rollup());
    }

    #[test]
    fn exact_mode_is_bit_identical_to_serial() {
        for shards in [1, 3] {
            let mut serial = cluster(7);
            serial.run(11);
            let mut sharded = cluster(7);
            let stats = run_sharded(
                &mut sharded,
                11,
                &ScaleConfig {
                    shards,
                    chunk_nodes: 2,
                    epsilon: 0.0,
                },
            );
            assert_identical(&serial, &sharded);
            assert_eq!(stats.intervals, 11);
            assert_eq!(stats.chunks, 4);
            assert_eq!(stats.shards, shards.min(4));
        }
    }

    #[test]
    fn resumes_and_composes_with_serial_runs() {
        // serial → sharded → serial must equal one long serial run:
        // the seam hands counters back and forth losslessly.
        let mut reference = cluster(5);
        reference.run(12);
        let mut mixed = cluster(5);
        mixed.run(3);
        run_sharded(&mut mixed, 6, &ScaleConfig::default());
        mixed.run(3);
        assert_identical(&reference, &mixed);
    }

    #[test]
    fn epsilon_skips_but_stays_conservative() {
        let mut sharded = cluster(6);
        let stats = run_sharded(
            &mut sharded,
            20,
            &ScaleConfig {
                shards: 2,
                chunk_nodes: 3,
                epsilon: 0.5,
            },
        );
        assert!(
            stats.delta_skips > 0,
            "a 50% tolerance must skip settled rows: {stats:?}"
        );
        // The arbiter still conserves the budget it hands out.
        let caps: f64 = sharded.node_caps().iter().map(|w| w.value()).sum();
        assert!(
            caps <= sharded.config().cluster_cap.value() + 1e-6,
            "caps {caps} exceed cluster cap"
        );
        assert_eq!(stats.intervals, 20);
        assert!(stats.skip_rate() > 0.0 && stats.skip_rate() < 1.0);
    }

    #[test]
    fn zero_intervals_or_zero_work_is_a_noop() {
        let mut c = cluster(2);
        let before = c.intervals_run();
        let stats = run_sharded(&mut c, 0, &ScaleConfig::default());
        assert_eq!(stats.intervals, 0);
        assert_eq!(c.intervals_run(), before);
        assert_eq!(c.reports().len(), 6, "nodes and apps all came back");
    }

    #[test]
    fn observer_records_match_serial() {
        use powerd::obs::DecisionTrace;
        let mut serial = cluster(4);
        serial.attach_observer(DecisionTrace::new());
        serial.run(8);
        let mut sharded = cluster(4);
        sharded.attach_observer(DecisionTrace::new());
        run_sharded(&mut sharded, 8, &ScaleConfig::default());
        let a = serial.take_observer().unwrap();
        let b = sharded.take_observer().unwrap();
        assert_eq!(a.len(), b.len(), "one record per rebalance round");
        for (ra, rb) in a.records().iter().zip(b.records()) {
            // Latency is wall-clock and may differ; everything else is
            // part of the bit-identity contract.
            let mut rb = rb.clone();
            rb.latency = ra.latency;
            assert_eq!(*ra, rb);
        }
    }
}
