//! # pap-scale — sharded, event-driven cluster control plane
//!
//! The paper delivers per-application power on one socket; `clusterd`
//! lifts that to a handful of machines; this crate is the layer that
//! makes the story hold at datacenter scale (ROADMAP item 1, and the
//! regime FastCap targets): 1000+ nodes under one budget, millions of
//! tenant arrivals and departures per simulated day, without giving up
//! the property the whole stack is built on — every engine is
//! **bit-identical to the serial reference**.
//!
//! * [`engine`] — the sharded epoch engine: nodes partitioned into
//!   chunks, a worker pool pulling chunks from a shared queue, and a
//!   lightweight epoch commit (run by whichever worker finishes last)
//!   in place of `clusterd::engine`'s two global barriers. Telemetry
//!   aggregation is incremental ([`pap_telemetry::rollup::DeltaRollup`]);
//!   at `epsilon = 0` the whole run is bit-identical to
//!   [`clusterd::Cluster::run`], at `epsilon > 0` settled nodes are
//!   skipped entirely.
//! * [`load`] — cluster-scale churn: a `pap-tenants` arrival trace
//!   drives the resident app population, batched per epoch for
//!   `Cluster::admit_batch`/`depart_batch`.
//! * [`sweep`] — the parallel experiment sweep engine (moved here from
//!   `pap-bench`, which re-exports it): scoped workers, a shared work
//!   queue, input-ordered collection. The sharded engine grew out of
//!   this machinery and they share the vendored `crossbeam` shims.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod load;
pub mod sweep;

pub use engine::{run_sharded, ScaleConfig, ScaleStats};
pub use load::{ChurnBatch, ChurnLoad};

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::engine::{run_sharded, ScaleConfig, ScaleStats};
    pub use crate::load::{ChurnBatch, ChurnLoad};
    pub use crate::sweep::{Sweep, Threads};
}
