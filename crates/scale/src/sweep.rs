//! Parallel experiment sweep engine.
//!
//! Every figure/table/extension binary is a *sweep*: a list of
//! independent experiment cells (policy × limit × mix …) whose results
//! are reduced into a table after the fact. The engine here runs those
//! cells on `crossbeam` scoped worker threads — the same pattern as the
//! cluster parallel engine in `clusterd::engine` — and collects
//! results **in input order**, so a parallel sweep's output is
//! byte-identical to a serial one: each cell owns its chip/daemon/apps
//! and shares no mutable state, and reduction happens on the calling
//! thread after all cells land in their slots.
//!
//! Thread count is controlled by [`Threads`]; binaries read it from the
//! `PAP_SWEEP_THREADS` environment variable via [`Threads::from_env`],
//! which is how CI proves serial-vs-parallel byte-identity.

use std::sync::Mutex;

/// Worker-thread selection for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Run every cell on the calling thread, in input order.
    Serial,
    /// One worker per available CPU, capped at the cell count.
    #[default]
    Auto,
    /// Exactly this many workers (0 is treated as [`Threads::Auto`]).
    Fixed(usize),
}

impl Threads {
    /// Read the mode from `PAP_SWEEP_THREADS`: unset, empty, `auto` or
    /// `0` selects [`Threads::Auto`]; `serial` or `1` selects
    /// [`Threads::Serial`]; any other integer selects that fixed worker
    /// count. Unparsable values fall back to [`Threads::Auto`].
    pub fn from_env() -> Threads {
        match std::env::var("PAP_SWEEP_THREADS") {
            Err(_) => Threads::Auto,
            Ok(v) => match v.trim() {
                "" | "auto" | "0" => Threads::Auto,
                "serial" | "1" => Threads::Serial,
                n => n.parse().map(Threads::Fixed).unwrap_or(Threads::Auto),
            },
        }
    }

    /// Resolve to a concrete worker count for `jobs` cells.
    fn workers(self, jobs: usize) -> usize {
        let n = match self {
            Threads::Serial => 1,
            Threads::Auto | Threads::Fixed(0) => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            Threads::Fixed(n) => n,
        };
        n.min(jobs)
    }
}

/// Map `f` over `jobs` with the given thread mode; results come back in
/// input order regardless of completion order.
///
/// Cells are distributed through a work-stealing queue and each result
/// lands in its own pre-allocated slot (one `Mutex<Option<R>>` per cell,
/// as in the cluster engine's telemetry slots), so workers never contend
/// on a shared results vector.
pub fn run<T, R, F>(mode: Threads, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = jobs.len();
    if mode.workers(n) <= 1 {
        return jobs.into_iter().map(f).collect();
    }
    let queue = crossbeam::queue::SegQueue::new();
    for job in jobs.into_iter().enumerate() {
        queue.push(job);
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..mode.workers(n) {
            s.spawn(|_| {
                while let Some((i, job)) = queue.pop() {
                    let r = f(job);
                    *slots[i].lock().expect("sweep result slot") = Some(r);
                }
            });
        }
    })
    .expect("sweep worker panicked");
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep result slot")
                .expect("worker wrote its slot")
        })
        .collect()
}

/// A sweep of heterogeneous experiment cells.
///
/// Where [`run`] maps one closure over uniform inputs, `Sweep` collects
/// arbitrary `FnOnce` experiments — different policies, platforms, or
/// entirely different harnesses per cell — and runs them concurrently
/// with input-ordered collection:
///
/// ```
/// use pap_scale::sweep::{Sweep, Threads};
/// let mut sweep = Sweep::new();
/// for limit in [85.0_f64, 50.0, 40.0] {
///     sweep.add(move || limit * 2.0);
/// }
/// assert_eq!(sweep.run(Threads::Auto), vec![170.0, 100.0, 80.0]);
/// ```
#[derive(Default)]
pub struct Sweep<'a, R> {
    cells: Vec<Box<dyn FnOnce() -> R + Send + 'a>>,
}

impl<'a, R: Send> Sweep<'a, R> {
    /// An empty sweep.
    pub fn new() -> Sweep<'a, R> {
        Sweep { cells: Vec::new() }
    }

    /// Append one experiment cell. Cells must be independent: the engine
    /// may run them on any worker in any order.
    pub fn add<F: FnOnce() -> R + Send + 'a>(&mut self, f: F) {
        self.cells.push(Box::new(f));
    }

    /// Number of cells queued.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether any cells are queued.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Run all cells and return their results in insertion order.
    pub fn run(self, mode: Threads) -> Vec<R> {
        run(mode, self.cells, |f| f())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_env_parsing() {
        // from_env reads the process environment; exercise the match arms
        // through the resolver instead of mutating global env in a test.
        assert_eq!(Threads::Serial.workers(100), 1);
        assert_eq!(Threads::Fixed(3).workers(100), 3);
        assert_eq!(Threads::Fixed(8).workers(2), 2, "capped at cell count");
        assert!(Threads::Auto.workers(100) >= 1);
        assert!(Threads::Fixed(0).workers(100) >= 1, "0 means auto");
    }

    #[test]
    fn ordered_collection() {
        for mode in [Threads::Serial, Threads::Auto, Threads::Fixed(3)] {
            let out = run(mode, (0..97).collect::<Vec<u64>>(), |x| x * x);
            assert_eq!(out, (0..97).map(|x| x * x).collect::<Vec<u64>>());
        }
        assert!(run(Threads::Auto, Vec::<u8>::new(), |x| x).is_empty());
        assert_eq!(run(Threads::Auto, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn serial_and_parallel_bit_identical() {
        // A float-heavy cell whose result depends on operation order
        // inside the cell only — the engine must not change it.
        let cell = |seed: u64| -> f64 {
            let mut acc = 0.1_f64;
            for i in 0..10_000u64 {
                acc += ((seed * 31 + i) % 1024) as f64 * 1e-3;
                acc *= 1.0000001;
            }
            acc
        };
        let jobs: Vec<u64> = (0..40).collect();
        let serial = run(Threads::Serial, jobs.clone(), cell);
        let parallel = run(Threads::Fixed(7), jobs, cell);
        assert_eq!(
            serial.iter().map(|f| f.to_bits()).collect::<Vec<u64>>(),
            parallel.iter().map(|f| f.to_bits()).collect::<Vec<u64>>(),
            "sweep engine must be bit-transparent"
        );
    }

    #[test]
    fn heterogeneous_sweep_in_order() {
        let mut sweep = Sweep::new();
        sweep.add(|| "alpha".to_string());
        for i in 0..5 {
            sweep.add(move || format!("cell-{i}"));
        }
        assert_eq!(sweep.len(), 6);
        let out = sweep.run(Threads::Fixed(4));
        assert_eq!(out[0], "alpha");
        for (i, v) in out[1..].iter().enumerate() {
            assert_eq!(v, &format!("cell-{i}"));
        }
    }
}
