//! Command-line parsing for the `powerd-sim` binary.
//!
//! The paper's daemon "takes a list of programs as input with their
//! priority and shares" (§5); `powerd-sim` is that front door against the
//! simulated platforms. Parsing is hand-rolled (no CLI dependency) and
//! lives here so it can be unit-tested.

use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};

use crate::config::{PolicyKind, Priority, TranslationKind};

/// One `--app` argument: `name=PROFILE[:shares[:hp|lp]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CliApp {
    /// Display name.
    pub name: String,
    /// SPEC profile name (resolved by the binary via `pap_workloads`).
    pub profile: String,
    /// Shares (default 100).
    pub shares: u32,
    /// Priority (default high).
    pub priority: Priority,
}

/// Which backend executes the run: the simulated socket or the real
/// Linux host through `pap-hw` (cpufreq + RAPL/hwmon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The simulated chip (default; always available).
    #[default]
    Sim,
    /// The real host via sysfs. Requires the `linux-hw` feature; the
    /// binary reports a typed error when it was built without it.
    Linux,
}

impl BackendKind {
    /// Parse the `--backend` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(BackendKind::Sim),
            "linux" => Some(BackendKind::Linux),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Linux => "linux",
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Platform: `skylake` or `ryzen`.
    pub platform: String,
    /// Policy to run. Required unless `--scenario` is given (scenarios
    /// carry their own policy per control mode).
    pub policy: Option<PolicyKind>,
    /// Package power limit. Required unless `--scenario` is given.
    pub limit: Option<Watts>,
    /// Simulated measurement duration.
    pub duration: Seconds,
    /// Applications.
    pub apps: Vec<CliApp>,
    /// Run a named multi-tenant scenario from the `pap-tenants` library
    /// instead of an ad-hoc `--app` list.
    pub scenario: Option<String>,
    /// Emit the full telemetry trace as CSV on stdout.
    pub csv: bool,
    /// Phase-generator seed (`None` = the runner's default, which
    /// reproduces historical runs).
    pub seed: Option<u64>,
    /// Budget-to-frequency translation model (default: the paper's
    /// naïve α).
    pub model: TranslationKind,
    /// Write the per-interval decision trace as JSONL to this path.
    pub trace_out: Option<String>,
    /// Print aggregated control metrics (Prometheus text format) on
    /// stdout after the run.
    pub metrics: bool,
    /// Backend executing the run (default: the simulator).
    pub backend: BackendKind,
    /// Electricity tariff in USD per kWh; enables cost accounting in
    /// the exports. Accounting is strictly off-path — control output is
    /// identical with or without it.
    pub tariff: Option<f64>,
    /// Linux backend only: observe but never write to sysfs.
    pub dry_run: bool,
    /// Linux backend only: sysfs root prefix (default `/`); point at a
    /// mock tree for offline runs.
    pub sysfs_root: Option<String>,
    /// Linux backend / govcmp tick interval in seconds (default 1.0).
    pub interval: Seconds,
    /// Linux backend only: never offline a CPU; parked cores pin to
    /// the frequency floor instead.
    pub no_offline: bool,
    /// `govcmp` subcommand: sweep the host's cpufreq governors and
    /// report mean power, frequency and energy per governor.
    pub govcmp: bool,
}

impl CliOptions {
    /// Resolve the platform name.
    pub fn platform_spec(&self) -> Result<PlatformSpec, String> {
        match self.platform.as_str() {
            "skylake" => Ok(PlatformSpec::skylake()),
            "ryzen" => Ok(PlatformSpec::ryzen()),
            other => Err(format!("unknown platform '{other}' (skylake|ryzen)")),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
powerd-sim — per-application power delivery on a simulated socket

USAGE:
    powerd-sim --policy <POLICY> --limit <WATTS> --app <SPEC>... [OPTIONS]
    powerd-sim --scenario <NAME> [OPTIONS]
    powerd-sim --backend linux --policy <POLICY> --limit <WATTS> --app <SPEC>... [OPTIONS]
    powerd-sim govcmp [--backend sim|linux] [--duration N] [--interval N]
                      [--dry-run] [--sysfs-root PATH]

OPTIONS:
    --platform <skylake|ryzen>   platform model (default: skylake)
    --backend <sim|linux>        run against the simulator (default) or
                                 the real Linux host via cpufreq +
                                 RAPL/hwmon (needs the linux-hw build
                                 feature; start with --dry-run)
    --scenario <NAME>            run a named multi-tenant scenario from
                                 the pap-tenants library (see the binary's
                                 error output for the names); --policy,
                                 --limit and --app are then not required
    --policy <POLICY>            rapl | priority | power-shares |
                                 freq-shares | perf-shares | fastcap
    --limit <WATTS>              package power limit, e.g. 45
    --app <name=PROFILE[:shares[:hp|lp]]>
                                 e.g. --app web=leela:90:hp --app bg=cam4:10:lp
                                 PROFILE is a SPEC CPU2017 name or 'cpuburn'
    --duration <SECONDS>         measured duration (default: 60)
    --seed <N>                   phase-generator seed for reproducible
                                 runs (same seed = identical run)
    --model <naive|online>       budget-to-frequency translation: the
                                 paper's naive alpha model or the online
                                 learned model (default: naive)
    --csv                        dump the telemetry trace as CSV
    --trace-out <PATH>           write the per-interval decision trace
                                 (one JSON record per control interval)
                                 to PATH as JSONL
    --metrics                    print aggregated control metrics in
                                 Prometheus text format after the run
    --tariff <USD_PER_KWH>       price consumed energy, adding Wh/cost
                                 fields to the exports (off-path: control
                                 decisions are unchanged)
    --dry-run                    linux backend: observe only, never
                                 write to sysfs
    --sysfs-root <PATH>          linux backend: sysfs root prefix
                                 (default /); point at a mock tree for
                                 offline runs
    --interval <SECONDS>         linux backend / govcmp tick (default 1)
    --no-offline                 linux backend: never offline a CPU;
                                 parked cores pin to the frequency
                                 floor instead
    --help                       print this help

SUBCOMMANDS:
    govcmp                       replay the paper's governor comparison
                                 on the selected backend: emulated
                                 governors on the simulator (default),
                                 or the host's stock cpufreq governors
                                 with --backend linux; reports mean
                                 power, frequency and Wh per governor
";

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    Ok(match s {
        "rapl" => PolicyKind::RaplNative,
        "priority" => PolicyKind::Priority,
        "power-shares" => PolicyKind::PowerShares,
        "freq-shares" => PolicyKind::FrequencyShares,
        "perf-shares" => PolicyKind::PerformanceShares,
        "fastcap" => PolicyKind::FastCap,
        other => return Err(format!("unknown policy '{other}'")),
    })
}

fn parse_app(s: &str) -> Result<CliApp, String> {
    let (name, rest) = s
        .split_once('=')
        .ok_or_else(|| format!("--app '{s}': expected name=PROFILE[:shares[:hp|lp]]"))?;
    if name.is_empty() {
        return Err(format!("--app '{s}': empty name"));
    }
    let mut parts = rest.split(':');
    let profile = parts
        .next()
        .filter(|p| !p.is_empty())
        .ok_or_else(|| format!("--app '{s}': missing profile"))?
        .to_string();
    let shares = match parts.next() {
        None => 100,
        Some(v) => v
            .parse::<u32>()
            .map_err(|_| format!("--app '{s}': bad shares '{v}'"))?,
    };
    let priority = match parts.next() {
        None => Priority::High,
        Some("hp") => Priority::High,
        Some("lp") => Priority::Low,
        Some(v) => return Err(format!("--app '{s}': bad priority '{v}' (hp|lp)")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("--app '{s}': trailing garbage '{extra}'"));
    }
    Ok(CliApp {
        name: name.to_string(),
        profile,
        shares,
        priority,
    })
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<CliOptions, String> {
    let mut platform = "skylake".to_string();
    let mut policy = None;
    let mut limit = None;
    let mut duration = Seconds(60.0);
    let mut apps = Vec::new();
    let mut csv = false;
    let mut seed = None;
    let mut model = TranslationKind::Naive;
    let mut trace_out = None;
    let mut metrics = false;
    let mut scenario = None;
    let mut backend = BackendKind::Sim;
    let mut tariff = None;
    let mut dry_run = false;
    let mut sysfs_root = None;
    let mut interval = Seconds(1.0);
    let mut no_offline = false;
    let mut govcmp = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "govcmp" => govcmp = true,
            "--backend" => {
                let v = value("--backend")?;
                backend = BackendKind::parse(v)
                    .ok_or_else(|| format!("bad --backend '{v}' (sim|linux)"))?;
            }
            "--tariff" => {
                let v = value("--tariff")?;
                let t: f64 = v.parse().map_err(|_| format!("bad --tariff '{v}'"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err(format!("bad --tariff '{v}' (USD per kWh, >= 0)"));
                }
                tariff = Some(t);
            }
            "--dry-run" => dry_run = true,
            "--no-offline" => no_offline = true,
            "--sysfs-root" => sysfs_root = Some(value("--sysfs-root")?.clone()),
            "--interval" => {
                let v = value("--interval")?;
                let s: f64 = v.parse().map_err(|_| format!("bad --interval '{v}'"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!("bad --interval '{v}' (seconds, > 0)"));
                }
                interval = Seconds(s);
            }
            "--platform" => platform = value("--platform")?.clone(),
            "--policy" => policy = Some(parse_policy(value("--policy")?)?),
            "--limit" => {
                let v = value("--limit")?;
                let w: f64 = v.parse().map_err(|_| format!("bad --limit '{v}'"))?;
                limit = Some(Watts(w));
            }
            "--duration" => {
                let v = value("--duration")?;
                let s: f64 = v.parse().map_err(|_| format!("bad --duration '{v}'"))?;
                duration = Seconds(s);
            }
            "--app" => apps.push(parse_app(value("--app")?)?),
            "--seed" => {
                let v = value("--seed")?;
                seed = Some(v.parse::<u64>().map_err(|_| format!("bad --seed '{v}'"))?);
            }
            "--model" => {
                let v = value("--model")?;
                model = TranslationKind::parse(v)
                    .ok_or_else(|| format!("bad --model '{v}' (naive|online)"))?;
            }
            "--csv" => csv = true,
            "--scenario" => scenario = Some(value("--scenario")?.clone()),
            "--trace-out" => trace_out = Some(value("--trace-out")?.clone()),
            "--metrics" => metrics = true,
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }

    if govcmp {
        if scenario.is_some() || policy.is_some() || !apps.is_empty() {
            return Err(format!(
                "govcmp takes no --scenario/--policy/--app\n\n{USAGE}"
            ));
        }
    } else if scenario.is_none() {
        if policy.is_none() {
            return Err(format!("--policy is required\n\n{USAGE}"));
        }
        if limit.is_none() {
            return Err(format!("--limit is required\n\n{USAGE}"));
        }
        if apps.is_empty() {
            return Err(format!("at least one --app is required\n\n{USAGE}"));
        }
    } else if !apps.is_empty() {
        return Err(format!(
            "--scenario and --app are mutually exclusive\n\n{USAGE}"
        ));
    }
    if backend == BackendKind::Linux && scenario.is_some() {
        return Err(format!(
            "--scenario runs on the simulator; --backend linux takes \
             --policy/--limit/--app\n\n{USAGE}"
        ));
    }
    if backend == BackendKind::Sim && (dry_run || sysfs_root.is_some() || no_offline) && !govcmp {
        return Err(format!(
            "--dry-run/--sysfs-root/--no-offline apply to --backend linux or govcmp\n\n{USAGE}"
        ));
    }
    Ok(CliOptions {
        platform,
        policy,
        limit,
        duration,
        apps,
        scenario,
        csv,
        seed,
        model,
        trace_out,
        metrics,
        backend,
        tariff,
        dry_run,
        sysfs_root,
        interval,
        no_offline,
        govcmp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn full_command_line() {
        let o = parse(&sv(&[
            "--platform",
            "ryzen",
            "--policy",
            "freq-shares",
            "--limit",
            "45",
            "--duration",
            "30",
            "--app",
            "web=leela:90:hp",
            "--app",
            "bg=cam4:10:lp",
            "--seed",
            "1234",
            "--csv",
        ]))
        .unwrap();
        assert_eq!(o.platform, "ryzen");
        assert_eq!(o.policy, Some(PolicyKind::FrequencyShares));
        assert_eq!(o.limit, Some(Watts(45.0)));
        assert_eq!(o.duration, Seconds(30.0));
        assert_eq!(o.seed, Some(1234));
        assert!(o.csv);
        assert_eq!(o.apps.len(), 2);
        assert_eq!(o.apps[0].shares, 90);
        assert_eq!(o.apps[1].priority, Priority::Low);
        assert!(o.platform_spec().is_ok());
    }

    #[test]
    fn app_defaults() {
        let o = parse(&sv(&[
            "--policy", "rapl", "--limit", "50", "--app", "x=gcc",
        ]))
        .unwrap();
        assert_eq!(o.apps[0].shares, 100);
        assert_eq!(o.apps[0].priority, Priority::High);
        assert_eq!(o.apps[0].profile, "gcc");
        assert_eq!(o.platform, "skylake");
        assert_eq!(o.seed, None, "unseeded runs keep the historical default");
        assert_eq!(
            o.model,
            TranslationKind::Naive,
            "naive translation is the default"
        );
    }

    #[test]
    fn model_flag_selects_translation() {
        let o = parse(&sv(&[
            "--policy", "rapl", "--limit", "50", "--app", "x=gcc", "--model", "online",
        ]))
        .unwrap();
        assert_eq!(o.model, TranslationKind::Online);
        let o = parse(&sv(&[
            "--policy", "rapl", "--limit", "50", "--app", "x=gcc", "--model", "naive",
        ]))
        .unwrap();
        assert_eq!(o.model, TranslationKind::Naive);
        assert!(parse(&sv(&[
            "--policy", "rapl", "--limit", "50", "--app", "x=gcc", "--model", "magic",
        ]))
        .unwrap_err()
        .contains("bad --model"));
    }

    #[test]
    fn observability_flags() {
        let o = parse(&sv(&[
            "--policy",
            "rapl",
            "--limit",
            "50",
            "--app",
            "x=gcc",
            "--trace-out",
            "/tmp/decisions.jsonl",
            "--metrics",
        ]))
        .unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/decisions.jsonl"));
        assert!(o.metrics);

        let o = parse(&sv(&[
            "--policy", "rapl", "--limit", "50", "--app", "x=gcc",
        ]))
        .unwrap();
        assert_eq!(o.trace_out, None, "tracing is opt-in");
        assert!(!o.metrics, "metrics are opt-in");

        assert!(parse(&sv(&[
            "--policy",
            "rapl",
            "--limit",
            "50",
            "--app",
            "x=gcc",
            "--trace-out",
        ]))
        .unwrap_err()
        .contains("needs a value"));
    }

    #[test]
    fn missing_required_args() {
        assert!(parse(&sv(&["--limit", "50", "--app", "x=gcc"]))
            .unwrap_err()
            .contains("--policy"));
        assert!(parse(&sv(&["--policy", "rapl", "--app", "x=gcc"]))
            .unwrap_err()
            .contains("--limit"));
        assert!(parse(&sv(&["--policy", "rapl", "--limit", "50"]))
            .unwrap_err()
            .contains("--app"));
    }

    #[test]
    fn scenario_mode_relaxes_required_args() {
        let o = parse(&sv(&["--scenario", "diurnal-flash"])).unwrap();
        assert_eq!(o.scenario.as_deref(), Some("diurnal-flash"));
        assert_eq!(o.policy, None);
        assert_eq!(o.limit, None);
        assert!(o.apps.is_empty());

        // Scenario plus explicit policy/limit overrides still parses.
        let o = parse(&sv(&[
            "--scenario",
            "churn",
            "--limit",
            "40",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(o.limit, Some(Watts(40.0)));
        assert_eq!(o.seed, Some(9));

        // Ad-hoc apps and library scenarios cannot be mixed.
        assert!(parse(&sv(&["--scenario", "churn", "--app", "x=gcc"]))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(parse(&sv(&["--scenario"]))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn malformed_inputs() {
        assert!(parse(&sv(&[
            "--policy", "bogus", "--limit", "50", "--app", "x=gcc"
        ]))
        .is_err());
        assert!(parse(&sv(&[
            "--policy", "rapl", "--limit", "watts", "--app", "x=gcc"
        ]))
        .is_err());
        assert!(parse(&sv(&[
            "--policy", "rapl", "--limit", "50", "--app", "nocolon"
        ]))
        .is_err());
        assert!(parse(&sv(&[
            "--policy",
            "rapl",
            "--limit",
            "50",
            "--app",
            "x=gcc:abc"
        ]))
        .is_err());
        assert!(parse(&sv(&[
            "--policy",
            "rapl",
            "--limit",
            "50",
            "--app",
            "x=gcc:50:mid"
        ]))
        .is_err());
        assert!(parse(&sv(&[
            "--policy", "rapl", "--limit", "50", "--app", "x=gcc", "--seed", "-3"
        ]))
        .unwrap_err()
        .contains("bad --seed"));
        assert!(parse(&sv(&["--bogus"])).is_err());
        assert!(parse(&sv(&["--policy"]))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn backend_and_cost_flags() {
        let o = parse(&sv(&[
            "--backend",
            "linux",
            "--policy",
            "freq-shares",
            "--limit",
            "45",
            "--app",
            "web=leela:90:hp",
            "--dry-run",
            "--sysfs-root",
            "/tmp/mock",
            "--interval",
            "0.5",
            "--tariff",
            "0.25",
            "--no-offline",
        ]))
        .unwrap();
        assert_eq!(o.backend, BackendKind::Linux);
        assert!(o.dry_run);
        assert!(o.no_offline);
        assert_eq!(o.sysfs_root.as_deref(), Some("/tmp/mock"));
        assert_eq!(o.interval, Seconds(0.5));
        assert_eq!(o.tariff, Some(0.25));

        let o = parse(&sv(&[
            "--policy", "rapl", "--limit", "50", "--app", "x=gcc",
        ]))
        .unwrap();
        assert_eq!(o.backend, BackendKind::Sim, "sim is the default");
        assert_eq!(o.tariff, None, "cost accounting is opt-in");
        assert!(!o.dry_run);
        assert!(!o.govcmp);

        // Tariff works on simulated scenarios too.
        let o = parse(&sv(&["--scenario", "churn", "--tariff", "0.12"])).unwrap();
        assert_eq!(o.tariff, Some(0.12));

        assert!(parse(&sv(&[
            "--backend",
            "epyc",
            "--policy",
            "rapl",
            "--limit",
            "50",
            "--app",
            "x=gcc",
        ]))
        .unwrap_err()
        .contains("bad --backend"));
        assert!(parse(&sv(&[
            "--policy", "rapl", "--limit", "50", "--app", "x=gcc", "--tariff", "-1",
        ]))
        .unwrap_err()
        .contains("bad --tariff"));
        // Scenarios are simulator-only.
        assert!(parse(&sv(&["--backend", "linux", "--scenario", "churn"]))
            .unwrap_err()
            .contains("simulator"));
        // Linux-only flags are rejected on the simulator.
        assert!(parse(&sv(&[
            "--policy",
            "rapl",
            "--limit",
            "50",
            "--app",
            "x=gcc",
            "--dry-run",
        ]))
        .unwrap_err()
        .contains("--backend linux"));
        assert!(parse(&sv(&[
            "--policy",
            "rapl",
            "--limit",
            "50",
            "--app",
            "x=gcc",
            "--no-offline",
        ]))
        .unwrap_err()
        .contains("--backend linux"));
    }

    #[test]
    fn fastcap_policy_parses() {
        let o = parse(&sv(&[
            "--policy", "fastcap", "--limit", "45", "--app", "x=gcc",
        ]))
        .unwrap();
        assert_eq!(o.policy, Some(PolicyKind::FastCap));
    }

    #[test]
    fn govcmp_subcommand() {
        let o = parse(&sv(&["govcmp"])).unwrap();
        assert!(o.govcmp);
        assert_eq!(o.policy, None);
        assert!(o.apps.is_empty());

        let o = parse(&sv(&[
            "govcmp",
            "--duration",
            "5",
            "--interval",
            "0.5",
            "--dry-run",
            "--sysfs-root",
            "/tmp/mock",
        ]))
        .unwrap();
        assert_eq!(o.duration, Seconds(5.0));
        assert_eq!(o.interval, Seconds(0.5));
        assert!(o.dry_run);

        assert!(parse(&sv(&["govcmp", "--scenario", "churn"]))
            .unwrap_err()
            .contains("govcmp"));
        assert!(parse(&sv(&["govcmp", "--app", "x=gcc"]))
            .unwrap_err()
            .contains("govcmp"));
        assert!(parse(&sv(&["--interval", "0", "govcmp"]))
            .unwrap_err()
            .contains("bad --interval"));
    }

    #[test]
    fn help_returns_usage() {
        let err = parse(&sv(&["--help"])).unwrap_err();
        assert!(err.contains("powerd-sim"));
    }

    #[test]
    fn bad_platform_resolution() {
        let o = parse(&sv(&[
            "--platform",
            "epyc",
            "--policy",
            "rapl",
            "--limit",
            "50",
            "--app",
            "x=gcc",
        ]))
        .unwrap();
        assert!(o.platform_spec().is_err());
    }
}
