//! OS frequency governors (§2.2).
//!
//! Linux's cpufreq governors pick the next P-state from CPU utilization.
//! The paper uses only the *userspace* governor (the daemon sets
//! frequencies itself), but the others are implemented here both as a
//! baseline family and because the daemon must coexist with them on a
//! real system. Semantics follow the kernel documentation:
//!
//! * `performance` — pin to the maximum frequency;
//! * `powersave` — pin to the minimum frequency;
//! * `ondemand` — jump to max when utilization exceeds the up-threshold,
//!   otherwise scale proportionally to utilization;
//! * `conservative` — like ondemand but moves gracefully in steps;
//! * `userspace` — hold whatever was programmed.

use pap_simcpu::freq::{FreqGrid, KiloHertz};

/// A cpufreq-style governor.
///
/// ```
/// use powerd::governor::Governor;
/// use pap_simcpu::freq::{FreqGrid, KiloHertz};
///
/// let grid = FreqGrid::new(
///     KiloHertz::from_mhz(800),
///     KiloHertz::from_mhz(3000),
///     KiloHertz::from_mhz(100),
/// );
/// let gov = Governor::ondemand();
/// // 90% busy -> race to max
/// assert_eq!(gov.next_freq(&grid, KiloHertz::from_mhz(1500), 0.9), grid.max());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Governor {
    /// Always the highest frequency.
    Performance,
    /// Always the lowest frequency.
    Powersave,
    /// Kernel `ondemand`: above `up_threshold` utilization jump to max,
    /// else run at `util / up_threshold` of max.
    Ondemand {
        /// Utilization fraction above which the governor jumps to max
        /// (kernel default 0.8).
        up_threshold: f64,
    },
    /// Kernel `conservative`: step up when above the up-threshold, step
    /// down when below the down-threshold.
    Conservative {
        /// Step up above this utilization.
        up_threshold: f64,
        /// Step down below this utilization.
        down_threshold: f64,
        /// Step size in grid steps.
        freq_step: u64,
    },
    /// Hold the programmed frequency (the paper's choice).
    Userspace,
}

impl Governor {
    /// Kernel-default `ondemand`.
    pub fn ondemand() -> Governor {
        Governor::Ondemand { up_threshold: 0.8 }
    }

    /// Kernel-default `conservative`.
    pub fn conservative() -> Governor {
        Governor::Conservative {
            up_threshold: 0.8,
            down_threshold: 0.2,
            freq_step: 1,
        }
    }

    /// The governor's sysfs name.
    pub fn name(&self) -> &'static str {
        match self {
            Governor::Performance => "performance",
            Governor::Powersave => "powersave",
            Governor::Ondemand { .. } => "ondemand",
            Governor::Conservative { .. } => "conservative",
            Governor::Userspace => "userspace",
        }
    }

    /// Next frequency for a core, given the grid, the currently
    /// programmed frequency and the measured utilization (C0 residency,
    /// 0..=1) over the last evaluation interval.
    pub fn next_freq(&self, grid: &FreqGrid, current: KiloHertz, utilization: f64) -> KiloHertz {
        debug_assert!((0.0..=1.0).contains(&utilization));
        match *self {
            Governor::Performance => grid.max(),
            Governor::Powersave => grid.min(),
            Governor::Userspace => grid.round(current),
            Governor::Ondemand { up_threshold } => {
                if utilization >= up_threshold {
                    grid.max()
                } else {
                    // "next_freq = C * max_freq * util" with C = 1/up_threshold,
                    // per kernel docs, floored at min.
                    let target = grid.max().khz() as f64 * utilization / up_threshold;
                    grid.round(KiloHertz(target as u64))
                }
            }
            Governor::Conservative {
                up_threshold,
                down_threshold,
                freq_step,
            } => {
                let mut f = grid.round(current);
                if utilization >= up_threshold {
                    for _ in 0..freq_step {
                        f = grid.step_up(f);
                    }
                } else if utilization <= down_threshold {
                    for _ in 0..freq_step {
                        f = grid.step_down(f);
                    }
                }
                f
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> FreqGrid {
        FreqGrid::new(
            KiloHertz::from_mhz(800),
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(100),
        )
    }

    #[test]
    fn performance_and_powersave_pin() {
        let g = grid();
        let cur = KiloHertz::from_mhz(1500);
        assert_eq!(Governor::Performance.next_freq(&g, cur, 0.1), g.max());
        assert_eq!(Governor::Powersave.next_freq(&g, cur, 0.9), g.min());
        assert_eq!(Governor::Userspace.next_freq(&g, cur, 0.9), cur);
    }

    #[test]
    fn ondemand_jumps_and_scales() {
        let g = grid();
        let gov = Governor::ondemand();
        let cur = KiloHertz::from_mhz(1500);
        assert_eq!(gov.next_freq(&g, cur, 0.85), g.max());
        assert_eq!(gov.next_freq(&g, cur, 0.8), g.max());
        // 40% util with 0.8 threshold -> half of max
        assert_eq!(gov.next_freq(&g, cur, 0.4), KiloHertz::from_mhz(1500));
        // idle -> floor
        assert_eq!(gov.next_freq(&g, cur, 0.0), g.min());
    }

    #[test]
    fn conservative_steps() {
        let g = grid();
        let gov = Governor::conservative();
        let cur = KiloHertz::from_mhz(1500);
        assert_eq!(gov.next_freq(&g, cur, 0.9), KiloHertz::from_mhz(1600));
        assert_eq!(gov.next_freq(&g, cur, 0.1), KiloHertz::from_mhz(1400));
        assert_eq!(gov.next_freq(&g, cur, 0.5), cur, "dead zone holds");
        // clamps at the ends
        assert_eq!(gov.next_freq(&g, g.max(), 0.9), g.max());
        assert_eq!(gov.next_freq(&g, g.min(), 0.1), g.min());
    }

    #[test]
    fn conservative_multi_step() {
        let g = grid();
        let gov = Governor::Conservative {
            up_threshold: 0.8,
            down_threshold: 0.2,
            freq_step: 3,
        };
        assert_eq!(
            gov.next_freq(&g, KiloHertz::from_mhz(1500), 0.9),
            KiloHertz::from_mhz(1800)
        );
    }

    #[test]
    fn names_match_sysfs() {
        assert_eq!(Governor::Performance.name(), "performance");
        assert_eq!(Governor::ondemand().name(), "ondemand");
        assert_eq!(Governor::conservative().name(), "conservative");
        assert_eq!(Governor::Userspace.name(), "userspace");
    }

    #[test]
    fn outputs_always_on_grid() {
        let g = grid();
        for gov in [
            Governor::Performance,
            Governor::Powersave,
            Governor::ondemand(),
            Governor::conservative(),
            Governor::Userspace,
        ] {
            for util in [0.0, 0.3, 0.65, 0.9, 1.0] {
                let f = gov.next_freq(&g, KiloHertz::from_mhz(1550), util);
                // userspace snaps the (off-grid) current to the grid too
                assert!(g.contains(f), "{} produced off-grid {f}", gov.name());
            }
        }
    }
}
