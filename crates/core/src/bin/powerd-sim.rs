//! `powerd-sim` — run the per-application power-delivery daemon against a
//! simulated socket from the command line.
//!
//! ```sh
//! powerd-sim --policy freq-shares --limit 45 \
//!     --app web=leela:90:hp --app bg=cpuburn:10:lp --duration 60
//! ```

use std::process::ExitCode;

use pap_workloads::burn::CPUBURN;
use pap_workloads::spec;
use powerd::cli::{self, CliOptions};
use powerd::report::{f1, f3, Table};
use powerd::runner::Experiment;

fn run(opts: &CliOptions) -> Result<(), String> {
    let platform = opts.platform_spec()?;
    let mut e = Experiment::new(platform, opts.policy, opts.limit)
        .duration(opts.duration)
        .translation(opts.model)
        .observe(opts.trace_out.is_some() || opts.metrics);
    if let Some(seed) = opts.seed {
        e = e.seed(seed);
    }
    for app in &opts.apps {
        let profile = if app.profile == "cpuburn" {
            CPUBURN
        } else {
            spec::by_name(&app.profile)
                .ok_or_else(|| format!("unknown profile '{}'", app.profile))?
        };
        e = e.app(app.name.clone(), profile, app.priority, app.shares);
    }
    let result = e.run()?;

    let mut t = Table::new(
        format!(
            "powerd-sim: {} at {} on {}",
            opts.policy.name(),
            opts.limit,
            opts.platform
        ),
        &[
            "app",
            "core",
            "mean_mhz",
            "norm_perf",
            "core_w",
            "starved_%",
        ],
    );
    for a in &result.apps {
        t.row(vec![
            a.name.clone(),
            a.core.to_string(),
            f1(a.mean_freq_mhz),
            f3(a.norm_perf),
            a.mean_power
                .map(|w| f3(w.value()))
                .unwrap_or_else(|| "-".into()),
            f1(a.starved_fraction * 100.0),
        ]);
    }
    println!("{t}");
    println!("mean package power: {:.2}", result.mean_package_power);
    let rms = result
        .model
        .prediction_rms_watts
        .map(|w| format!("{w:.2} W"))
        .unwrap_or_else(|| "n/a (fit not yet confident)".into());
    println!(
        "model[{}]: per-interval prediction rms {}, {} translation queries ({:.0}% naive fallback)",
        opts.model.name(),
        rms,
        result.model.queries,
        result.model.fallback_fraction() * 100.0,
    );
    println!("{}", powerd::report::model_table(&result.model));
    if opts.csv {
        print!("{}", result.trace.to_csv());
    }
    if let Some(decisions) = &result.decisions {
        if let Some(path) = &opts.trace_out {
            std::fs::write(path, decisions.to_jsonl())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("decision trace: {} records -> {path}", decisions.len());
        }
        if opts.metrics {
            if let Some(metrics) = decisions.metrics() {
                print!("{}", metrics.expose());
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
