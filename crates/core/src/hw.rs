//! Hardware backend abstraction.
//!
//! The daemon itself is a pure controller (telemetry in, frequency
//! targets out); a [`PowerBackend`] is the thing that actually touches
//! hardware. Two implementations ship:
//!
//! * [`SimBackend`] — direct access to the simulated chip (what the
//!   experiment runners use);
//! * [`MsrSysfsBackend`] — drives the *same* chip exclusively through
//!   the emulated MSR bus and cpufreq sysfs tree, i.e. through the exact
//!   interfaces a real Linux host exposes (`/dev/cpu/*/msr`,
//!   `/sys/devices/system/cpu/*/cpufreq/...`). Control software that
//!   works against this backend ports to real hardware by swapping the
//!   file I/O in.
//!
//! [`run_daemon`] is the §5 monitoring loop over any backend.

use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::msr::{addr, MsrBus};
use pap_simcpu::platform::{PlatformSpec, Vendor};
use pap_simcpu::sysfs::SysfsTree;
use pap_simcpu::units::Seconds;
use pap_telemetry::counters::{core_rates, power_from_energy};
use pap_telemetry::sampler::{CoreSample, Sample, Sampler};

use crate::daemon::{ControlAction, Daemon};

/// The hardware access surface the daemon's host loop needs.
pub trait PowerBackend {
    /// The platform being controlled.
    fn platform(&self) -> &PlatformSpec;

    /// Collect one telemetry sample covering the interval since the last
    /// call.
    fn sample(&mut self) -> Option<Sample>;

    /// Program a control action (frequencies + parking).
    fn apply(&mut self, action: &ControlAction) -> Result<(), String>;

    /// Advance simulated time (no-op on real hardware, where wall time
    /// passes by itself).
    fn advance(&mut self, dt: Seconds);
}

/// Direct-chip backend.
pub struct SimBackend {
    chip: Chip,
    sampler: Sampler,
}

impl SimBackend {
    /// Wrap a chip.
    pub fn new(chip: Chip) -> SimBackend {
        let sampler = Sampler::new(&chip);
        SimBackend { chip, sampler }
    }

    /// Access the chip (e.g. for workload driving).
    pub fn chip_mut(&mut self) -> &mut Chip {
        &mut self.chip
    }

    /// Read-only chip access.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }
}

impl PowerBackend for SimBackend {
    fn platform(&self) -> &PlatformSpec {
        self.chip.spec()
    }

    fn sample(&mut self) -> Option<Sample> {
        self.sampler.sample(&self.chip)
    }

    fn apply(&mut self, action: &ControlAction) -> Result<(), String> {
        self.chip
            .set_all_requested(&action.freqs)
            .map_err(|e| e.to_string())?;
        for (core, &p) in action.parked.iter().enumerate() {
            self.chip
                .set_forced_idle(core, p)
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    fn advance(&mut self, dt: Seconds) {
        self.chip.tick(dt);
    }
}

/// Backend that reaches the chip only through the emulated MSR and sysfs
/// interfaces — the portability proof.
pub struct MsrSysfsBackend {
    chip: Chip,
    prev_time: Seconds,
    prev: Vec<PrevCounters>,
    prev_pkg_energy: u32,
}

#[derive(Clone, Copy, Default)]
struct PrevCounters {
    aperf: u64,
    mperf: u64,
    tsc: u64,
    instructions: u64,
    core_energy: u32,
}

impl MsrSysfsBackend {
    /// Wrap a chip; all subsequent access goes through MSRs/sysfs.
    pub fn new(chip: Chip) -> MsrSysfsBackend {
        let n = chip.num_cores();
        let mut b = MsrSysfsBackend {
            chip,
            prev_time: Seconds(0.0),
            prev: vec![PrevCounters::default(); n],
            prev_pkg_energy: 0,
        };
        b.snapshot();
        b
    }

    /// Access the chip for workload driving (the workloads are not part
    /// of the hardware interface).
    pub fn chip_mut(&mut self) -> &mut Chip {
        &mut self.chip
    }

    fn pkg_energy_msr(&self) -> u32 {
        match self.chip.spec().vendor {
            Vendor::Intel => addr::PKG_ENERGY_STATUS,
            Vendor::Amd => addr::AMD_PKG_ENERGY,
        }
    }

    fn snapshot(&mut self) {
        self.prev_time = self.chip.now();
        let per_core_power = self.chip.spec().per_core_power;
        let pkg_msr = self.pkg_energy_msr();
        let bus = MsrBus::new(&mut self.chip);
        let n = self.prev.len();
        for c in 0..n {
            self.prev[c] = PrevCounters {
                aperf: bus.read(c, addr::APERF).expect("aperf"),
                mperf: bus.read(c, addr::MPERF).expect("mperf"),
                tsc: bus.read(c, addr::TSC).expect("tsc"),
                instructions: bus.read(c, addr::FIXED_CTR0).expect("instr"),
                core_energy: if per_core_power {
                    bus.read(c, addr::AMD_CORE_ENERGY).expect("core energy") as u32
                } else {
                    0
                },
            };
        }
        self.prev_pkg_energy = bus.read(0, pkg_msr).expect("pkg energy") as u32;
    }
}

impl PowerBackend for MsrSysfsBackend {
    fn platform(&self) -> &PlatformSpec {
        self.chip.spec()
    }

    fn sample(&mut self) -> Option<Sample> {
        let now = self.chip.now();
        let dt = now - self.prev_time;
        if dt.value() <= 0.0 {
            return None;
        }
        let base = self.chip.spec().base_freq;
        let per_core_power = self.chip.spec().per_core_power;
        let pkg_msr = self.pkg_energy_msr();
        let n = self.prev.len();

        let mut cores = Vec::with_capacity(n);
        let mut requested = Vec::with_capacity(n);
        {
            let fs = SysfsTree::new(&mut self.chip);
            for c in 0..n {
                let khz: u64 = fs
                    .read(&format!(
                        "/sys/devices/system/cpu/cpu{c}/cpufreq/scaling_setspeed"
                    ))
                    .expect("setspeed readable")
                    .parse()
                    .expect("kHz");
                requested.push(KiloHertz(khz));
            }
        }
        let bus = MsrBus::new(&mut self.chip);
        let mut pkg_raw = 0u32;
        #[allow(clippy::needless_range_loop)] // `c` is the MSR core index
        for c in 0..n {
            let now_c = pap_simcpu::core::CoreCounters {
                aperf: bus.read(c, addr::APERF).expect("aperf"),
                mperf: bus.read(c, addr::MPERF).expect("mperf"),
                tsc: bus.read(c, addr::TSC).expect("tsc"),
                instructions: bus.read(c, addr::FIXED_CTR0).expect("instr"),
            };
            let prev_c = pap_simcpu::core::CoreCounters {
                aperf: self.prev[c].aperf,
                mperf: self.prev[c].mperf,
                tsc: self.prev[c].tsc,
                instructions: self.prev[c].instructions,
            };
            let rates = core_rates(prev_c, now_c, dt, base);
            let power = if per_core_power {
                let raw = bus.read(c, addr::AMD_CORE_ENERGY).expect("core energy") as u32;
                Some(power_from_energy(self.prev[c].core_energy, raw, dt))
            } else {
                None
            };
            cores.push(CoreSample {
                rates,
                power,
                requested_freq: requested[c],
            });
            if c == 0 {
                pkg_raw = bus.read(0, pkg_msr).expect("pkg energy") as u32;
            }
        }
        let package_power = power_from_energy(self.prev_pkg_energy, pkg_raw, dt);
        #[allow(clippy::drop_non_drop)] // ends the &mut Chip borrow
        drop(bus);
        self.snapshot();

        Some(Sample {
            time: now,
            interval: dt,
            package_power,
            // the PP0 counter is Intel-only; approximate with package for
            // the backend's purposes (no policy consumes cores_power)
            cores_power: package_power,
            cores,
        })
    }

    fn apply(&mut self, action: &ControlAction) -> Result<(), String> {
        {
            let mut fs = SysfsTree::new(&mut self.chip);
            for (c, f) in action.freqs.iter().enumerate() {
                fs.write(
                    &format!("/sys/devices/system/cpu/cpu{c}/cpufreq/scaling_setspeed"),
                    &f.khz().to_string(),
                )
                .map_err(|e| e.to_string())?;
            }
        }
        // Core parking has no sysfs file in our emulation; it maps to the
        // cpu online/offline interface on real hardware. Apply directly.
        for (core, &p) in action.parked.iter().enumerate() {
            self.chip
                .set_forced_idle(core, p)
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    fn advance(&mut self, dt: Seconds) {
        self.chip.tick(dt);
    }
}

/// Drive a daemon over a backend for `duration`, invoking `drive` each
/// tick so the caller can advance its workloads. This is the §5
/// monitoring loop, backend-agnostic.
pub fn run_daemon<B: PowerBackend>(
    backend: &mut B,
    daemon: &mut Daemon,
    duration: Seconds,
    tick: Seconds,
    mut drive: impl FnMut(&mut B, &ControlAction),
) -> Result<(), String> {
    let mut action = daemon.initial();
    backend.apply(&action)?;
    let interval = daemon.config().control_interval.value();
    let mut t = 0.0;
    let mut next = interval;
    while t < duration.value() {
        drive(backend, &action);
        backend.advance(tick);
        t += tick.value();
        if t + 1e-9 >= next {
            next += interval;
            if let Some(sample) = backend.sample() {
                action = daemon.step(&sample);
                backend.apply(&action)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AppSpec, DaemonConfig, PolicyKind};
    use pap_simcpu::units::Watts;
    use pap_workloads::engine::RunningApp;
    use pap_workloads::spec;

    fn daemon(platform: &PlatformSpec, limit: f64) -> Daemon {
        let apps = vec![
            AppSpec::new("cactusBSSN", 0)
                .with_shares(70)
                .with_baseline_ips(3e9),
            AppSpec::new("leela", 1)
                .with_shares(30)
                .with_baseline_ips(3e9),
        ];
        Daemon::new(
            DaemonConfig::new(PolicyKind::FrequencyShares, Watts(limit), apps),
            platform,
        )
        .expect("valid daemon")
    }

    fn drive_two_apps(
        apps: &mut [RunningApp; 2],
        chip: &mut Chip,
        action: &ControlAction,
        tick: Seconds,
    ) {
        for (c, app) in apps.iter_mut().enumerate() {
            if action.parked[c] {
                continue;
            }
            let f = chip.effective_freq(c);
            let out = app.advance(tick, f);
            chip.set_load(c, out.load).unwrap();
            chip.add_instructions(c, out.instructions).unwrap();
        }
    }

    #[test]
    fn sim_backend_converges() {
        let platform = PlatformSpec::skylake();
        let mut backend = SimBackend::new(Chip::new(platform.clone()));
        let mut d = daemon(&platform, 26.0);
        let mut apps = [
            RunningApp::looping(spec::CACTUS_BSSN),
            RunningApp::looping(spec::LEELA),
        ];
        let tick = Seconds(0.002);
        run_daemon(&mut backend, &mut d, Seconds(20.0), tick, |b, action| {
            drive_two_apps(&mut apps, b.chip_mut(), action, tick);
        })
        .unwrap();
        let p = backend.chip().package_power().value();
        assert!((p - 26.0).abs() < 3.0, "package {p:.1} vs 26 W");
    }

    #[test]
    fn msr_sysfs_backend_matches_direct_backend() {
        // The same daemon run through the file/MSR surface must land at
        // the same operating point as direct chip access.
        let platform = PlatformSpec::skylake();
        let tick = Seconds(0.002);

        let run = |direct: bool| -> (f64, u64, u64) {
            let mut d = daemon(&platform, 26.0);
            let mut apps = [
                RunningApp::looping(spec::CACTUS_BSSN),
                RunningApp::looping(spec::LEELA),
            ];
            if direct {
                let mut b = SimBackend::new(Chip::new(platform.clone()));
                run_daemon(&mut b, &mut d, Seconds(20.0), tick, |b, a| {
                    drive_two_apps(&mut apps, b.chip_mut(), a, tick)
                })
                .unwrap();
                (
                    b.chip().package_power().value(),
                    b.chip().effective_freq(0).khz(),
                    b.chip().effective_freq(1).khz(),
                )
            } else {
                let mut b = MsrSysfsBackend::new(Chip::new(platform.clone()));
                run_daemon(&mut b, &mut d, Seconds(20.0), tick, |b, a| {
                    drive_two_apps(&mut apps, b.chip_mut(), a, tick)
                })
                .unwrap();
                (
                    b.chip_mut().package_power().value(),
                    b.chip_mut().effective_freq(0).khz(),
                    b.chip_mut().effective_freq(1).khz(),
                )
            }
        };
        let (p_direct, f0_direct, f1_direct) = run(true);
        let (p_msr, f0_msr, f1_msr) = run(false);
        assert!(
            (p_direct - p_msr).abs() < 1.0,
            "package power {p_direct:.1} vs {p_msr:.1}"
        );
        assert_eq!(f0_direct, f0_msr, "core 0 frequency must match exactly");
        assert_eq!(f1_direct, f1_msr, "core 1 frequency must match exactly");
    }

    #[test]
    fn msr_sysfs_backend_on_ryzen_reads_core_power() {
        let platform = PlatformSpec::ryzen();
        let mut b = MsrSysfsBackend::new(Chip::new(platform.clone()));
        b.chip_mut()
            .set_load(0, pap_simcpu::power::LoadDescriptor::nominal())
            .unwrap();
        for _ in 0..1000 {
            b.advance(Seconds(0.001));
        }
        let s = b.sample().expect("time passed");
        let p = s.cores[0].power.expect("per-core power over MSR");
        assert!(p.value() > 1.0, "busy Ryzen core power {p}");
        assert!(s.cores[7].power.unwrap().value() < 0.2);
    }
}
