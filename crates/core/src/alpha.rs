//! The paper's naïve translation model (§5.2).
//!
//! Share policies are specified in units of their resource (frequency,
//! normalized performance) but the limit the operator programs is in
//! *watts*. The paper bridges the two with a deliberately simple linear
//! model:
//!
//! ```text
//! α               = PowerDelta / MaxPower
//! FrequencyDelta  = α · MaxFrequency  · NumAvailableCores
//! PerformanceDelta = α · MaxPerformance · NumAvailableCores
//! ```
//!
//! The model is wrong in general (power is super-linear in frequency) but,
//! as the paper notes, the error shrinks as the system approaches the
//! target power, and the closed loop absorbs the residual.
//!
//! Degenerate inputs (a non-positive `MaxPower`, a non-finite
//! `PowerDelta`, zero available cores) yield a **zero delta** rather than
//! NaN/inf: a daemon mis-wired at this level must hold frequencies
//! steady, not command garbage. The first such input is logged once.

use std::sync::Once;

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::units::Watts;

static DEGENERATE_ONCE: Once = Once::new();

/// Log the first degenerate translation input ever seen (once per
/// process: this is a wiring bug, not an operating condition, and a
/// 1 Hz control loop must not spam the journal).
fn note_degenerate(what: &str) {
    DEGENERATE_ONCE.call_once(|| {
        eprintln!("powerd: degenerate translation input ({what}); holding a zero delta");
    });
}

/// `α = PowerDelta / MaxPower`. `power_delta` may be negative (over
/// budget). Returns `0.0` (logged once) when `max_power` is not
/// positive or `power_delta` is not finite, so callers never see
/// NaN/inf.
pub fn alpha(power_delta: Watts, max_power: Watts) -> f64 {
    debug_assert!(max_power.value() > 0.0, "max power must be positive");
    if !max_power.value().is_finite() || max_power.value() <= 0.0 {
        note_degenerate("max_power <= 0");
        return 0.0;
    }
    if !power_delta.value().is_finite() {
        note_degenerate("non-finite power_delta");
        return 0.0;
    }
    power_delta.value() / max_power.value()
}

/// Total frequency (kHz, signed) to distribute or withdraw across the
/// available (non-saturated) cores. A non-finite `alpha` or zero
/// `available_cores` yields `0.0`.
pub fn frequency_delta_khz(alpha: f64, max_freq: KiloHertz, available_cores: usize) -> f64 {
    if !alpha.is_finite() {
        note_degenerate("non-finite alpha");
        return 0.0;
    }
    alpha * max_freq.khz() as f64 * available_cores as f64
}

/// Total normalized performance to distribute or withdraw across the
/// available cores. `max_performance` is the per-core maximum in
/// normalized units (1.0 when IPS is normalized to the standalone
/// maximum-frequency baseline). A non-finite `alpha` or
/// `max_performance` yields `0.0`.
pub fn performance_delta(alpha: f64, max_performance: f64, available_cores: usize) -> f64 {
    if !alpha.is_finite() || !max_performance.is_finite() {
        note_degenerate("non-finite alpha or max_performance");
        return 0.0;
    }
    alpha * max_performance * available_cores as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_signs() {
        assert!((alpha(Watts(10.0), Watts(100.0)) - 0.1).abs() < 1e-12);
        assert!((alpha(Watts(-25.0), Watts(100.0)) + 0.25).abs() < 1e-12);
        assert_eq!(alpha(Watts(0.0), Watts(85.0)), 0.0);
    }

    #[test]
    fn frequency_delta_matches_paper_formula() {
        // α=0.1, MaxFrequency=3 GHz, 10 available cores -> 3 GHz total
        let d = frequency_delta_khz(0.1, KiloHertz::from_ghz(3.0), 10);
        assert!((d - 3.0e6).abs() < 1e-6);
        // negative α withdraws
        let d = frequency_delta_khz(-0.2, KiloHertz::from_ghz(2.0), 5);
        assert!((d + 2.0e6).abs() < 1e-6);
    }

    #[test]
    fn performance_delta_scales() {
        let d = performance_delta(0.5, 1.0, 4);
        assert!((d - 2.0).abs() < 1e-12);
        assert_eq!(performance_delta(0.5, 1.0, 0), 0.0);
    }

    #[test]
    fn zero_available_cores_is_a_zero_delta() {
        assert_eq!(frequency_delta_khz(0.3, KiloHertz::from_ghz(3.0), 0), 0.0);
        assert_eq!(performance_delta(0.3, 1.0, 0), 0.0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "max power must be positive")
    )]
    fn non_positive_max_power_is_a_zero_alpha() {
        // Release builds (debug_asserts off): a zero delta, never inf.
        assert_eq!(alpha(Watts(10.0), Watts(0.0)), 0.0);
        assert_eq!(alpha(Watts(10.0), Watts(-5.0)), 0.0);
        assert_eq!(alpha(Watts(10.0), Watts(f64::NAN)), 0.0);
    }

    #[test]
    fn non_finite_power_delta_is_a_zero_alpha() {
        assert_eq!(alpha(Watts(f64::NAN), Watts(85.0)), 0.0);
        assert_eq!(alpha(Watts(f64::INFINITY), Watts(85.0)), 0.0);
        assert_eq!(alpha(Watts(f64::NEG_INFINITY), Watts(85.0)), 0.0);
    }

    #[test]
    fn non_finite_alpha_yields_zero_deltas() {
        assert_eq!(
            frequency_delta_khz(f64::NAN, KiloHertz::from_ghz(3.0), 8),
            0.0
        );
        assert_eq!(
            frequency_delta_khz(f64::INFINITY, KiloHertz::from_ghz(3.0), 8),
            0.0
        );
        assert_eq!(performance_delta(f64::NAN, 1.0, 8), 0.0);
        assert_eq!(performance_delta(0.1, f64::NAN, 8), 0.0);
    }

    #[test]
    fn error_shrinks_near_target() {
        // The model's defining property: as PowerDelta -> 0, the correction
        // goes to zero smoothly (no step at the target).
        let big = frequency_delta_khz(
            alpha(Watts(20.0), Watts(85.0)),
            KiloHertz::from_ghz(3.0),
            10,
        );
        let small =
            frequency_delta_khz(alpha(Watts(1.0), Watts(85.0)), KiloHertz::from_ghz(3.0), 10);
        assert!(small.abs() < big.abs() / 10.0);
    }
}
