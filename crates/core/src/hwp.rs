//! Highest-useful-frequency probing — an HWP/CPPC-style extension (§4.4).
//!
//! The paper notes that both policy classes waste budget on applications
//! whose performance saturates below the maximum frequency (AVX caps,
//! memory-boundness), and points to hardware support like Intel HWP for
//! finding the *highest useful* frequency. [`UsefulFreqProbe`] is a
//! software implementation: a hill climber that raises a core's frequency
//! while each step still buys at least `min_gain` relative IPS, settles at
//! the knee, and periodically re-probes to follow phase changes.

use pap_simcpu::freq::{FreqGrid, KiloHertz};

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Climbing upward, remembering the previous step's measurement.
    Climbing,
    /// Settled at the knee; counts intervals until the next re-probe.
    Settled(u32),
}

/// A per-core highest-useful-frequency hill climber.
#[derive(Debug, Clone)]
pub struct UsefulFreqProbe {
    grid: FreqGrid,
    /// Minimum relative IPS gain per grid step worth paying for,
    /// as a fraction of the *ideal* gain (step / frequency). 1.0 accepts
    /// only perfectly frequency-scaled gains; 0 always climbs.
    pub min_gain: f64,
    /// Intervals to stay settled before re-probing.
    pub reprobe_after: u32,
    state: State,
    target: KiloHertz,
    last: Option<(KiloHertz, f64)>,
}

impl UsefulFreqProbe {
    /// Create a probe starting at the bottom of the grid.
    pub fn new(grid: FreqGrid) -> UsefulFreqProbe {
        UsefulFreqProbe {
            grid,
            min_gain: 0.5,
            reprobe_after: 30,
            state: State::Climbing,
            target: grid.min(),
            last: None,
        }
    }

    /// The frequency currently requested by the probe.
    pub fn target(&self) -> KiloHertz {
        self.target
    }

    /// Whether the probe considers itself settled at the knee.
    pub fn settled(&self) -> bool {
        matches!(self.state, State::Settled(_))
    }

    /// Feed one interval's measurement (the frequency the core actually
    /// achieved and its IPS); returns the next frequency to program.
    pub fn observe(&mut self, achieved: KiloHertz, ips: f64) -> KiloHertz {
        match self.state {
            State::Climbing => {
                if let Some((prev_f, prev_ips)) = self.last {
                    // Hardware caps show up as no achieved-frequency gain.
                    let freq_gain = achieved.khz() as f64 / prev_f.khz().max(1) as f64 - 1.0;
                    let ips_gain = if prev_ips > 0.0 {
                        ips / prev_ips - 1.0
                    } else {
                        1.0
                    };
                    let ideal = self.grid.step().khz() as f64 / prev_f.khz().max(1) as f64;
                    if freq_gain < ideal * 0.25 || ips_gain < ideal * self.min_gain {
                        // The last step bought (almost) nothing: the knee is
                        // the previous point.
                        self.target = prev_f;
                        self.state = State::Settled(0);
                        self.last = None;
                        return self.target;
                    }
                }
                self.last = Some((achieved, ips));
                if self.target >= self.grid.max() {
                    self.state = State::Settled(0);
                } else {
                    self.target = self.grid.step_up(self.target);
                }
                self.target
            }
            State::Settled(n) => {
                if n >= self.reprobe_after {
                    self.state = State::Climbing;
                    self.last = Some((achieved, ips));
                    if self.target < self.grid.max() {
                        self.target = self.grid.step_up(self.target);
                    }
                } else {
                    self.state = State::Settled(n + 1);
                }
                self.target
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_workloads::profile::WorkloadProfile;
    use pap_workloads::spec;

    fn grid() -> FreqGrid {
        FreqGrid::new(
            KiloHertz::from_mhz(800),
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(100),
        )
    }

    /// Run the probe against an analytic workload with an optional
    /// hardware frequency cap; return where it settles.
    fn settle(profile: &WorkloadProfile, cap: Option<KiloHertz>) -> KiloHertz {
        let g = grid();
        let mut probe = UsefulFreqProbe::new(g);
        let mut request = probe.target();
        for _ in 0..100 {
            let achieved = match cap {
                Some(c) => request.min(c),
                None => request,
            };
            let ips = profile.ips(achieved);
            request = probe.observe(achieved, ips);
            if probe.settled() {
                break;
            }
        }
        probe.target()
    }

    #[test]
    fn frequency_sensitive_app_climbs_to_max() {
        let f = settle(&spec::EXCHANGE2, None);
        assert_eq!(
            f,
            grid().max(),
            "compute-bound app should use all frequency"
        );
    }

    #[test]
    fn avx_cap_detected() {
        // cam4 capped at 1.7 GHz by hardware: the probe must stop near it
        // rather than requesting unusable frequency.
        let f = settle(&spec::CAM4, Some(KiloHertz::from_mhz(1700)));
        assert!(
            f <= KiloHertz::from_mhz(1800),
            "probe settled at {f}, cap is 1.7 GHz"
        );
        assert!(f >= KiloHertz::from_mhz(1600));
    }

    #[test]
    fn memory_bound_app_settles_early() {
        let mut probe = UsefulFreqProbe::new(grid());
        probe.min_gain = 0.6;
        let mut request = probe.target();
        for _ in 0..100 {
            let ips = spec::OMNETPP.ips(request);
            request = probe.observe(request, ips);
            if probe.settled() {
                break;
            }
        }
        let f = probe.target();
        assert!(
            f < grid().max(),
            "omnetpp's IPS knee is below max frequency, probe settled at {f}"
        );
        assert!(f > grid().min(), "but well above the floor");
    }

    #[test]
    fn reprobe_follows_phase_change() {
        let g = grid();
        let mut probe = UsefulFreqProbe::new(g);
        probe.reprobe_after = 3;
        // settle against a capped app
        let mut request = probe.target();
        for _ in 0..60 {
            let achieved = request.min(KiloHertz::from_mhz(1500));
            request = probe.observe(achieved, spec::GCC.ips(achieved));
            if probe.settled() {
                break;
            }
        }
        let settled_low = probe.target();
        assert!(settled_low <= KiloHertz::from_mhz(1600));
        // cap lifts (phase/license change): after the re-probe holdoff the
        // probe climbs again
        for _ in 0..120 {
            let achieved = request;
            request = probe.observe(achieved, spec::GCC.ips(achieved));
        }
        assert!(
            probe.target() > settled_low,
            "probe must rediscover headroom: {} -> {}",
            settled_low,
            probe.target()
        );
    }

    #[test]
    fn targets_always_on_grid() {
        let g = grid();
        let mut probe = UsefulFreqProbe::new(g);
        let mut request = probe.target();
        for i in 0..50 {
            assert!(g.contains(request), "off-grid at step {i}");
            request = probe.observe(request, 1e9 + i as f64);
        }
    }
}
