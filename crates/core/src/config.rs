//! Daemon configuration: applications, priorities, shares and policy
//! selection.

use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};

pub use pap_model::TranslationKind;

use crate::quantize::SlotSelector;

/// A configuration rejected by [`DaemonConfig::validate`] /
/// [`DaemonConfig::validate_on`], with enough structure for callers
/// (admission control, cluster placement) to react programmatically.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The power limit is non-positive or non-finite.
    InvalidPowerLimit {
        /// The rejected limit.
        limit: Watts,
    },
    /// The power limit cannot be programmed into the platform's RAPL
    /// range (hardware clamps or ignores out-of-range limits; failing
    /// loudly beats silently enforcing a different budget).
    PowerLimitOutsideRaplRange {
        /// The rejected limit.
        limit: Watts,
        /// The platform's programmable RAPL range.
        range: (Watts, Watts),
    },
    /// The control interval is non-positive.
    InvalidControlInterval {
        /// The rejected interval.
        interval: Seconds,
    },
    /// An app is pinned to a core the chip does not have.
    CoreOutOfRange {
        /// The app's display name.
        app: String,
        /// The requested core.
        core: usize,
        /// The chip's core count.
        num_cores: usize,
    },
    /// Two apps are pinned to the same core (space sharing requires one
    /// app per core).
    DuplicateCorePin {
        /// The doubly-assigned core.
        core: usize,
    },
    /// An app has zero proportional shares.
    ZeroShares {
        /// The app's display name.
        app: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidPowerLimit { limit } => {
                write!(f, "invalid power limit {limit}")
            }
            ConfigError::PowerLimitOutsideRaplRange { limit, range } => write!(
                f,
                "power limit {limit} outside the platform RAPL range [{}, {}]",
                range.0, range.1
            ),
            ConfigError::InvalidControlInterval { interval } => {
                write!(f, "control interval must be positive, got {interval}")
            }
            ConfigError::CoreOutOfRange {
                app,
                core,
                num_cores,
            } => write!(
                f,
                "app '{app}' pinned to core {core} on a {num_cores}-core chip"
            ),
            ConfigError::DuplicateCorePin { core } => write!(
                f,
                "core {core} assigned to multiple apps (space sharing requires one app per core)"
            ),
            ConfigError::ZeroShares { app } => write!(f, "app '{app}' has zero shares"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Two-level priority (§4.1). Strict: low-priority applications receive
/// only residual power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Foreground / latency-sensitive.
    High,
    /// Background / batch.
    Low,
}

/// One application under daemon control, pinned to a core (§5: "the
/// daemon takes a list of programs as input with their priority and
/// shares" and pins applications to cores).
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Display name.
    pub name: String,
    /// The core the application is pinned to.
    pub core: usize,
    /// Priority class (used by the priority policy).
    pub priority: Priority,
    /// Proportional shares (used by share policies). Must be positive.
    pub shares: u32,
    /// Offline-measured baseline: instructions per second running alone at
    /// maximum frequency (§5.2, performance shares). Ignored by policies
    /// that do not use performance feedback.
    pub baseline_ips: f64,
}

impl AppSpec {
    /// Convenience constructor with equal default shares and a baseline to
    /// be filled by the runner.
    pub fn new(name: impl Into<String>, core: usize) -> AppSpec {
        AppSpec {
            name: name.into(),
            core,
            priority: Priority::High,
            shares: 100,
            baseline_ips: 0.0,
        }
    }

    /// Set the priority class.
    pub fn with_priority(mut self, p: Priority) -> AppSpec {
        self.priority = p;
        self
    }

    /// Set proportional shares.
    pub fn with_shares(mut self, shares: u32) -> AppSpec {
        self.shares = shares;
        self
    }

    /// Set the offline IPS baseline.
    pub fn with_baseline_ips(mut self, ips: f64) -> AppSpec {
        self.baseline_ips = ips;
        self
    }
}

/// Which policy the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// No daemon control: hardware RAPL alone (the paper's baseline).
    RaplNative,
    /// Strict two-level priority (§4.1/§5.1).
    Priority,
    /// Proportional shares of per-core power (§5.2, Ryzen only).
    PowerShares,
    /// Proportional shares of frequency (§5.2).
    FrequencyShares,
    /// Proportional shares of normalized performance (§5.2).
    PerformanceShares,
    /// FastCap-style global optimization: water-fill on marginal
    /// fair-speedup per watt, falling back to [`PolicyKind::FrequencyShares`]
    /// while the translation model's package fit is unconfident
    /// (`policy::fastcap`).
    FastCap,
}

impl PolicyKind {
    /// Whether the policy requires per-core power telemetry.
    pub fn needs_per_core_power(self) -> bool {
        matches!(self, PolicyKind::PowerShares)
    }

    /// Whether the policy requires per-application performance feedback.
    pub fn needs_performance_feedback(self) -> bool {
        matches!(self, PolicyKind::PerformanceShares | PolicyKind::FastCap)
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::RaplNative => "rapl",
            PolicyKind::Priority => "priority",
            PolicyKind::PowerShares => "power-shares",
            PolicyKind::FrequencyShares => "freq-shares",
            PolicyKind::PerformanceShares => "perf-shares",
            PolicyKind::FastCap => "fastcap",
        }
    }
}

/// Controller tuning knobs. The defaults reproduce the paper's daemon;
/// the alternatives exist for the ablation studies (DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerTuning {
    /// Damping applied to the α-model correction (1.0 = the paper's raw
    /// formula).
    pub damping: f64,
    /// Control deadband in watts.
    pub deadband_watts: f64,
    /// Shared P-state slot selection algorithm (Ryzen).
    pub slot_selector: SlotSelector,
    /// Redistribute with the paper's literal incremental-delta scheme
    /// instead of the share-proportional water-fill. The incremental
    /// scheme drifts under saturation (see `policy::minfund`).
    pub incremental_redistribution: bool,
}

impl Default for ControllerTuning {
    fn default() -> ControllerTuning {
        ControllerTuning {
            damping: 0.6,
            deadband_watts: 0.5,
            slot_selector: SlotSelector::DpMean,
            incremental_redistribution: false,
        }
    }
}

/// Decision-memoization mode for the daemon's control loop.
///
/// Control traffic in steady fleets is overwhelmingly repetitive: the
/// same telemetry (within measurement noise) arrives interval after
/// interval and the policy recomputes the same answer. `DecisionMemo`
/// fingerprints each interval's policy inputs *and* the policy's own
/// mutable state; on a repeat it replays the stored output without
/// running the policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoMode {
    /// Never memoize: every interval runs the policy.
    Off,
    /// Replay the previous output when the fingerprint repeats.
    ///
    /// `epsilon = 0.0` fingerprints exact f64 bits, so a hit implies the
    /// step is a state fixpoint and replay is bit-identical to running
    /// the policy — this is the safe default. `epsilon > 0.0` buckets
    /// telemetry into relative-error bands of width ε before
    /// fingerprinting, trading bounded per-interval action drift for a
    /// higher hit rate under noisy telemetry.
    Replay {
        /// Relative quantization width for telemetry fields (0.0 = exact).
        epsilon: f64,
    },
}

impl MemoMode {
    /// The default-on exact mode.
    pub fn exact() -> MemoMode {
        MemoMode::Replay { epsilon: 0.0 }
    }

    /// Whether memoization is enabled at all.
    pub fn enabled(self) -> bool {
        !matches!(self, MemoMode::Off)
    }
}

impl Default for MemoMode {
    fn default() -> MemoMode {
        MemoMode::exact()
    }
}

/// Full daemon configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// Policy to run.
    pub policy: PolicyKind,
    /// The package power limit the daemon enforces.
    pub power_limit: Watts,
    /// Control-loop cadence (the paper uses 1 second).
    pub control_interval: Seconds,
    /// The applications under control.
    pub apps: Vec<AppSpec>,
    /// Priority-policy variant (§4.1): if true, all cores are floored at
    /// the minimum P-state before HP applications get extra power; if
    /// false (the paper's choice), LP applications are starved when the
    /// budget is tight.
    pub floor_low_priority: bool,
    /// §4.4 extension: cap each app at its *highest useful* frequency
    /// (beyond which measured performance saturates) instead of the
    /// highest possible frequency.
    pub saturation_aware: bool,
    /// Controller tuning (damping, deadband, slot selection).
    pub tuning: ControllerTuning,
    /// Which budget-to-frequency translation the policies use: the
    /// paper's naïve α model, or the online learned model (which itself
    /// falls back to naïve α until its fits are trustworthy).
    pub translation: TranslationKind,
    /// Decision memoization (fleet fast path). Defaults to exact replay
    /// (`epsilon = 0`), which is proven bit-identical to running the
    /// policy every interval.
    pub memo: MemoMode,
}

impl DaemonConfig {
    /// A configuration with the paper's defaults (1 s control loop,
    /// starving LP variant, no saturation awareness).
    pub fn new(policy: PolicyKind, power_limit: Watts, apps: Vec<AppSpec>) -> DaemonConfig {
        DaemonConfig {
            policy,
            power_limit,
            control_interval: Seconds(1.0),
            apps,
            floor_low_priority: false,
            saturation_aware: true,
            tuning: ControllerTuning::default(),
            translation: TranslationKind::Naive,
            memo: MemoMode::default(),
        }
    }

    /// Validate internal consistency against a core count. An empty app
    /// set is valid: it describes an idle node (all cores parked), which
    /// cluster admission relies on.
    pub fn validate(&self, num_cores: usize) -> Result<(), ConfigError> {
        if !self.power_limit.is_valid() || self.power_limit.value() <= 0.0 {
            return Err(ConfigError::InvalidPowerLimit {
                limit: self.power_limit,
            });
        }
        if self.control_interval.value() <= 0.0 {
            return Err(ConfigError::InvalidControlInterval {
                interval: self.control_interval,
            });
        }
        let mut seen = vec![false; num_cores];
        for app in &self.apps {
            if app.core >= num_cores {
                return Err(ConfigError::CoreOutOfRange {
                    app: app.name.clone(),
                    core: app.core,
                    num_cores,
                });
            }
            if seen[app.core] {
                return Err(ConfigError::DuplicateCorePin { core: app.core });
            }
            seen[app.core] = true;
            if app.shares == 0 {
                return Err(ConfigError::ZeroShares {
                    app: app.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Validate against a concrete platform: everything [`validate`]
    /// checks, plus that the power limit can actually be programmed into
    /// the platform's RAPL range when it has one.
    ///
    /// [`validate`]: DaemonConfig::validate
    pub fn validate_on(&self, platform: &PlatformSpec) -> Result<(), ConfigError> {
        self.validate(platform.num_cores)?;
        if let Some(rapl) = &platform.rapl {
            let (lo, hi) = rapl.limit_range;
            if self.power_limit < lo || self.power_limit > hi {
                return Err(ConfigError::PowerLimitOutsideRaplRange {
                    limit: self.power_limit,
                    range: (lo, hi),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apps() -> Vec<AppSpec> {
        vec![
            AppSpec::new("a", 0).with_shares(90),
            AppSpec::new("b", 1)
                .with_priority(Priority::Low)
                .with_shares(10),
        ]
    }

    #[test]
    fn builder_chain() {
        let a = AppSpec::new("x", 3)
            .with_priority(Priority::Low)
            .with_shares(25)
            .with_baseline_ips(1e9);
        assert_eq!(a.core, 3);
        assert_eq!(a.priority, Priority::Low);
        assert_eq!(a.shares, 25);
        assert_eq!(a.baseline_ips, 1e9);
    }

    #[test]
    fn valid_config_passes() {
        let c = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(50.0), apps());
        assert!(c.validate(10).is_ok());
        assert_eq!(c.control_interval, Seconds(1.0));
    }

    #[test]
    fn empty_app_set_is_an_idle_node() {
        let c = DaemonConfig::new(PolicyKind::Priority, Watts(50.0), vec![]);
        assert!(c.validate(10).is_ok(), "empty config = all cores parked");
    }

    #[test]
    fn rejects_bad_configs() {
        let mut a = apps();
        a[1].core = 0; // duplicate pin
        let c = DaemonConfig::new(PolicyKind::Priority, Watts(50.0), a);
        assert_eq!(
            c.validate(10),
            Err(ConfigError::DuplicateCorePin { core: 0 })
        );

        let mut a = apps();
        a[0].core = 99;
        let c = DaemonConfig::new(PolicyKind::Priority, Watts(50.0), a);
        assert_eq!(
            c.validate(10),
            Err(ConfigError::CoreOutOfRange {
                app: "a".into(),
                core: 99,
                num_cores: 10
            })
        );

        let mut a = apps();
        a[0].shares = 0;
        let c = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(50.0), a);
        assert_eq!(
            c.validate(10),
            Err(ConfigError::ZeroShares { app: "a".into() })
        );

        let c = DaemonConfig::new(PolicyKind::Priority, Watts(-5.0), apps());
        assert_eq!(
            c.validate(10),
            Err(ConfigError::InvalidPowerLimit { limit: Watts(-5.0) })
        );

        let mut c = DaemonConfig::new(PolicyKind::Priority, Watts(50.0), apps());
        c.control_interval = Seconds(0.0);
        assert!(matches!(
            c.validate(10),
            Err(ConfigError::InvalidControlInterval { .. })
        ));

        let mut c = DaemonConfig::new(PolicyKind::Priority, Watts(50.0), apps());
        c.control_interval = Seconds(-1.0);
        assert!(matches!(
            c.validate(10),
            Err(ConfigError::InvalidControlInterval { .. })
        ));
    }

    #[test]
    fn rejects_non_finite_power_limits() {
        // A NaN or infinite limit must be caught here, not propagate into
        // the controller arithmetic (NaN poisons every budget it touches).
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0] {
            let c = DaemonConfig::new(PolicyKind::Priority, Watts(bad), apps());
            match c.validate(10) {
                // NaN != NaN, so match structurally instead of assert_eq.
                Err(ConfigError::InvalidPowerLimit { limit }) => {
                    assert!(limit.value().is_nan() || limit == Watts(bad));
                }
                other => panic!("limit {bad} must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn config_error_messages_name_the_offender() {
        // Every variant's Display output carries enough context to act on
        // without a debugger: the app, the core, the limit, the range.
        let cases: Vec<(ConfigError, &[&str])> = vec![
            (
                ConfigError::InvalidPowerLimit { limit: Watts(-5.0) },
                &["invalid power limit", "-5"],
            ),
            (
                ConfigError::PowerLimitOutsideRaplRange {
                    limit: Watts(10.0),
                    range: (Watts(20.0), Watts(85.0)),
                },
                &["RAPL range", "10", "20", "85"],
            ),
            (
                ConfigError::InvalidControlInterval {
                    interval: Seconds(0.0),
                },
                &["control interval", "positive"],
            ),
            (
                ConfigError::CoreOutOfRange {
                    app: "web".into(),
                    core: 9,
                    num_cores: 4,
                },
                &["'web'", "core 9", "4-core"],
            ),
            (
                ConfigError::DuplicateCorePin { core: 2 },
                &["core 2", "multiple apps"],
            ),
            (
                ConfigError::ZeroShares { app: "bg".into() },
                &["'bg'", "zero shares"],
            ),
        ];
        for (err, needles) in cases {
            let msg = err.to_string();
            for needle in needles {
                assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
            }
        }
    }

    #[test]
    fn validate_on_enforces_rapl_range() {
        // Skylake RAPL range is [20, 85] W.
        let sky = PlatformSpec::skylake();
        let c = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(50.0), apps());
        assert!(c.validate_on(&sky).is_ok());

        let c = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(10.0), apps());
        match c.validate_on(&sky) {
            Err(ConfigError::PowerLimitOutsideRaplRange { limit, range }) => {
                assert_eq!(limit, Watts(10.0));
                assert_eq!(range, (Watts(20.0), Watts(85.0)));
            }
            other => panic!("expected RAPL range rejection, got {other:?}"),
        }

        let c = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(200.0), apps());
        assert!(matches!(
            c.validate_on(&sky),
            Err(ConfigError::PowerLimitOutsideRaplRange { .. })
        ));

        // Ryzen has no RAPL; any positive limit is programmable.
        let c = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(10.0), apps());
        assert!(c.validate_on(&PlatformSpec::ryzen()).is_ok());
    }

    #[test]
    fn policy_capability_requirements() {
        assert!(PolicyKind::PowerShares.needs_per_core_power());
        assert!(!PolicyKind::FrequencyShares.needs_per_core_power());
        assert!(PolicyKind::PerformanceShares.needs_performance_feedback());
        assert!(!PolicyKind::Priority.needs_performance_feedback());
        assert_eq!(PolicyKind::RaplNative.name(), "rapl");
    }
}
