//! Experiment runner: wires a simulated chip, workloads, telemetry and the
//! daemon into a complete run and reduces the trace to per-application
//! results.
//!
//! Two runners cover the paper's two experiment shapes:
//!
//! * [`Experiment`] — batch workloads pinned one per core (the SPEC-style
//!   priority, share and random experiments);
//! * [`LatencyExperiment`] — a closed-loop service spanning several cores,
//!   optionally co-located with a power virus (the websearch experiments).

use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::sampler::Sampler;
use pap_telemetry::trace::Trace;
use pap_workloads::engine::RunningApp;
use pap_workloads::latency::{ClosedLoopService, ServiceConfig};
use pap_workloads::phases::PhasedProfile;
use pap_workloads::profile::WorkloadProfile;

use pap_model::{ModelSnapshot, TranslationKind};

use std::sync::Arc;

use pap_telemetry::metrics::ControlMetrics;

use crate::config::{AppSpec, ControllerTuning, DaemonConfig, PolicyKind, Priority};
use crate::daemon::{ControlAction, Daemon};
use crate::obs::DecisionTrace;

/// The standalone frequency the paper normalizes against: the app running
/// alone at 85 W, i.e. at its single-active-core opportunistic limit
/// (respecting AVX caps).
pub fn standalone_freq(platform: &PlatformSpec, profile: &WorkloadProfile) -> KiloHertz {
    platform.turbo.cap_for(1, profile.avx)
}

/// Per-application outcome of a batch experiment.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Application name.
    pub name: String,
    /// Pinned core.
    pub core: usize,
    /// Mean active frequency over the measurement window (MHz), counting
    /// only awake samples.
    pub mean_freq_mhz: f64,
    /// Mean IPS over the window (parked intervals count as zero).
    pub mean_ips: f64,
    /// Mean per-core power, where the platform provides it.
    pub mean_power: Option<Watts>,
    /// Performance normalized to standalone execution at 85 W.
    pub norm_perf: f64,
    /// Fraction of samples during which the app was starved (no cycles).
    pub starved_fraction: f64,
}

/// Outcome of a batch experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Per-app outcomes, in configuration order.
    pub apps: Vec<AppResult>,
    /// Mean package power over the measurement window.
    pub mean_package_power: Watts,
    /// The full telemetry trace (warm-up already trimmed).
    pub trace: Trace,
    /// Final state of the daemon's online learned model (fed regardless
    /// of which translation the run selected).
    pub model: ModelSnapshot,
    /// Per-interval decision trace with aggregated control metrics —
    /// `Some` only when the experiment was built with
    /// [`observe(true)`](Experiment::observe).
    pub decisions: Option<DecisionTrace>,
}

struct Entry {
    spec: AppSpec,
    profile: WorkloadProfile,
}

/// Builder for batch experiments (one app per core).
pub struct Experiment {
    platform: PlatformSpec,
    policy: PolicyKind,
    limit: Watts,
    duration: Seconds,
    tick: Seconds,
    warmup_samples: usize,
    floor_low_priority: bool,
    saturation_aware: bool,
    control_interval: Seconds,
    tuning: ControllerTuning,
    translation: TranslationKind,
    phase_amplitude: f64,
    seed: u64,
    observe: bool,
    entries: Vec<Entry>,
}

/// Default phase seed, kept for reproducibility with historical runs.
const DEFAULT_PHASE_SEED: u64 = 0xC0FFEE;

impl Experiment {
    /// Start building an experiment.
    pub fn new(platform: PlatformSpec, policy: PolicyKind, limit: Watts) -> Experiment {
        Experiment {
            platform,
            policy,
            limit,
            duration: Seconds(90.0),
            tick: Seconds(0.002),
            warmup_samples: 15,
            floor_low_priority: false,
            saturation_aware: true,
            control_interval: Seconds(1.0),
            tuning: ControllerTuning::default(),
            translation: TranslationKind::Naive,
            phase_amplitude: 0.1,
            seed: DEFAULT_PHASE_SEED,
            observe: false,
            entries: Vec::new(),
        }
    }

    /// Add an application on the next free core. Workloads loop for the
    /// whole run (steady-state measurement, as in the paper's share
    /// experiments).
    pub fn app(
        mut self,
        name: impl Into<String>,
        profile: WorkloadProfile,
        priority: Priority,
        shares: u32,
    ) -> Experiment {
        let core = self.entries.len();
        let baseline = profile.ips(standalone_freq(&self.platform, &profile));
        self.entries.push(Entry {
            spec: AppSpec::new(name, core)
                .with_priority(priority)
                .with_shares(shares)
                .with_baseline_ips(baseline),
            profile,
        });
        self
    }

    /// Set the measured duration (excluding warm-up trimming).
    pub fn duration(mut self, d: Seconds) -> Experiment {
        self.duration = d;
        self
    }

    /// Set the simulation tick.
    pub fn tick(mut self, t: Seconds) -> Experiment {
        self.tick = t;
        self
    }

    /// Number of 1 s samples discarded as warm-up.
    pub fn warmup(mut self, samples: usize) -> Experiment {
        self.warmup_samples = samples;
        self
    }

    /// Use the flooring priority variant (§4.1 alternative).
    pub fn floor_low_priority(mut self, on: bool) -> Experiment {
        self.floor_low_priority = on;
        self
    }

    /// Enable/disable saturation-aware allocation (§4.4 extension; on by
    /// default).
    pub fn saturation_aware(mut self, on: bool) -> Experiment {
        self.saturation_aware = on;
        self
    }

    /// Override the daemon control interval (the paper uses 1 s).
    pub fn control_interval(mut self, i: Seconds) -> Experiment {
        self.control_interval = i;
        self
    }

    /// Override the controller tuning (ablation studies).
    pub fn tuning(mut self, t: ControllerTuning) -> Experiment {
        self.tuning = t;
        self
    }

    /// Select the budget-to-frequency translation (naïve α by default).
    pub fn translation(mut self, kind: TranslationKind) -> Experiment {
        self.translation = kind;
        self
    }

    /// Program-phase amplitude applied to every workload (±fractional
    /// swing of CPI/stall/capacitance, deterministic per app). Defaults to
    /// 0.1 — the mild wobble real SPEC benchmarks exhibit, which is what
    /// destabilizes IPS-based control in the paper's Figure 10. Pass 0.0
    /// for perfectly steady workloads.
    pub fn phases(mut self, amplitude: f64) -> Experiment {
        assert!((0.0..1.0).contains(&amplitude));
        self.phase_amplitude = amplitude;
        self
    }

    /// Seed for the per-app phase generators (each app derives its own
    /// stream from this). Two runs with the same seed and configuration
    /// are identical; the default reproduces historical runs.
    pub fn seed(mut self, seed: u64) -> Experiment {
        self.seed = seed;
        self
    }

    /// Record a per-interval [`DecisionTrace`] (with aggregated
    /// [`ControlMetrics`]) during the run. Off by default; when off the
    /// daemon takes no timestamps and the control output is bit-identical
    /// to a run without observability compiled in at all.
    pub fn observe(mut self, on: bool) -> Experiment {
        self.observe = on;
        self
    }

    /// Run to completion.
    pub fn run(self) -> Result<ExperimentResult, String> {
        let mut config = DaemonConfig::new(
            self.policy,
            self.limit,
            self.entries.iter().map(|e| e.spec.clone()).collect(),
        );
        config.floor_low_priority = self.floor_low_priority;
        config.saturation_aware = self.saturation_aware;
        config.control_interval = self.control_interval;
        config.tuning = self.tuning;
        config.translation = self.translation;

        let mut chip = Chip::new(self.platform.clone());
        if self.policy == PolicyKind::RaplNative {
            chip.set_rapl_limit(Some(self.limit))
                .map_err(|e| e.to_string())?;
        }
        let mut daemon = Daemon::new(config, &self.platform)?;
        if self.observe {
            daemon.attach_observer(DecisionTrace::with_metrics(Arc::new(ControlMetrics::new())));
        }
        let mut apps: Vec<RunningApp> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                if self.phase_amplitude > 0.0 {
                    RunningApp::from_phased(
                        PhasedProfile::with_generated_phases(
                            e.profile,
                            self.seed ^ (i as u64) << 8,
                            self.phase_amplitude,
                        ),
                        true,
                    )
                } else {
                    RunningApp::looping(e.profile)
                }
            })
            .collect();

        let action = daemon.initial();
        apply(&mut chip, &action);
        let mut parked = action.parked.clone();

        let mut sampler = Sampler::new(&chip);
        let mut trace = Trace::new();
        let interval = daemon.config().control_interval;
        let total = Seconds(self.duration.value() + self.warmup_samples as f64 * interval.value());

        let mut t = 0.0;
        let mut next_control = interval.value();
        while t < total.value() {
            for (i, app) in apps.iter_mut().enumerate() {
                let core = self.entries[i].spec.core;
                if parked[core] {
                    continue;
                }
                let f = chip.effective_freq(core);
                let out = app.advance(self.tick, f);
                chip.set_load(core, out.load).map_err(|e| e.to_string())?;
                chip.add_instructions(core, out.instructions)
                    .map_err(|e| e.to_string())?;
            }
            chip.tick(self.tick);
            t += self.tick.value();

            if t + 1e-9 >= next_control {
                next_control += interval.value();
                if let Some(sample) = sampler.sample(&chip) {
                    let action = daemon.step(&sample);
                    apply(&mut chip, &action);
                    parked = action.parked.clone();
                    trace.push(sample);
                }
            }
        }

        trace.trim_warmup(self.warmup_samples);
        let results = self
            .entries
            .iter()
            .map(|e| {
                let core = e.spec.core;
                let mean_ips = trace.mean_ips(core);
                let starved = trace
                    .samples()
                    .iter()
                    .filter(|s| s.cores[core].rates.ips <= 0.0)
                    .count() as f64
                    / trace.len().max(1) as f64;
                AppResult {
                    name: e.spec.name.clone(),
                    core,
                    mean_freq_mhz: trace.mean_active_freq_mhz(core),
                    mean_ips,
                    mean_power: trace.mean_core_power(core),
                    norm_perf: mean_ips / e.spec.baseline_ips,
                    starved_fraction: starved,
                }
            })
            .collect();

        Ok(ExperimentResult {
            apps: results,
            mean_package_power: trace.mean_package_power(),
            trace,
            model: daemon.model_snapshot(),
            decisions: daemon.take_observer(),
        })
    }
}

fn apply(chip: &mut Chip, action: &ControlAction) {
    chip.set_all_requested(&action.freqs)
        .expect("daemon emits grid/slot-valid frequencies");
    for (core, &p) in action.parked.iter().enumerate() {
        chip.set_forced_idle(core, p).expect("core in range");
    }
}

/// Outcome of a latency experiment.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// 90th percentile latency (ms) over the measurement window.
    pub p90_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_ms: f64,
    /// Completed requests per second.
    pub throughput: f64,
    /// Mean package power.
    pub mean_package_power: Watts,
    /// Mean active frequency of the service cores (MHz).
    pub service_freq_mhz: f64,
    /// Mean active frequency of the co-located core (MHz), if present.
    pub colocated_freq_mhz: Option<f64>,
    /// The post-warmup telemetry trace.
    pub trace: Trace,
}

/// Builder for the websearch-style latency experiments (§3.2, §6.4).
pub struct LatencyExperiment {
    platform: PlatformSpec,
    policy: PolicyKind,
    limit: Watts,
    service: ServiceConfig,
    service_cores: usize,
    colocated: Option<WorkloadProfile>,
    service_shares: u32,
    colocated_shares: u32,
    duration: Seconds,
    warmup: Seconds,
    tick: Seconds,
    tuning: ControllerTuning,
    control_interval: Seconds,
}

impl LatencyExperiment {
    /// The paper's setup: websearch on all but one core, with the given
    /// policy and limit.
    pub fn new(platform: PlatformSpec, policy: PolicyKind, limit: Watts) -> LatencyExperiment {
        let service_cores = platform.num_cores - 1;
        LatencyExperiment {
            platform,
            policy,
            limit,
            service: ServiceConfig::websearch(),
            service_cores,
            colocated: None,
            service_shares: 90,
            colocated_shares: 10,
            duration: Seconds(120.0),
            warmup: Seconds(20.0),
            tick: Seconds(0.001),
            tuning: ControllerTuning::default(),
            control_interval: Seconds(1.0),
        }
    }

    /// Co-locate a workload (cpuburn in the paper) on the last core.
    pub fn colocate(mut self, profile: WorkloadProfile) -> LatencyExperiment {
        self.colocated = Some(profile);
        self
    }

    /// Share ratio between each service core and the co-located core
    /// (the paper reports 90/10).
    pub fn shares(mut self, service: u32, colocated: u32) -> LatencyExperiment {
        self.service_shares = service;
        self.colocated_shares = colocated;
        self
    }

    /// Service configuration (users, think time, demand).
    pub fn service(mut self, cfg: ServiceConfig) -> LatencyExperiment {
        self.service = cfg;
        self
    }

    /// Measured duration after warm-up.
    pub fn duration(mut self, d: Seconds) -> LatencyExperiment {
        self.duration = d;
        self
    }

    /// Warm-up period whose latencies are discarded.
    pub fn warmup(mut self, w: Seconds) -> LatencyExperiment {
        self.warmup = w;
        self
    }

    /// Override the controller tuning (ablation studies).
    pub fn tuning(mut self, t: ControllerTuning) -> LatencyExperiment {
        self.tuning = t;
        self
    }

    /// Override the daemon control interval (the paper uses 1 s).
    pub fn control_interval(mut self, i: Seconds) -> LatencyExperiment {
        self.control_interval = i;
        self
    }

    /// Run to completion.
    pub fn run(self) -> Result<LatencyResult, String> {
        let n = self.service_cores;
        let service_baseline = {
            // one "instruction" = one cycle of service demand
            standalone_freq(&self.platform, &pap_workloads::burn::CPUBURN).hz()
        };
        let mut apps: Vec<AppSpec> = (0..n)
            .map(|c| {
                AppSpec::new(format!("websearch/{c}"), c)
                    .with_priority(Priority::High)
                    .with_shares(self.service_shares)
                    .with_baseline_ips(service_baseline)
            })
            .collect();
        if let Some(profile) = &self.colocated {
            let core = self.platform.num_cores - 1;
            apps.push(
                AppSpec::new(profile.name, core)
                    .with_priority(Priority::Low)
                    .with_shares(self.colocated_shares)
                    .with_baseline_ips(profile.ips(standalone_freq(&self.platform, profile))),
            );
        }
        let mut config = DaemonConfig::new(self.policy, self.limit, apps);
        config.tuning = self.tuning;
        config.control_interval = self.control_interval;

        let mut chip = Chip::new(self.platform.clone());
        if self.policy == PolicyKind::RaplNative {
            chip.set_rapl_limit(Some(self.limit))
                .map_err(|e| e.to_string())?;
        }
        let mut daemon = Daemon::new(config, &self.platform)?;
        let mut service = ClosedLoopService::new(self.service.clone(), n);
        let mut burn = self.colocated.map(RunningApp::looping);
        let burn_core = self.platform.num_cores - 1;

        let action = daemon.initial();
        apply(&mut chip, &action);
        let mut parked = action.parked.clone();

        let mut sampler = Sampler::new(&chip);
        let mut trace = Trace::new();
        let interval = daemon.config().control_interval.value();
        let total = self.warmup.value() + self.duration.value();
        let mut t = 0.0;
        let mut next_control = interval;
        let mut stats_reset = false;

        while t < total {
            // Service cores: only unparked cores serve.
            let freqs: Vec<KiloHertz> = (0..n)
                .map(|c| {
                    if parked[c] {
                        KiloHertz(1) // effectively no service capacity
                    } else {
                        chip.effective_freq(c)
                    }
                })
                .collect();
            let loads = service.advance(self.tick, &freqs);
            for (c, load) in loads.into_iter().enumerate() {
                if parked[c] {
                    continue;
                }
                // Credit one instruction per busy cycle so IPS-based
                // policies see the service's activity.
                let instr = (load.utilization * freqs[c].hz() * self.tick.value()) as u64;
                chip.set_load(c, load).map_err(|e| e.to_string())?;
                chip.add_instructions(c, instr).map_err(|e| e.to_string())?;
            }
            if let Some(b) = burn.as_mut() {
                if !parked[burn_core] {
                    let f = chip.effective_freq(burn_core);
                    let out = b.advance(self.tick, f);
                    chip.set_load(burn_core, out.load)
                        .map_err(|e| e.to_string())?;
                    chip.add_instructions(burn_core, out.instructions)
                        .map_err(|e| e.to_string())?;
                }
            }
            chip.tick(self.tick);
            t += self.tick.value();

            if !stats_reset && t >= self.warmup.value() {
                service.reset_stats();
                stats_reset = true;
            }
            if t + 1e-9 >= next_control {
                next_control += interval;
                if let Some(sample) = sampler.sample(&chip) {
                    let action = daemon.step(&sample);
                    apply(&mut chip, &action);
                    parked = action.parked.clone();
                    if stats_reset {
                        trace.push(sample);
                    }
                }
            }
        }

        let service_freq = (0..n).map(|c| trace.mean_active_freq_mhz(c)).sum::<f64>() / n as f64;
        Ok(LatencyResult {
            p90_ms: service.p90_ms(),
            p50_ms: service.percentile_ms(50.0),
            p99_ms: service.percentile_ms(99.0),
            throughput: service.throughput(),
            mean_package_power: trace.mean_package_power(),
            service_freq_mhz: service_freq,
            colocated_freq_mhz: self
                .colocated
                .as_ref()
                .map(|_| trace.mean_active_freq_mhz(burn_core)),
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_workloads::spec;

    #[test]
    fn standalone_freq_respects_avx() {
        let p = PlatformSpec::skylake();
        assert_eq!(standalone_freq(&p, &spec::GCC), KiloHertz::from_mhz(3000));
        assert_eq!(standalone_freq(&p, &spec::CAM4), KiloHertz::from_mhz(1900));
    }

    #[test]
    fn rapl_experiment_respects_limit() {
        let r = Experiment::new(PlatformSpec::skylake(), PolicyKind::RaplNative, Watts(50.0))
            .app("gcc-0", spec::GCC, Priority::High, 100)
            .app("gcc-1", spec::GCC, Priority::High, 100)
            .app("cam4-0", spec::CAM4, Priority::High, 100)
            .app("cam4-1", spec::CAM4, Priority::High, 100)
            .duration(Seconds(30.0))
            .warmup(5)
            .run()
            .unwrap();
        assert!(
            (r.mean_package_power.value() - 50.0).abs() < 5.0
                || r.mean_package_power.value() < 50.0,
            "package power {} should be at/below the 50 W limit",
            r.mean_package_power
        );
        for app in &r.apps {
            assert!(app.norm_perf > 0.0 && app.norm_perf <= 1.2, "{app:?}");
        }
    }

    #[test]
    fn frequency_shares_converges_to_limit() {
        let r = Experiment::new(
            PlatformSpec::skylake(),
            PolicyKind::FrequencyShares,
            Watts(45.0),
        )
        .app("cactus", spec::CACTUS_BSSN, Priority::High, 70)
        .app("leela", spec::LEELA, Priority::High, 30)
        .app("cactus2", spec::CACTUS_BSSN, Priority::High, 70)
        .app("leela2", spec::LEELA, Priority::High, 30)
        .duration(Seconds(40.0))
        .warmup(10)
        .run()
        .unwrap();
        assert!(
            (r.mean_package_power.value() - 45.0).abs() < 3.0,
            "power {} should track the 45 W limit",
            r.mean_package_power
        );
        // share proportionality: 70-share apps run faster than 30-share
        assert!(
            r.apps[0].mean_freq_mhz > r.apps[1].mean_freq_mhz + 100.0,
            "{} vs {}",
            r.apps[0].mean_freq_mhz,
            r.apps[1].mean_freq_mhz
        );
    }

    #[test]
    fn priority_starves_lp_under_tight_limit() {
        let mut e = Experiment::new(PlatformSpec::skylake(), PolicyKind::Priority, Watts(40.0));
        for i in 0..5 {
            e = e.app(format!("hp{i}"), spec::CACTUS_BSSN, Priority::High, 100);
        }
        for i in 0..5 {
            e = e.app(format!("lp{i}"), spec::LEELA, Priority::Low, 100);
        }
        let r = e.duration(Seconds(40.0)).warmup(10).run().unwrap();
        let hp_perf = r.apps[0].norm_perf;
        let lp_perf = r.apps[5].norm_perf;
        assert!(hp_perf > 0.3, "HP perf {hp_perf}");
        assert!(
            lp_perf < hp_perf * 0.5,
            "LP ({lp_perf}) must be starved or heavily throttled vs HP ({hp_perf})"
        );
    }

    #[test]
    fn seeded_runs_reproduce_and_differ_across_seeds() {
        let run = |seed: u64| {
            Experiment::new(
                PlatformSpec::skylake(),
                PolicyKind::FrequencyShares,
                Watts(45.0),
            )
            .app("cactus", spec::CACTUS_BSSN, Priority::High, 70)
            .app("leela", spec::LEELA, Priority::High, 30)
            .duration(Seconds(10.0))
            .warmup(2)
            .seed(seed)
            .run()
            .unwrap()
        };
        let (a, b, c) = (run(7), run(7), run(8));
        assert_eq!(
            a.mean_package_power, b.mean_package_power,
            "same seed, same run"
        );
        assert_eq!(a.apps[0].mean_ips, b.apps[0].mean_ips);
        assert_ne!(
            a.apps[0].mean_ips, c.apps[0].mean_ips,
            "different seed shifts the phase streams"
        );
    }

    #[test]
    fn latency_experiment_runs() {
        let r = LatencyExperiment::new(
            PlatformSpec::skylake(),
            PolicyKind::FrequencyShares,
            Watts(50.0),
        )
        .colocate(pap_workloads::burn::CPUBURN)
        .duration(Seconds(30.0))
        .warmup(Seconds(10.0))
        .run()
        .unwrap();
        assert!(r.p90_ms > 0.0 && r.p90_ms < 1000.0, "p90 {}", r.p90_ms);
        assert!(r.throughput > 100.0, "throughput {}", r.throughput);
        assert!(r.colocated_freq_mhz.is_some());
    }
}
