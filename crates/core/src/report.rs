//! Plain-text table rendering for experiment reports.
//!
//! Every figure/table binary in the benchmark harness prints its series
//! through [`Table`], so the regenerated "figures" are aligned text tables
//! with the same rows/series the paper plots.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format a float with 3 significant decimals for table cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Render a learned-model snapshot ([`Daemon::model_snapshot`]) as a
/// report table: the package power curve, per-core curves and per-app
/// scalability fits with their confidence state and drift-reset counts.
///
/// [`Daemon::model_snapshot`]: crate::daemon::Daemon::model_snapshot
pub fn model_table(snap: &pap_model::ModelSnapshot) -> Table {
    let rms = snap
        .prediction_rms_watts
        .map(|w| format!("{w:.2} W"))
        .unwrap_or_else(|| "n/a".into());
    let mut t = Table::new(
        format!(
            "learned model: {} queries, {:.0}% fallback, prediction rms {}",
            snap.queries,
            snap.fallback_fraction() * 100.0,
            rms
        ),
        &["fit", "obs", "residual_rms", "confident", "resets"],
    );
    let flag = |b: bool| if b { "yes" } else { "no" }.to_string();
    t.row(vec![
        "package".into(),
        snap.package.observations.to_string(),
        f3(snap.package.residual_rms_watts),
        flag(snap.package.confident),
        snap.package.resets.to_string(),
    ]);
    for (core, fit) in &snap.cores {
        t.row(vec![
            format!("core{core}"),
            fit.observations.to_string(),
            f3(fit.residual_rms_watts),
            flag(fit.confident),
            fit.resets.to_string(),
        ]);
    }
    for app in &snap.apps {
        t.row(vec![
            format!("app@core{}", app.core),
            app.fit.observations.to_string(),
            f3(app.fit.residual_rms),
            flag(app.fit.confident),
            app.fit.resets.to_string(),
        ]);
    }
    t
}

/// Format a float with 1 decimal for table cells.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            writeln!(f, "{}", line.join("  "))
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), f3(1.23456)]);
        t.row(vec!["longer".into(), f1(42.0)]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("1.235"));
        assert!(s.contains("42.0"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
