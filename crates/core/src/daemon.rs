//! The userspace control daemon (§5).
//!
//! The daemon runs a monitoring loop at a fixed cadence (1 s in the
//! paper). Each interval it reads processor statistics — package power,
//! per-core power where available, retired instructions, actual
//! frequency — and may change P-states for a subset of cores: raising
//! frequency where an application uses less of its resource than
//! allocated, or redistributing the resource otherwise.
//!
//! [`Daemon`] is a pure controller: it consumes a telemetry
//! [`Sample`](pap_telemetry::sampler::Sample) and emits a
//! [`ControlAction`]; the experiment runner (or a hardware backend)
//! applies the action. This keeps every policy testable without a chip.

use pap_model::{
    ModelConfig, ModelSnapshot, NaiveAlpha, OnlineModel, TranslationKind, TranslationModel,
};
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_telemetry::energy::EnergyLedger;
use pap_telemetry::sampler::Sample;

use crate::config::{AppSpec, ConfigError, DaemonConfig, MemoMode, PolicyKind, Priority};
use crate::memo::{DecisionMemo, MemoStats};
use crate::obs::{AppDecision, DecisionEvent, DecisionRecord, DecisionTrace};
use crate::policy::fastcap::FastCapAlloc;
use crate::policy::frequency_shares::FrequencyShares;
use crate::policy::performance_shares::PerformanceShares;
use crate::policy::power_shares::PowerShares;
use crate::policy::priority::PriorityPolicy;
use crate::policy::{
    useful_max, AppView, Policy, PolicyCtx, PolicyInput, PolicyOutput, PolicyScratch,
};
use crate::quantize::SlotScratch;
use pap_simcpu::units::{Seconds, Watts};

/// Why a daemon could not be built or reconfigured. Wraps
/// [`ConfigError`] for static config problems and adds the
/// platform-capability and runtime-reconfiguration failures.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonError {
    /// The configuration itself is invalid.
    Config(ConfigError),
    /// The policy needs per-core power telemetry the platform lacks.
    NeedsPerCorePower {
        /// Policy short name.
        policy: &'static str,
        /// Platform name.
        platform: &'static str,
    },
    /// The RAPL-native baseline needs hardware RAPL enforcement.
    NeedsRapl {
        /// Platform name.
        platform: &'static str,
    },
    /// Performance shares need an offline IPS baseline for every app.
    MissingBaseline {
        /// The app without a baseline.
        app: String,
    },
    /// A reconfiguration referenced an app the daemon does not run.
    UnknownApp {
        /// The requested app name.
        app: String,
    },
    /// A telemetry sample carried fewer cores than an app's pin
    /// (malformed telemetry, fault injection, cluster replay).
    ShortSample {
        /// Minimum core count the configured app set needs.
        expected: usize,
        /// Core count the sample actually carried.
        got: usize,
    },
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Config(e) => e.fmt(f),
            DaemonError::NeedsPerCorePower { policy, platform } => write!(
                f,
                "policy '{policy}' requires per-core power telemetry, which {platform} does not provide"
            ),
            DaemonError::NeedsRapl { platform } => {
                write!(f, "{platform} does not implement RAPL limit enforcement")
            }
            DaemonError::MissingBaseline { app } => write!(
                f,
                "performance shares need an offline IPS baseline for app '{app}'"
            ),
            DaemonError::UnknownApp { app } => write!(f, "no app named '{app}' under control"),
            DaemonError::ShortSample { expected, got } => write!(
                f,
                "telemetry sample carries {got} cores but the app set needs at least {expected}"
            ),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for DaemonError {
    fn from(e: ConfigError) -> DaemonError {
        DaemonError::Config(e)
    }
}

impl From<DaemonError> for String {
    fn from(e: DaemonError) -> String {
        e.to_string()
    }
}

/// A complete per-core decision for one control interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlAction {
    /// Requested frequency for every core (length = chip core count).
    pub freqs: Vec<KiloHertz>,
    /// Park flag for every core.
    pub parked: Vec<bool>,
}

impl ControlAction {
    /// Borrowed view of this action.
    pub fn view(&self) -> ActionView<'_> {
        ActionView {
            freqs: &self.freqs,
            parked: &self.parked,
        }
    }
}

/// Borrowed view of one control interval's decision, pointing into the
/// daemon's reusable scratch buffers (DESIGN.md §11). This is what the
/// allocation-free hot path ([`Daemon::step_view`]) hands out; sinks
/// that need to retain the decision past the next step call
/// [`ActionView::to_owned`] — that copy is the *only* per-interval
/// allocation, and it is the caller's explicit choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionView<'a> {
    /// Requested frequency for every core (length = chip core count).
    pub freqs: &'a [KiloHertz],
    /// Park flag for every core.
    pub parked: &'a [bool],
}

impl ActionView<'_> {
    /// Copy the borrowed decision into an owned [`ControlAction`].
    pub fn to_owned(&self) -> ControlAction {
        ControlAction {
            freqs: self.freqs.to_vec(),
            parked: self.parked.to_vec(),
        }
    }
}

/// Reusable per-interval buffers owned by the daemon: app views, the
/// policy output, policy/quantizer scratch, and the per-core action.
/// Pre-sized at construction so the steady-state control step performs
/// zero heap allocations.
#[derive(Debug)]
struct StepScratch {
    views: Vec<AppView>,
    out: PolicyOutput,
    policy: PolicyScratch,
    slots: SlotScratch,
    action_freqs: Vec<KiloHertz>,
    action_parked: Vec<bool>,
}

impl StepScratch {
    fn new(napps: usize, ncores: usize, slots: Option<usize>) -> StepScratch {
        StepScratch {
            views: Vec::with_capacity(napps),
            out: PolicyOutput {
                freqs: Vec::with_capacity(napps),
                parked: Vec::with_capacity(napps),
            },
            policy: PolicyScratch::with_capacity(napps),
            slots: SlotScratch::with_capacity(ncores, slots.unwrap_or(0)),
            action_freqs: Vec::with_capacity(ncores),
            action_parked: Vec::with_capacity(ncores),
        }
    }
}

#[derive(Debug)]
enum Engine {
    RaplNative,
    Priority(PriorityPolicy),
    Power(PowerShares),
    Freq(FrequencyShares),
    Perf(PerformanceShares),
    FastCap(FastCapAlloc),
}

impl Engine {
    fn as_policy(&mut self) -> Option<&mut dyn Policy> {
        match self {
            Engine::RaplNative => None,
            Engine::Priority(p) => Some(p),
            Engine::Power(p) => Some(p),
            Engine::Freq(p) => Some(p),
            Engine::Perf(p) => Some(p),
            Engine::FastCap(p) => Some(p),
        }
    }

    /// Non-mutating [`Policy::memo_state`] dispatch for fingerprinting.
    fn memo_state(&self, fp: &mut Vec<u64>) {
        match self {
            Engine::RaplNative => {}
            Engine::Priority(p) => p.memo_state(fp),
            Engine::Power(p) => p.memo_state(fp),
            Engine::Freq(p) => p.memo_state(fp),
            Engine::Perf(p) => p.memo_state(fp),
            Engine::FastCap(p) => p.memo_state(fp),
        }
    }
}

/// The control daemon.
#[derive(Debug)]
pub struct Daemon {
    config: DaemonConfig,
    ctx: PolicyCtx,
    engine: Engine,
    platform: PlatformSpec,
    num_cores: usize,
    shared_slots: Option<usize>,
    initialized: bool,
    /// Last programmed per-app frequency targets (policy state input).
    current: Vec<KiloHertz>,
    /// Last programmed per-app park flags, so a degraded hold on a
    /// malformed sample re-emits the full previous operating point.
    current_parked: Vec<bool>,
    /// Online power/performance model. Always fed from telemetry (so a
    /// mid-run switch to [`TranslationKind::Online`] starts from warm
    /// fits); only consulted for translation when the config selects it.
    model: OnlineModel,
    /// Decision-trace observer. `None` (the default) keeps observability
    /// strictly off-path: no record building, no timing.
    observer: Option<DecisionTrace>,
    /// Events raised between control intervals (share retargets, churn)
    /// to be attached to the next record. Only populated while an
    /// observer is attached.
    pending_events: Vec<DecisionEvent>,
    /// Per-app energy/cost accounting. `None` (the default) keeps
    /// accounting strictly off-path, like the observer: attaching a
    /// ledger must not change a single control decision.
    energy: Option<EnergyLedger>,
    /// Ledger account per configured app, in config order; rebuilt
    /// lazily after membership changes. Steady state performs no
    /// allocation (account lookup is by stored index).
    energy_idx: Vec<usize>,
    /// Reusable per-interval buffers (DESIGN.md §11).
    scratch: StepScratch,
    /// Decision memoization (DESIGN.md §16). `None` when
    /// [`MemoMode::Off`]; exact replay by default.
    memo: Option<DecisionMemo>,
}

/// Platform-capability checks shared by construction and runtime
/// reconfiguration.
fn check_capabilities(config: &DaemonConfig, platform: &PlatformSpec) -> Result<(), DaemonError> {
    config.validate_on(platform)?;
    if config.policy.needs_per_core_power() && !platform.per_core_power {
        return Err(DaemonError::NeedsPerCorePower {
            policy: config.policy.name(),
            platform: platform.name,
        });
    }
    if config.policy.needs_performance_feedback() {
        for app in &config.apps {
            if app.baseline_ips <= 0.0 {
                return Err(DaemonError::MissingBaseline {
                    app: app.name.clone(),
                });
            }
        }
    }
    if config.policy == PolicyKind::RaplNative && platform.rapl.is_none() {
        return Err(DaemonError::NeedsRapl {
            platform: platform.name,
        });
    }
    Ok(())
}

impl Daemon {
    /// Build a daemon for `config` against a platform. Fails when the
    /// policy needs telemetry the platform does not provide (the paper
    /// runs power shares only on Ryzen for exactly this reason) or the
    /// config is inconsistent.
    pub fn new(config: DaemonConfig, platform: &PlatformSpec) -> Result<Daemon, DaemonError> {
        check_capabilities(&config, platform)?;

        let engine = match config.policy {
            PolicyKind::RaplNative => Engine::RaplNative,
            PolicyKind::Priority => {
                let mut p = if config.floor_low_priority {
                    PriorityPolicy::flooring()
                } else {
                    PriorityPolicy::new()
                };
                p.floor_low_priority = config.floor_low_priority;
                Engine::Priority(p)
            }
            PolicyKind::PowerShares => Engine::Power(PowerShares::new()),
            PolicyKind::FrequencyShares => {
                let mut p = FrequencyShares::new();
                p.saturation_aware = config.saturation_aware;
                p.incremental = config.tuning.incremental_redistribution;
                Engine::Freq(p)
            }
            PolicyKind::PerformanceShares => Engine::Perf(PerformanceShares::new()),
            PolicyKind::FastCap => Engine::FastCap(FastCapAlloc::new()),
        };

        let mut ctx = PolicyCtx::new(platform.grid, platform.tdp, config.power_limit);
        ctx.damping = config.tuning.damping;
        ctx.deadband = Watts(config.tuning.deadband_watts);
        let n_apps = config.apps.len();
        let memo = match config.memo {
            MemoMode::Off => None,
            MemoMode::Replay { epsilon } => Some(DecisionMemo::new(epsilon)),
        };
        Ok(Daemon {
            config,
            ctx,
            engine,
            platform: platform.clone(),
            num_cores: platform.num_cores,
            shared_slots: platform.shared_pstate_slots,
            initialized: false,
            current: vec![KiloHertz::ZERO; n_apps],
            current_parked: vec![false; n_apps],
            model: OnlineModel::new(ModelConfig::default()),
            observer: None,
            pending_events: Vec::new(),
            energy: None,
            energy_idx: Vec::new(),
            scratch: StepScratch::new(n_apps, platform.num_cores, platform.shared_pstate_slots),
            memo,
        })
    }

    /// Switch decision memoization mid-run. Any stored entry is dropped;
    /// the next interval always runs the policy.
    pub fn set_memo(&mut self, mode: MemoMode) {
        self.config.memo = mode;
        self.memo = match mode {
            MemoMode::Off => None,
            MemoMode::Replay { epsilon } => Some(DecisionMemo::new(epsilon)),
        };
    }

    /// Memoization hit/miss counters, if memoization is enabled.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        self.memo.as_ref().map(|m| m.stats())
    }

    /// Attach a decision-trace observer; subsequent control intervals
    /// append one [`DecisionRecord`] each. Replaces any previous observer.
    pub fn attach_observer(&mut self, trace: DecisionTrace) {
        self.observer = Some(trace);
    }

    /// The attached decision trace, if any.
    pub fn observer(&self) -> Option<&DecisionTrace> {
        self.observer.as_ref()
    }

    /// Detach and return the decision trace (e.g. at end of run).
    pub fn take_observer(&mut self) -> Option<DecisionTrace> {
        self.observer.take()
    }

    /// Attach an energy ledger; every subsequent control interval
    /// accumulates per-app and package energy from the telemetry sample.
    /// Strictly off-path: control actions are bit-identical with or
    /// without a ledger attached (enforced by `tests/energy_offpath.rs`).
    ///
    /// Attribution follows the scorecard's rule: measured per-core power
    /// when every app core reports it (Ryzen-style), otherwise the
    /// app's activity share (C0 residency × active frequency) of package
    /// energy.
    pub fn attach_energy(&mut self, ledger: EnergyLedger) {
        self.energy = Some(ledger);
        self.energy_idx.clear();
    }

    /// The attached energy ledger, if any.
    pub fn energy(&self) -> Option<&EnergyLedger> {
        self.energy.as_ref()
    }

    /// Detach and return the energy ledger (e.g. at end of run).
    pub fn take_energy(&mut self) -> Option<EnergyLedger> {
        self.energy.take()
    }

    /// The configuration the daemon runs.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Switch the budget-to-frequency translation mid-run. Safe in both
    /// directions: the online model keeps learning regardless of which
    /// translation is selected, so a switch to `Online` starts from warm
    /// fits, and a switch back to `Naive` is exactly the seed controller.
    pub fn set_translation(&mut self, kind: TranslationKind) {
        self.config.translation = kind;
    }

    /// The translation currently selected.
    pub fn translation(&self) -> TranslationKind {
        self.config.translation
    }

    /// Freeze (`false`) or resume (`true`) model learning. The resilience
    /// layer freezes learning while power/counter telemetry is unhealthy
    /// so backfilled or poisoned samples cannot corrupt the fits.
    pub fn set_learning(&mut self, learning: bool) {
        self.model.set_learning(learning);
    }

    /// Replace the model configuration, resetting all fits. Benchmarks
    /// use this to pin the model into its never-confident (pure fallback)
    /// regime.
    pub fn set_model_config(&mut self, cfg: ModelConfig) {
        self.model = OnlineModel::new(cfg);
        // The fresh model restarts its generation counter at zero, which
        // could alias a recorded fingerprint; drop the memo entry.
        if let Some(m) = self.memo.as_mut() {
            m.invalidate();
        }
    }

    /// Snapshot of the learned model state for reports.
    pub fn model_snapshot(&self) -> ModelSnapshot {
        self.model.snapshot()
    }

    /// Learned package power draw with every managed core at maximum
    /// frequency — the node capacity estimate the cluster water-fill can
    /// use in place of the static TDP. `None` until the package fit is
    /// confident.
    pub fn predicted_capacity(&self) -> Option<Watts> {
        self.model
            .predicted_capacity(self.config.apps.len(), self.ctx.grid.max())
    }

    /// Admit an application mid-run. The candidate configuration is
    /// validated atomically — on error nothing changes. On success the
    /// next control interval re-runs the initial distribution over the
    /// new app set (§5.2 function (i)), exactly as at daemon start.
    pub fn add_app(&mut self, app: AppSpec) -> Result<(), DaemonError> {
        // Validate against `&self` directly: push the candidate app and
        // pop it back off on rejection, instead of cloning the whole
        // configuration. Validation only reads the config, so the
        // push/pop pair is externally atomic.
        self.config.apps.push(app);
        if let Err(err) = check_capabilities(&self.config, &self.platform) {
            self.config.apps.pop();
            return Err(err);
        }
        self.reset_distribution();
        Ok(())
    }

    /// Remove an application by name, returning its spec so callers
    /// (e.g. cluster admission) can re-place it. The freed core parks at
    /// the next control interval.
    pub fn remove_app(&mut self, name: &str) -> Result<AppSpec, DaemonError> {
        let idx = self
            .config
            .apps
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| DaemonError::UnknownApp { app: name.into() })?;
        let removed = self.config.apps.remove(idx);
        self.model.forget_app(removed.core);
        self.reset_distribution();
        Ok(removed)
    }

    /// Change an application's shares mid-run, returning the previous
    /// value. Unlike membership changes this needs no distribution
    /// reset: shares are read from the config on every control interval,
    /// so the next step simply divides the budget under the new weights.
    /// Zero shares are rejected (a zero-weight app would be starved out
    /// of every share-based division), as is an unknown app; on error
    /// nothing changes.
    pub fn retarget_shares(&mut self, name: &str, shares: u32) -> Result<u32, DaemonError> {
        if shares == 0 {
            return Err(ConfigError::ZeroShares { app: name.into() }.into());
        }
        let app = self
            .config
            .apps
            .iter_mut()
            .find(|a| a.name == name)
            .ok_or_else(|| DaemonError::UnknownApp { app: name.into() })?;
        let core = app.core;
        let previous = std::mem::replace(&mut app.shares, shares);
        if self.observer.is_some() && previous != shares {
            self.pending_events.push(DecisionEvent::ShareRetarget {
                core,
                from: previous,
                to: shares,
            });
        }
        Ok(previous)
    }

    /// Change the enforced package power budget mid-run (the cluster
    /// allocator retargets node budgets every rebalance). Validated
    /// against the platform's RAPL range; on error nothing changes.
    pub fn retarget_budget(&mut self, limit: Watts) -> Result<(), DaemonError> {
        // Swap the new limit in, validate against `&self`, and swap back
        // on rejection — no whole-config clone on this (per-rebalance)
        // path.
        let previous = self.config.power_limit;
        self.config.power_limit = limit;
        if let Err(err) = self.config.validate_on(&self.platform) {
            self.config.power_limit = previous;
            return Err(err.into());
        }
        self.ctx.limit = limit;
        Ok(())
    }

    /// After a membership change, restart from the initial distribution:
    /// per-app policy state (previous targets, per-app limits) is sized
    /// for the old app set and must be rebuilt.
    fn reset_distribution(&mut self) {
        self.current.clear();
        self.current.resize(self.config.apps.len(), KiloHertz::ZERO);
        self.current_parked.clear();
        self.current_parked.resize(self.config.apps.len(), false);
        self.initialized = false;
        // Account indices are per-app-set; rebuild on the next sample.
        self.energy_idx.clear();
        // Membership changes are visible in the fingerprint (app count,
        // shares, targets), but dropping the entry is free on this cold
        // path and removes any aliasing argument entirely.
        if let Some(m) = self.memo.as_mut() {
            m.invalidate();
        }
    }

    /// Accumulate one sample into the attached ledger (no-op without
    /// one). Pure observation: reads the sample, never the control
    /// state, and writes nothing the policy path reads.
    fn account_energy(&mut self, sample: &Sample) {
        let Daemon {
            ref config,
            ref mut energy,
            ref mut energy_idx,
            ..
        } = *self;
        let Some(ledger) = energy.as_mut() else {
            return;
        };
        let dt = sample.interval.value();
        if dt <= 0.0 {
            return;
        }
        if energy_idx.len() != config.apps.len() {
            energy_idx.clear();
            energy_idx.extend(config.apps.iter().map(|a| ledger.register(&a.name)));
        }
        let pkg_j = sample.package_power.value() * dt;
        ledger.add_package(pkg_j, dt);

        // Measured per-core power is only trusted when every app core
        // reports it — mixing measured watts with package attribution
        // would double-count.
        let mut weight = 0.0;
        let mut all_measured = true;
        for app in &config.apps {
            let Some(cs) = sample.cores.get(app.core) else {
                continue;
            };
            all_measured &= cs.power.is_some();
            weight += cs.rates.c0_residency * cs.rates.active_freq.hz();
        }
        for (i, app) in config.apps.iter().enumerate() {
            let Some(cs) = sample.cores.get(app.core) else {
                continue;
            };
            let joules = match cs.power {
                Some(p) if all_measured => p.value() * dt,
                _ if weight > 0.0 => {
                    pkg_j * cs.rates.c0_residency * cs.rates.active_freq.hz() / weight
                }
                _ => pkg_j / config.apps.len() as f64,
            };
            ledger.add(energy_idx[i], joules);
        }
    }

    /// Build app views from a telemetry sample into the scratch arena.
    /// Fails (instead of panicking) when the sample carries fewer cores
    /// than an app's pin.
    fn views_compute(&mut self, sample: &Sample) -> Result<(), DaemonError> {
        let Daemon {
            ref config,
            ref mut scratch,
            ..
        } = *self;
        scratch.views.clear();
        for app in &config.apps {
            let cs = sample.cores.get(app.core).ok_or(DaemonError::ShortSample {
                expected: app.core + 1,
                got: sample.cores.len(),
            })?;
            scratch.views.push(AppView {
                core: app.core,
                shares: app.shares as f64,
                priority: app.priority,
                active_freq: cs.rates.active_freq,
                power: cs.power,
                ips: cs.rates.ips,
                baseline_ips: app.baseline_ips,
            });
        }
        Ok(())
    }

    /// Expand the per-app policy output in `scratch.out` into the
    /// per-core action buffers, quantizing and (on Ryzen) clustering to
    /// the shared P-state slots. Allocation-free.
    fn expand_compute(&mut self) {
        let Daemon {
            ref config,
            ref ctx,
            num_cores,
            shared_slots,
            ref mut scratch,
            ..
        } = *self;
        let StepScratch {
            ref out,
            ref mut slots,
            ref mut action_freqs,
            ref mut action_parked,
            ..
        } = *scratch;
        action_freqs.clear();
        action_freqs.resize(num_cores, ctx.grid.min());
        action_parked.clear();
        action_parked.resize(num_cores, true); // unmanaged cores sleep
        for (i, app) in config.apps.iter().enumerate() {
            // Config validation pins every app below the platform core
            // count, but a defensive get keeps a stale config from
            // panicking the control loop.
            let (Some(fslot), Some(pslot)) = (
                action_freqs.get_mut(app.core),
                action_parked.get_mut(app.core),
            ) else {
                continue;
            };
            *fslot = ctx.grid.round(out.freqs[i]);
            *pslot = out.parked[i];
        }
        if let Some(n) = shared_slots {
            config
                .tuning
                .slot_selector
                .select_in_place(action_freqs, n, &ctx.grid, slots);
        }
    }

    /// Borrowed view of the most recently computed action (the daemon's
    /// scratch buffers).
    fn action_view(&self) -> ActionView<'_> {
        ActionView {
            freqs: &self.scratch.action_freqs,
            parked: &self.scratch.action_parked,
        }
    }

    /// The initial distribution (§5.2 function (i)): called once before
    /// the applications start. No telemetry is needed.
    pub fn initial(&mut self) -> ControlAction {
        self.initial_compute();
        self.action_view().to_owned()
    }

    /// Cold-path core of [`Daemon::initial`]: runs the policy's initial
    /// distribution into the scratch buffers.
    fn initial_compute(&mut self) {
        self.initialized = true;
        {
            let Daemon {
                ref config,
                ref ctx,
                ref mut engine,
                ref mut scratch,
                ..
            } = *self;
            match engine.as_policy() {
                None => {
                    scratch.out.freqs.clear();
                    scratch.out.freqs.resize(config.apps.len(), ctx.grid.max());
                    scratch.out.parked.clear();
                    scratch.out.parked.resize(config.apps.len(), false);
                }
                Some(p) => {
                    // Initial views carry only static configuration.
                    scratch.views.clear();
                    scratch.views.extend(config.apps.iter().map(|app| AppView {
                        core: app.core,
                        shares: app.shares as f64,
                        priority: app.priority,
                        active_freq: KiloHertz::ZERO,
                        power: None,
                        ips: 0.0,
                        baseline_ips: app.baseline_ips,
                    }));
                    scratch.out = p.initial(ctx, &scratch.views);
                }
            }
        }
        self.current.clear();
        self.current.extend_from_slice(&self.scratch.out.freqs);
        self.current_parked.clear();
        self.current_parked
            .extend_from_slice(&self.scratch.out.parked);
        self.expand_compute();
    }

    /// Seed the controller's per-app targets from per-core frequencies
    /// that are already programmed into the hardware, instead of
    /// re-running the initial distribution. The resilience layer uses
    /// this when it swaps policies mid-run (degradation-ladder moves):
    /// the replacement daemon must redistribute *from the running
    /// operating point*, because re-running the initial distribution
    /// would briefly command the top-share app to the maximum P-state
    /// and could overshoot the budget. Call after [`Daemon::initial`]
    /// so per-policy internal state exists.
    pub fn resume_from(&mut self, core_freqs: &[KiloHertz]) {
        // `round` both clamps into [min, max] and snaps to the P-state
        // grid: a firmware-clamped (off-grid) operating point must not
        // poison `self.current` with a frequency the hardware cannot
        // hold.
        let Daemon {
            ref config,
            ref ctx,
            ref mut current,
            ref mut current_parked,
            ..
        } = *self;
        current.clear();
        current.extend(config.apps.iter().map(|app| {
            ctx.grid
                .round(core_freqs.get(app.core).copied().unwrap_or(KiloHertz::ZERO))
        }));
        current_parked.clear();
        current_parked.resize(config.apps.len(), false);
        self.initialized = true;
    }

    /// Last programmed per-app frequency targets (one per configured
    /// app, in config order).
    pub fn current_targets(&self) -> &[KiloHertz] {
        &self.current
    }

    /// Whether the online model's package fit is currently confident.
    pub fn model_confident(&self) -> bool {
        self.model.package_confident()
    }

    /// One control interval: redistribution + translation (§5.2 functions
    /// (ii) and (iii)) from a fresh telemetry sample.
    ///
    /// A malformed sample (fewer cores than an app's pin) no longer
    /// panics: the daemon holds the previous operating point, traces the
    /// error when an observer is attached, and recovers on the next
    /// healthy sample. Use [`Daemon::try_step`] to see the error itself.
    pub fn step(&mut self, sample: &Sample) -> ControlAction {
        self.step_view(sample).to_owned()
    }

    /// Fallible variant of [`Daemon::step`]: returns the typed error a
    /// malformed sample produces instead of degrading silently. Daemon
    /// state (policy, model) is untouched on error.
    pub fn try_step(&mut self, sample: &Sample) -> Result<ControlAction, DaemonError> {
        self.step_compute(sample)?;
        Ok(self.action_view().to_owned())
    }

    /// Allocation-free variant of [`Daemon::step`]: the returned
    /// [`ActionView`] borrows the daemon's scratch buffers and is valid
    /// until the next control call. Steady state performs zero heap
    /// allocations (observer detached); sinks that must retain the
    /// decision call [`ActionView::to_owned`].
    pub fn step_view(&mut self, sample: &Sample) -> ActionView<'_> {
        if let Err(err) = self.step_compute(sample) {
            self.hold_compute(sample, &err);
        }
        self.action_view()
    }

    /// Fallible, allocation-free variant of [`Daemon::step`].
    pub fn try_step_view(&mut self, sample: &Sample) -> Result<ActionView<'_>, DaemonError> {
        self.step_compute(sample)?;
        Ok(self.action_view())
    }

    /// One control interval computed into the scratch buffers.
    fn step_compute(&mut self, sample: &Sample) -> Result<(), DaemonError> {
        self.account_energy(sample);
        if !self.initialized {
            self.initial_compute();
            return Ok(());
        }
        let started = self.observer.as_ref().map(|_| std::time::Instant::now());
        self.views_compute(sample)?;

        // Feed the online model before the policy acts on the sample.
        // Learning happens regardless of the selected translation so a
        // mid-run switch to `Online` has warm fits to draw on.
        self.model.observe_sample(sample);
        for view in &self.scratch.views {
            if view.baseline_ips > 0.0 && view.ips > 0.0 && view.active_freq > KiloHertz::ZERO {
                self.model
                    .observe_app(view.core, view.active_freq, view.ips / view.baseline_ips);
            }
        }

        // Decision memoization (DESIGN.md §16): fingerprint everything
        // the policy step reads — telemetry (ε-quantized), budget and
        // tuning, shares, the previous operating point, the model
        // generation (only when the online translation consults the
        // fits), and the policy's own mutable state. On a repeat, replay
        // the stored output instead of running the policy; see
        // `crate::memo` for why this is bit-exact at ε = 0.
        let memo_hit = {
            let Daemon {
                ref config,
                ref ctx,
                ref engine,
                ref current,
                ref current_parked,
                ref model,
                ref mut memo,
                ref mut scratch,
                ..
            } = *self;
            match memo.as_mut() {
                None => false,
                Some(m) => {
                    let StepScratch {
                        ref views,
                        ref mut out,
                        ..
                    } = *scratch;
                    m.begin();
                    m.push_exact(ctx.limit.value().to_bits());
                    m.push_exact(ctx.deadband.value().to_bits());
                    m.push_exact(ctx.damping.to_bits());
                    m.push_quant(sample.package_power.value());
                    m.push_exact(views.len() as u64);
                    for v in views {
                        m.push_exact(v.core as u64);
                        m.push_exact(v.shares.to_bits());
                        m.push_exact((v.priority == Priority::High) as u64);
                        m.push_quant(v.active_freq.khz() as f64);
                        m.push_quant(v.ips);
                        m.push_exact(v.baseline_ips.to_bits());
                        match v.power {
                            Some(p) => {
                                m.push_exact(1);
                                m.push_quant(p.value());
                            }
                            None => m.push_exact(0),
                        }
                    }
                    for f in current {
                        m.push_exact(f.khz());
                    }
                    for &parked in current_parked {
                        m.push_exact(parked as u64);
                    }
                    let online = config.translation == TranslationKind::Online;
                    m.push_exact(online as u64);
                    if online {
                        // Learning bumps the generation every interval, so
                        // online translation only memoizes once learning is
                        // frozen — which is exactly when the fits stop
                        // moving and replay is sound.
                        m.push_exact(model.generation());
                    }
                    engine.memo_state(m.fingerprint_mut());
                    if m.lookup() {
                        m.replay_into(out);
                        true
                    } else {
                        false
                    }
                }
            }
        };

        if !memo_hit {
            let Daemon {
                ref config,
                ref ctx,
                ref mut engine,
                ref current,
                ref model,
                ref mut memo,
                ref mut scratch,
                ..
            } = *self;
            let StepScratch {
                ref views,
                ref mut out,
                ref mut policy,
                ..
            } = *scratch;
            let translation: &dyn TranslationModel = match config.translation {
                TranslationKind::Naive => &NaiveAlpha,
                TranslationKind::Online => model,
            };
            match engine.as_policy() {
                None => {
                    out.freqs.clear();
                    out.freqs.resize(config.apps.len(), ctx.grid.max());
                    out.parked.clear();
                    out.parked.resize(config.apps.len(), false);
                }
                Some(p) => p.step_into(
                    ctx,
                    &PolicyInput {
                        package_power: sample.package_power,
                        apps: views,
                        current,
                    },
                    translation,
                    policy,
                    out,
                ),
            }
            if let Some(m) = memo.as_mut() {
                m.record(out);
            }
        }

        // Saturation detection compares the *previous* interval's targets
        // with what the cores achieved; observer-only, so it must run
        // before `current` is overwritten.
        let events = if self.observer.is_some() {
            let mut events = std::mem::take(&mut self.pending_events);
            events.extend(self.saturation_events(&self.scratch.views));
            events
        } else {
            Vec::new()
        };

        self.current.clear();
        self.current.extend_from_slice(&self.scratch.out.freqs);
        self.current_parked.clear();
        self.current_parked
            .extend_from_slice(&self.scratch.out.parked);
        self.expand_compute();
        if self.observer.is_some() {
            let record = self.build_record(
                sample.time,
                Some(sample.package_power),
                &self.scratch.out,
                self.action_view(),
                events,
                started,
            );
            if let Some(obs) = self.observer.as_mut() {
                obs.push(record);
            }
        }
        Ok(())
    }

    /// Hold the previous operating point when a sample is malformed: the
    /// chip keeps its last-programmed targets, the error becomes a trace
    /// event, and the loop survives to the next healthy sample.
    fn hold_compute(&mut self, sample: &Sample, err: &DaemonError) {
        self.scratch.out.freqs.clear();
        self.scratch.out.freqs.extend_from_slice(&self.current);
        self.scratch.out.parked.clear();
        self.scratch
            .out
            .parked
            .extend_from_slice(&self.current_parked);
        self.expand_compute();
        if self.observer.is_some() {
            let mut events = Vec::new();
            if let DaemonError::ShortSample { expected, got } = *err {
                events.push(DecisionEvent::ShortSample { expected, got });
            }
            events.push(DecisionEvent::Held {
                reason: "malformed sample",
            });
            let record = self.build_record(
                sample.time,
                Some(sample.package_power),
                &self.scratch.out,
                self.action_view(),
                events,
                None,
            );
            if let Some(obs) = self.observer.as_mut() {
                obs.push(record);
            }
        }
    }

    /// Cores whose achieved frequency saturated below the previous
    /// interval's target — the paper's "useful max" ceiling. Called only
    /// when an observer is attached.
    fn saturation_events(&self, views: &[AppView]) -> Vec<DecisionEvent> {
        views
            .iter()
            .zip(&self.current)
            .filter(|(view, &target)| {
                target > KiloHertz::ZERO
                    && view.active_freq > KiloHertz::ZERO
                    && useful_max(&self.ctx.grid, target, view.active_freq) < target
            })
            .map(|(view, &target)| DecisionEvent::Saturated {
                core: view.core,
                target,
                achieved: view.active_freq,
            })
            .collect()
    }

    /// Assemble one [`DecisionRecord`] for the interval. Only called when
    /// an observer is attached.
    fn build_record(
        &self,
        time: Seconds,
        measured: Option<Watts>,
        out: &PolicyOutput,
        action: ActionView<'_>,
        events: Vec<DecisionEvent>,
        started: Option<std::time::Instant>,
    ) -> DecisionRecord {
        let apps = self
            .config
            .apps
            .iter()
            .enumerate()
            .map(|(i, app)| {
                let requested = out.freqs.get(i).copied().unwrap_or(KiloHertz::ZERO);
                AppDecision {
                    core: app.core,
                    requested,
                    quantized: self.ctx.grid.round(requested),
                    granted: action
                        .freqs
                        .get(app.core)
                        .copied()
                        .unwrap_or(KiloHertz::ZERO),
                    parked: out.parked.get(i).copied().unwrap_or(false),
                }
            })
            .collect();
        DecisionRecord {
            time,
            source: "daemon",
            policy: self.config.policy.name(),
            level: None,
            budget: self.config.power_limit,
            measured,
            translation: self.config.translation.name(),
            model_confident: self.model.package_confident(),
            apps,
            events,
            latency: Seconds(started.map_or(0.0, |s| s.elapsed().as_secs_f64())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AppSpec, Priority};
    use pap_simcpu::units::{Seconds, Watts};
    use pap_telemetry::counters::CoreRates;
    use pap_telemetry::sampler::CoreSample;

    fn skylake_apps() -> Vec<AppSpec> {
        vec![
            AppSpec::new("hd", 0).with_shares(70).with_baseline_ips(2e9),
            AppSpec::new("ld", 1)
                .with_priority(Priority::Low)
                .with_shares(30)
                .with_baseline_ips(2e9),
        ]
    }

    fn sample(pkg: f64, freqs_mhz: &[u64], ncores: usize) -> Sample {
        let cores = (0..ncores)
            .map(|i| CoreSample {
                rates: CoreRates {
                    active_freq: KiloHertz::from_mhz(*freqs_mhz.get(i).unwrap_or(&0)),
                    c0_residency: 1.0,
                    ips: 1e9,
                },
                power: None,
                requested_freq: KiloHertz::from_mhz(*freqs_mhz.get(i).unwrap_or(&0)),
            })
            .collect();
        Sample {
            time: Seconds(1.0),
            interval: Seconds(1.0),
            package_power: Watts(pkg),
            cores_power: Watts(pkg - 12.0),
            cores,
        }
    }

    #[test]
    fn rejects_power_shares_on_skylake() {
        let cfg = DaemonConfig::new(PolicyKind::PowerShares, Watts(50.0), skylake_apps());
        let err = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap_err();
        assert!(
            matches!(err, DaemonError::NeedsPerCorePower { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("per-core power"), "{err}");
    }

    #[test]
    fn rejects_rapl_native_on_ryzen() {
        let mut apps = skylake_apps();
        apps.truncate(2);
        let cfg = DaemonConfig::new(PolicyKind::RaplNative, Watts(50.0), apps);
        let err = Daemon::new(cfg, &PlatformSpec::ryzen()).unwrap_err();
        assert!(matches!(err, DaemonError::NeedsRapl { .. }), "{err}");
        assert!(err.to_string().contains("RAPL"), "{err}");
    }

    #[test]
    fn rejects_perf_shares_without_baseline() {
        let apps = vec![AppSpec::new("x", 0).with_shares(50)];
        let cfg = DaemonConfig::new(PolicyKind::PerformanceShares, Watts(50.0), apps);
        let err = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap_err();
        assert!(matches!(err, DaemonError::MissingBaseline { .. }), "{err}");
        assert!(err.to_string().contains("baseline"), "{err}");
    }

    #[test]
    fn add_app_reruns_initial_distribution() {
        let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(50.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        d.initial();
        d.add_app(
            AppSpec::new("late", 5)
                .with_shares(70)
                .with_baseline_ips(2e9),
        )
        .unwrap();
        assert_eq!(d.config().apps.len(), 3);
        // next step bootstraps the full initial distribution again
        let a = d.step(&sample(45.0, &[2000, 1000, 0, 0, 0, 0], 10));
        assert!(!a.parked[5], "admitted app's core runs");
        assert_eq!(
            a.freqs[5],
            KiloHertz::from_mhz(3000),
            "top-share app at max"
        );
    }

    #[test]
    fn add_app_rejects_conflicts_atomically() {
        let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(50.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        let err = d.add_app(AppSpec::new("dup", 0)).unwrap_err();
        assert!(
            matches!(
                err,
                DaemonError::Config(ConfigError::DuplicateCorePin { core: 0 })
            ),
            "{err}"
        );
        let err = d
            .add_app(AppSpec::new("zero", 5).with_shares(0))
            .unwrap_err();
        assert!(
            matches!(err, DaemonError::Config(ConfigError::ZeroShares { .. })),
            "{err}"
        );
        assert_eq!(d.config().apps.len(), 2, "failed admissions change nothing");
    }

    #[test]
    fn remove_app_returns_spec_and_parks_core() {
        let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(50.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        d.initial();
        let spec = d.remove_app("ld").unwrap();
        assert_eq!(spec.core, 1);
        let a = d.step(&sample(40.0, &[2000, 0], 10));
        assert!(a.parked[1], "departed app's core parks");
        assert!(!a.parked[0]);
        assert!(matches!(
            d.remove_app("nope").unwrap_err(),
            DaemonError::UnknownApp { .. }
        ));
    }

    #[test]
    fn retarget_shares_shifts_the_division() {
        let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(50.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        d.initial();
        let s = sample(55.0, &[3000, 3000], 10);
        let before = d.step(&s);
        // Flip the weighting toward the second app; the very next step
        // divides under the new weights — no reset, no re-init.
        assert_eq!(d.retarget_shares("ld", 90).unwrap(), 30);
        assert_eq!(d.retarget_shares("hd", 10).unwrap(), 70);
        let after = d.step(&s);
        assert!(
            after.freqs[1] >= before.freqs[1] && after.freqs[0] <= before.freqs[0],
            "boosted app must not lose frequency: {:?} -> {:?}",
            before.freqs,
            after.freqs
        );

        assert!(matches!(
            d.retarget_shares("nope", 50).unwrap_err(),
            DaemonError::UnknownApp { .. }
        ));
        assert!(matches!(
            d.retarget_shares("hd", 0).unwrap_err(),
            DaemonError::Config(ConfigError::ZeroShares { .. })
        ));
        assert_eq!(d.config().apps[0].shares, 10, "failed calls change nothing");
    }

    #[test]
    fn retarget_budget_validates_rapl_range() {
        let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(50.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        d.retarget_budget(Watts(30.0)).unwrap();
        assert_eq!(d.config().power_limit, Watts(30.0));

        let err = d.retarget_budget(Watts(5.0)).unwrap_err();
        assert!(
            matches!(
                err,
                DaemonError::Config(ConfigError::PowerLimitOutsideRaplRange { .. })
            ),
            "{err}"
        );
        assert_eq!(
            d.config().power_limit,
            Watts(30.0),
            "failed retarget changes nothing"
        );
    }

    #[test]
    fn retarget_budget_steers_the_controller() {
        let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(80.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        let init = d.initial();
        // Under the old 80 W budget a 65 W sample is under budget; after
        // retargeting to 40 W the same sample is over budget and the
        // daemon must throttle.
        d.retarget_budget(Watts(40.0)).unwrap();
        let a = d.step(&sample(65.0, &[3000, 1300], 10));
        assert!(a.freqs[0] < init.freqs[0], "tightened budget throttles");
    }

    #[test]
    fn initial_action_covers_all_cores() {
        let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(50.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        let a = d.initial();
        assert_eq!(a.freqs.len(), 10);
        assert_eq!(a.parked.len(), 10);
        // managed cores run, unmanaged cores sleep
        assert!(!a.parked[0] && !a.parked[1]);
        assert!(a.parked[2..].iter().all(|&p| p));
        // highest-share app at max
        assert_eq!(a.freqs[0], KiloHertz::from_mhz(3000));
    }

    #[test]
    fn step_before_initial_bootstraps() {
        let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(50.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        let a = d.step(&sample(60.0, &[3000, 1300], 10));
        assert_eq!(a.freqs.len(), 10);
    }

    #[test]
    fn over_budget_step_reduces_frequencies() {
        let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(40.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        let init = d.initial();
        let a = d.step(&sample(65.0, &[3000, 1300], 10));
        assert!(a.freqs[0] < init.freqs[0]);
    }

    #[test]
    fn rapl_native_requests_max_everywhere_managed() {
        let cfg = DaemonConfig::new(PolicyKind::RaplNative, Watts(50.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        let a = d.initial();
        assert_eq!(a.freqs[0], KiloHertz::from_mhz(3000));
        assert_eq!(a.freqs[1], KiloHertz::from_mhz(3000));
        let a = d.step(&sample(80.0, &[2400, 2400], 10));
        assert_eq!(
            a.freqs[0],
            KiloHertz::from_mhz(3000),
            "daemon stays hands-off"
        );
    }

    #[test]
    fn ryzen_actions_respect_shared_slots() {
        let apps: Vec<AppSpec> = (0..8)
            .map(|i| {
                AppSpec::new(format!("a{i}"), i)
                    .with_shares(10 + 10 * i as u32)
                    .with_baseline_ips(2e9)
            })
            .collect();
        let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(45.0), apps);
        let mut d = Daemon::new(cfg, &PlatformSpec::ryzen()).unwrap();
        // One reusable buffer dedups in place for both checks.
        let mut buf = Vec::new();
        let a = d.initial();
        assert!(
            crate::quantize::distinct_levels_with(&a.freqs, &mut buf) <= 3,
            "8 share levels must cluster into 3 slots, got {buf:?}"
        );

        // and after a step too
        let s = sample(60.0, &[3400, 3000, 2500, 2200, 2000, 1500, 1000, 800], 8);
        let a = d.step(&s);
        assert!(crate::quantize::distinct_levels_with(&a.freqs, &mut buf) <= 3);
    }

    #[test]
    fn priority_daemon_parks_lp_cores() {
        let cfg = DaemonConfig::new(PolicyKind::Priority, Watts(50.0), skylake_apps());
        let mut d = Daemon::new(cfg, &PlatformSpec::skylake()).unwrap();
        let a = d.initial();
        assert!(!a.parked[0], "HP core runs");
        assert!(a.parked[1], "LP core starts parked");
    }
}
