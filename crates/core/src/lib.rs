//! # powerd — per-application power delivery
//!
//! The core library of the *Per-Application Power Delivery* (EuroSys '19)
//! reproduction: policies and a userspace control daemon that deliver
//! **different** amounts of power to applications co-located on one
//! socket, using per-core DVFS.
//!
//! ## Policies
//!
//! * [`policy::priority`] — strict two-level priorities: high-priority
//!   apps run at the maximum P-state under the limit; low-priority apps
//!   get residual power and may be starved.
//! * [`policy::power_shares`] — per-core power proportional to shares
//!   (needs per-core power telemetry; Ryzen only).
//! * [`policy::frequency_shares`] — frequency proportional to shares
//!   (needs only package power and per-core DVFS).
//! * [`policy::performance_shares`] — normalized IPS proportional to
//!   shares (needs per-app performance feedback).
//!
//! Each share policy implements the paper's three functions: initial
//! distribution, redistribution with min-funding revocation
//! ([`policy::minfund`]), and translation via the naïve α model
//! ([`alpha`]). On Ryzen the daemon additionally clusters targets into
//! the chip's three shared P-state slots ([`quantize`]).
//!
//! The translation step is pluggable: selecting
//! [`config::TranslationKind::Online`] swaps the naïve α formula for the
//! `pap_model` online learned power/performance model, which falls back
//! to naïve α bit-for-bit whenever its fits are not yet trustworthy.
//!
//! When telemetry can fail, [`resilience::ResilientDaemon`] wraps the
//! daemon in a hysteretic degradation ladder (power shares → frequency
//! shares → uniform last-good cap) driven by per-sensor health; the
//! fault-injection harness in `pap_faults` exercises it.
//!
//! Every control layer can additionally emit an off-path decision trace
//! ([`obs`]): per-interval [`obs::DecisionRecord`]s with JSONL and
//! Prometheus-style metric sinks, for post-morteming chaos runs and
//! cluster rebalances without re-running with printlns.
//!
//! ## Quick start
//!
//! ```
//! use pap_simcpu::platform::PlatformSpec;
//! use pap_simcpu::units::{Seconds, Watts};
//! use pap_workloads::spec;
//! use powerd::config::{PolicyKind, Priority};
//! use powerd::runner::Experiment;
//!
//! let result = Experiment::new(
//!     PlatformSpec::skylake(),
//!     PolicyKind::FrequencyShares,
//!     Watts(28.0), // tight enough that the share ratio binds
//! )
//! .app("cactusBSSN", spec::CACTUS_BSSN, Priority::High, 70)
//! .app("leela", spec::LEELA, Priority::High, 30)
//! .duration(Seconds(20.0))
//! .run()
//! .unwrap();
//! assert!(result.apps[0].mean_freq_mhz > result.apps[1].mean_freq_mhz);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alpha;
pub mod cli;
pub mod config;
pub mod daemon;
pub mod governor;
pub mod hw;
pub mod hwp;
pub mod memo;
pub mod obs;
pub mod policy;
pub mod quantize;
pub mod report;
pub mod resilience;
pub mod runner;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::config::{
        AppSpec, DaemonConfig, MemoMode, PolicyKind, Priority, TranslationKind,
    };
    pub use crate::daemon::{ControlAction, Daemon};
    pub use crate::memo::{DecisionMemo, MemoStats};
    pub use crate::obs::{AppDecision, DecisionEvent, DecisionRecord, DecisionTrace};
    pub use crate::policy::{Policy, PolicyCtx, PolicyInput, PolicyOutput};
    pub use crate::resilience::{
        CoreObservation, DegradationLevel, LadderEvent, Observation, ResilienceConfig,
        ResilientDaemon, RetryPolicy,
    };
    pub use crate::runner::{
        standalone_freq, AppResult, Experiment, ExperimentResult, LatencyExperiment, LatencyResult,
    };
    pub use pap_model::{ModelConfig, ModelSnapshot, TranslationModel};
}
