//! Resilience layer: retries, sensor health, and the degradation ladder.
//!
//! The plain [`Daemon`] assumes every sensor read and MSR write succeeds.
//! Production telemetry does not cooperate: `/dev/cpu/<n>/msr` reads
//! return `EIO` transiently or permanently, frequency writes get dropped
//! by buggy firmware, and energy counters glitch. The paper's own policy
//! table is a built-in degradation ladder — power shares need per-core
//! power telemetry, frequency shares need only package power, and a
//! uniform cap needs nothing but a working actuator — so losing a sensor
//! should cost *fairness precision*, never the power cap itself.
//!
//! [`ResilientDaemon`] wraps a [`Daemon`] and implements that ladder:
//!
//! 1. **Nominal** — the configured policy runs unchanged.
//! 2. **FrequencyOnly** — per-core power (or performance-counter)
//!    telemetry went unhealthy while the configured policy needs it; the
//!    daemon swaps in frequency shares, which preserves proportionality
//!    from package power alone.
//! 3. **UniformCap** — package power is gone; the daemon stops trusting
//!    any redistribution and pins every managed core to one conservative
//!    frequency derived from the last trustworthy power reading. While
//!    blind it never raises frequencies.
//!
//! Demotion and promotion both go through the hysteresis in
//! [`HealthTracker`] (`demote_after` consecutive failures, `promote_after`
//! consecutive successes), so a single bad interval cannot flap the
//! policy. Transient gaps *before* a sensor is declared unhealthy hold
//! the previous action rather than redistributing on stale data.
//!
//! The input is an [`Observation`]: a [`Sample`] where every reading is
//! optional, produced by a fallible collector (the fault-injection
//! harness in `pap_faults`, or a hardware backend that surfaces MSR
//! errors). Write failures are reported back via
//! [`ResilientDaemon::report_write_error`]; silently-dropped ("stuck")
//! writes are detected by reading the request register back and comparing
//! with what was commanded. A core whose write path stays broken is
//! quarantined (parked) so it cannot free-run outside the controller.

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::counters::CoreRates;
use pap_telemetry::health::{HealthTracker, SensorId};
use pap_telemetry::sampler::{CoreSample, Sample};

use crate::config::{DaemonConfig, PolicyKind};
use crate::daemon::{ControlAction, Daemon, DaemonError};
use crate::obs::{AppDecision, DecisionEvent, DecisionRecord, DecisionTrace};

/// Bounded retry with exponential backoff for MSR-class operations.
///
/// In the simulation the backoff delays are *virtual* — a retry burst is
/// orders of magnitude shorter than the 1 s control interval, so retries
/// do not advance simulated time; [`RetryPolicy::total_backoff`] reports
/// the wall-clock a hardware backend would have spent sleeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_delay: Seconds,
    /// Multiplier applied to the delay after each failed retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Seconds::from_micros(50.0),
            multiplier: 4.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the no-resilience baseline).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Run `op` up to `max_attempts` times, returning the first success
    /// (or the last error) together with the number of attempts made.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> (Result<T, E>, u32) {
        let attempts_allowed = self.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match op() {
                Ok(v) => return (Ok(v), attempt),
                Err(e) if attempt >= attempts_allowed => return (Err(e), attempt),
                Err(_) => attempt += 1,
            }
        }
    }

    /// Total backoff a hardware backend would sleep across `attempts`
    /// attempts (no sleep before the first).
    pub fn total_backoff(&self, attempts: u32) -> Seconds {
        let mut total = 0.0;
        let mut delay = self.base_delay.value();
        for _ in 1..attempts {
            total += delay;
            delay *= self.multiplier;
        }
        Seconds(total)
    }
}

/// One core's slice of a fallible telemetry observation. `None` means the
/// read failed (after retries) or was rejected as implausible.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreObservation {
    /// Derived counter rates, if the fixed counters were readable.
    pub rates: Option<CoreRates>,
    /// Per-core power, if the platform exposes it and the read succeeded.
    pub power: Option<Watts>,
    /// Read-back of the frequency-request register, for stuck-write
    /// detection.
    pub requested: Option<KiloHertz>,
}

impl CoreObservation {
    /// An observation where every read failed.
    pub fn blind() -> CoreObservation {
        CoreObservation {
            rates: None,
            power: None,
            requested: None,
        }
    }
}

/// A [`Sample`] with failure: every reading is optional. Produced by a
/// fallible collector each control interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Simulated time at the observation.
    pub time: Seconds,
    /// Control interval covered.
    pub interval: Seconds,
    /// Package power, if the package energy counter was readable and the
    /// derived value plausible.
    pub package_power: Option<Watts>,
    /// Per-core slices (length = chip core count).
    pub cores: Vec<CoreObservation>,
    /// Retries spent per sensor while collecting (for health accounting).
    pub retries: Vec<(SensorId, u64)>,
}

/// Where the daemon sits on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradationLevel {
    /// The configured policy runs with full telemetry.
    Nominal,
    /// Per-core telemetry lost: frequency shares substitute for the
    /// configured policy (package power is still trusted).
    FrequencyOnly,
    /// Package power lost: one conservative uniform frequency for every
    /// managed core, never raised while blind.
    UniformCap,
}

impl DegradationLevel {
    /// Short name used in reports and traces.
    pub fn name(self) -> &'static str {
        match self {
            DegradationLevel::Nominal => "nominal",
            DegradationLevel::FrequencyOnly => "freq-only",
            DegradationLevel::UniformCap => "uniform-cap",
        }
    }
}

impl std::fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One move on the degradation ladder, for traces and post-mortems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderEvent {
    /// Simulated time of the move.
    pub time: Seconds,
    /// Level before.
    pub from: DegradationLevel,
    /// Level after.
    pub to: DegradationLevel,
    /// Which telemetry change forced the move.
    pub reason: &'static str,
}

/// Tuning for the resilience layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Retry policy for MSR-class reads and writes.
    pub retry: RetryPolicy,
    /// Consecutive failed intervals before a sensor is unhealthy.
    pub demote_after: u32,
    /// Consecutive healthy intervals before a sensor is trusted again.
    pub promote_after: u32,
    /// Safety factor applied when deriving the blind uniform frequency
    /// from the last trustworthy power reading (< 1.0 biases low).
    pub uniform_safety: f64,
    /// Consecutive over-limit package readings tolerated before the
    /// backstop overrides the policy with a proportional shed. Short
    /// transients stay the policy's business; streaks mean its feedback
    /// state is mis-calibrated for the chip and must not be waited out.
    pub backstop_after: u32,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            demote_after: 3,
            promote_after: 5,
            uniform_safety: 0.9,
            backstop_after: 2,
        }
    }
}

/// A [`Daemon`] wrapped in the degradation ladder. See the module docs
/// for the ladder itself.
#[derive(Debug)]
pub struct ResilientDaemon {
    base: DaemonConfig,
    platform: PlatformSpec,
    rcfg: ResilienceConfig,
    level: DegradationLevel,
    /// The active policy engine; `None` at [`DegradationLevel::UniformCap`].
    daemon: Option<Daemon>,
    health: HealthTracker,
    transitions: Vec<LadderEvent>,
    app_cores: Vec<usize>,
    last_action: Option<ControlAction>,
    /// Per-core frequencies we last asked the hardware for.
    last_commanded: Vec<KiloHertz>,
    /// Last package power read while the package sensor was healthy.
    last_good_pkg: Option<Watts>,
    /// Consecutive trusted package readings above the limit. Feeds the
    /// over-budget backstop; a missing reading neither extends nor
    /// resets the streak (the blind-hold shed covers that case).
    over_streak: u32,
    /// Last *consistent* operating point: mean commanded kHz over the
    /// managed cores paired with the package power measured while the
    /// hardware was verifiably running those commands. Commanded
    /// frequencies alone are not trustworthy — during a firmware
    /// throttle (PROCHOT) the controller can wind them far above what
    /// the chip executes while measured power stays low, and scaling
    /// that pair would put the blind cap near maximum frequency.
    anchor: Option<(f64, Watts)>,
    /// The blind cap while at [`DegradationLevel::UniformCap`].
    uniform_freq: KiloHertz,
    /// Cores whose write failed (reported by the backend) since the last
    /// step.
    pending_write_errors: Vec<bool>,
    /// Decision-trace observer. Lives here rather than on the inner
    /// daemon because ladder moves rebuild that daemon from scratch.
    /// `None` (the default) keeps observability strictly off-path.
    observer: Option<DecisionTrace>,
    /// Events noted by this interval's control path, drained into the
    /// interval's [`DecisionRecord`]. Always empty when no observer is
    /// attached ([`ResilientDaemon::note`] is a no-op then).
    pending_events: Vec<DecisionEvent>,
}

impl ResilientDaemon {
    /// Wrap `config` with the resilience layer. Both the configured
    /// policy *and* its frequency-shares fallback are validated here, so
    /// later ladder moves cannot fail.
    pub fn new(
        config: DaemonConfig,
        platform: &PlatformSpec,
        rcfg: ResilienceConfig,
    ) -> Result<ResilientDaemon, DaemonError> {
        let daemon = Daemon::new(config.clone(), platform)?;
        // Pre-validate the fallback so transition() can expect() it.
        Daemon::new(Self::fallback_config(&config), platform)?;
        let app_cores: Vec<usize> = config.apps.iter().map(|a| a.core).collect();
        let num_cores = platform.num_cores;
        Ok(ResilientDaemon {
            base: config,
            platform: platform.clone(),
            rcfg,
            level: DegradationLevel::Nominal,
            daemon: Some(daemon),
            health: HealthTracker::new(rcfg.demote_after, rcfg.promote_after),
            transitions: Vec::new(),
            app_cores,
            last_action: None,
            last_commanded: vec![KiloHertz::ZERO; num_cores],
            last_good_pkg: None,
            over_streak: 0,
            anchor: None,
            uniform_freq: platform.grid.min(),
            pending_write_errors: vec![false; num_cores],
            observer: None,
            pending_events: Vec::new(),
        })
    }

    /// Attach a decision-trace observer; each subsequent step appends one
    /// [`DecisionRecord`] with `source = "resilience"`.
    pub fn attach_observer(&mut self, trace: DecisionTrace) {
        self.observer = Some(trace);
    }

    /// The attached decision trace, if any.
    pub fn observer(&self) -> Option<&DecisionTrace> {
        self.observer.as_ref()
    }

    /// Detach and return the decision trace (e.g. at end of run).
    pub fn take_observer(&mut self) -> Option<DecisionTrace> {
        self.observer.take()
    }

    /// Queue an event for this interval's record; no-op when no observer
    /// is attached (keeping the hooks off-path).
    fn note(&mut self, event: DecisionEvent) {
        if self.observer.is_some() {
            self.pending_events.push(event);
        }
    }

    fn fallback_config(base: &DaemonConfig) -> DaemonConfig {
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::FrequencyShares;
        cfg
    }

    /// The initial distribution, delegated to the configured policy.
    pub fn initial(&mut self) -> ControlAction {
        let action = self.daemon.as_mut().expect("nominal at start").initial();
        self.commit(action)
    }

    /// Report that this interval's frequency write to `core` errored
    /// (after the backend's retries). Counted against the core's
    /// actuator health at the next [`ResilientDaemon::step`].
    pub fn report_write_error(&mut self, core: usize) {
        if let Some(slot) = self.pending_write_errors.get_mut(core) {
            *slot = true;
        }
    }

    /// Current position on the degradation ladder.
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// Every ladder move so far, in time order.
    pub fn transitions(&self) -> &[LadderEvent] {
        &self.transitions
    }

    /// The per-sensor health tracker.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// Short name of the policy actually controlling cores right now.
    pub fn active_policy(&self) -> &'static str {
        match self.level {
            DegradationLevel::Nominal => self.base.policy.name(),
            DegradationLevel::FrequencyOnly => PolicyKind::FrequencyShares.name(),
            DegradationLevel::UniformCap => "uniform-cap",
        }
    }

    /// The configured (base) daemon config.
    pub fn config(&self) -> &DaemonConfig {
        &self.base
    }

    /// Whether `core`'s write path is currently quarantined.
    pub fn is_quarantined(&self, core: usize) -> bool {
        !self.health.is_healthy(SensorId::FreqActuator(core))
    }

    /// Learned-model state of the active inner daemon. `None` at
    /// [`DegradationLevel::UniformCap`], which runs no policy engine.
    pub fn model_snapshot(&self) -> Option<pap_model::ModelSnapshot> {
        self.daemon.as_ref().map(|d| d.model_snapshot())
    }

    /// One control interval over a fallible observation.
    pub fn step(&mut self, obs: &Observation) -> ControlAction {
        let started = self.observer.as_ref().map(|_| std::time::Instant::now());
        self.observe_health(obs);
        if self.health.is_healthy(SensorId::PackagePower) {
            if let Some(p) = obs.package_power {
                if p > self.base.power_limit {
                    self.over_streak += 1;
                } else {
                    self.over_streak = 0;
                }
            }
        }

        let target = self.target_level();
        if target != self.level {
            self.transition(target, obs.time);
        }

        let action = match self.level {
            DegradationLevel::UniformCap => self.uniform_action(obs),
            _ => self.policy_action(obs),
        };

        if self.health.is_healthy(SensorId::PackagePower) {
            if let Some(p) = obs.package_power {
                self.last_good_pkg = Some(p);
                // `obs` measures the interval driven by the *previous*
                // command (pre-commit `last_commanded`), so this is the
                // correctly-paired anchor — taken only when the hardware
                // demonstrably ran what we asked for.
                if self.commands_took_effect(obs) {
                    self.anchor = Some((self.mean_commanded_khz(), p));
                }
            }
        }
        let action = self.commit(action);
        if self.observer.is_some() {
            let record = self.build_record(obs, &action, started);
            if let Some(obs) = self.observer.as_mut() {
                obs.push(record);
            }
        } else {
            self.pending_events.clear();
        }
        action
    }

    /// Assemble one [`DecisionRecord`] for the interval, draining the
    /// events noted along the control path. Only called with an observer
    /// attached.
    fn build_record(
        &mut self,
        obs: &Observation,
        action: &ControlAction,
        started: Option<std::time::Instant>,
    ) -> DecisionRecord {
        let events = std::mem::take(&mut self.pending_events);
        // At this layer quantization and clustering already happened
        // inside the inner daemon (or do not apply, at UniformCap), so
        // the funnel stages coincide.
        let apps = self
            .app_cores
            .iter()
            .map(|&c| {
                let f = action.freqs.get(c).copied().unwrap_or(KiloHertz::ZERO);
                AppDecision {
                    core: c,
                    requested: f,
                    quantized: f,
                    granted: f,
                    parked: action.parked.get(c).copied().unwrap_or(false),
                }
            })
            .collect();
        DecisionRecord {
            time: obs.time,
            source: "resilience",
            policy: self.active_policy(),
            level: Some(self.level.name()),
            budget: self.base.power_limit,
            measured: obs.package_power,
            translation: self.base.translation.name(),
            model_confident: self.daemon.as_ref().is_some_and(|d| d.model_confident()),
            apps,
            events,
            latency: Seconds(started.map_or(0.0, |s| s.elapsed().as_secs_f64())),
        }
    }

    /// Whether every managed core's measured active frequency confirms
    /// the previous command actually executed. A firmware override
    /// (thermal clamp) shows up as active ≪ commanded even though the
    /// write "succeeded"; observations taken under it must not anchor
    /// the blind cap. Missing counters give no verdict (no anchor
    /// update), matching the actuator-health rule above.
    fn commands_took_effect(&self, obs: &Observation) -> bool {
        if self.last_action.is_none() {
            return false;
        }
        self.app_cores.iter().all(|&c| {
            let commanded = self.last_commanded[c];
            if commanded == KiloHertz::ZERO || self.is_quarantined(c) {
                return false;
            }
            match &obs.cores[c].rates {
                Some(r) => r.active_freq.0 as f64 >= 0.7 * commanded.0 as f64,
                None => false,
            }
        })
    }

    fn mean_commanded_khz(&self) -> f64 {
        self.app_cores
            .iter()
            .map(|&c| self.last_commanded[c].0)
            .sum::<u64>() as f64
            / self.app_cores.len().max(1) as f64
    }

    /// Feed this interval's read/write outcomes into the health tracker.
    fn observe_health(&mut self, obs: &Observation) {
        let t = obs.time;
        self.health
            .record(SensorId::PackagePower, obs.package_power.is_some(), t);
        let commanded = self.last_action.is_some();
        for &core in &self.app_cores {
            let co = &obs.cores[core];
            if self.platform.per_core_power {
                self.health
                    .record(SensorId::CorePower(core), co.power.is_some(), t);
            }
            self.health
                .record(SensorId::CoreCounters(core), co.rates.is_some(), t);
            // Actuator verdict: an explicit write error, or a read-back
            // that disagrees with what we commanded (stuck write). No
            // read-back, no verdict — absence of evidence is not failure.
            let verdict = if self.pending_write_errors[core] {
                Some(false)
            } else if commanded {
                co.requested.map(|rb| rb == self.last_commanded[core])
            } else {
                None
            };
            if let Some(ok) = verdict {
                self.health.record(SensorId::FreqActuator(core), ok, t);
            }
        }
        self.pending_write_errors.fill(false);
        for &(sensor, n) in &obs.retries {
            self.health.record_retries(sensor, n);
        }
    }

    /// Where the ladder says we should be, given current sensor health.
    fn target_level(&self) -> DegradationLevel {
        if !self.health.is_healthy(SensorId::PackagePower) {
            return DegradationLevel::UniformCap;
        }
        let per_core_lost = self.base.policy.needs_per_core_power()
            && self
                .app_cores
                .iter()
                .any(|&c| !self.health.is_healthy(SensorId::CorePower(c)));
        let perf_lost = self.base.policy.needs_performance_feedback()
            && self
                .app_cores
                .iter()
                .any(|&c| !self.health.is_healthy(SensorId::CoreCounters(c)));
        if per_core_lost || perf_lost {
            DegradationLevel::FrequencyOnly
        } else {
            DegradationLevel::Nominal
        }
    }

    /// Move to `target`, rebuilding the policy engine. The replacement
    /// engine resumes from the currently-programmed frequencies so the
    /// swap itself cannot overshoot the budget.
    fn transition(&mut self, target: DegradationLevel, time: Seconds) {
        let reason = match target {
            DegradationLevel::UniformCap => "package power unhealthy",
            DegradationLevel::FrequencyOnly => "per-core telemetry unhealthy",
            DegradationLevel::Nominal => "telemetry healthy again",
        };
        self.transitions.push(LadderEvent {
            time,
            from: self.level,
            to: target,
            reason,
        });
        self.note(DecisionEvent::LadderTransition {
            from: self.level.name(),
            to: target.name(),
            reason,
        });
        self.level = target;
        match target {
            DegradationLevel::UniformCap => {
                self.daemon = None;
                self.uniform_freq = self.blind_uniform_freq();
            }
            DegradationLevel::FrequencyOnly | DegradationLevel::Nominal => {
                let cfg = if target == DegradationLevel::Nominal {
                    self.base.clone()
                } else {
                    Self::fallback_config(&self.base)
                };
                let mut d = Daemon::new(cfg, &self.platform)
                    .expect("ladder configs validated at construction");
                // Build per-policy internal state, then overwrite the
                // targets with what the hardware is actually running.
                d.initial();
                if self.last_action.is_some() {
                    d.resume_from(&self.last_commanded);
                }
                self.daemon = Some(d);
            }
        }
    }

    /// The conservative frequency to pin managed cores at while blind:
    /// scale the anchor's mean frequency by its power-to-limit ratio,
    /// biased low by `uniform_safety`, floored at the grid minimum. The
    /// anchor — not the raw last command — is the basis, because the
    /// last command may be controller windup against a firmware clamp
    /// (see the `anchor` field). Power grows superlinearly in frequency,
    /// so the linear scale-down errs conservative. With no consistent
    /// operating point ever observed there is nothing to extrapolate
    /// from, and the only safe blind cap is the grid minimum.
    fn blind_uniform_freq(&self) -> KiloHertz {
        let grid = self.platform.grid;
        if self.last_action.is_none() || self.app_cores.is_empty() {
            return grid.min();
        }
        match self.anchor {
            Some((mean_khz, pkg)) if pkg.value() > 0.0 => {
                let scale = (self.base.power_limit.value() / pkg.value()).min(1.0)
                    * self.rcfg.uniform_safety;
                grid.floor(KiloHertz((mean_khz * scale) as u64))
                    .max(grid.min())
            }
            _ => grid.min(),
        }
    }

    /// Blind mode: one uniform frequency for every managed core. A stray
    /// successful package reading is used only to step *down*.
    fn uniform_action(&mut self, obs: &Observation) -> ControlAction {
        if let Some(p) = obs.package_power {
            if p > self.base.power_limit {
                self.uniform_freq = self
                    .platform
                    .grid
                    .step_down(self.uniform_freq)
                    .max(self.platform.grid.min());
            }
        }
        let n = self.platform.num_cores;
        let mut freqs = vec![self.platform.grid.min(); n];
        let mut parked = vec![true; n];
        for &c in &self.app_cores {
            freqs[c] = self.uniform_freq;
            parked[c] = self.is_quarantined(c);
        }
        ControlAction { freqs, parked }
    }

    /// Anti-windup: `Some(achieved)` iff counter telemetry proves the
    /// hardware did not execute the last command — some managed core ran
    /// far below what we asked (firmware clamp, PROCHOT). Raising the
    /// command further would only wind the controller up against the
    /// clamp and unwind as a package-power overshoot when it lifts. The
    /// returned vector is the per-core frequency the chip actually ran,
    /// grid-rounded and capped at the command, for re-anchoring. The
    /// 0.7 tolerance leaves normal turbo-ceiling gaps alone.
    fn actuator_overridden(&self, obs: &Observation) -> Option<Vec<KiloHertz>> {
        self.last_action.as_ref()?;
        let mut overridden = false;
        let mut achieved = self.last_commanded.clone();
        for &c in &self.app_cores {
            let commanded = self.last_commanded[c];
            let rates = obs.cores[c].rates.as_ref()?;
            if commanded == KiloHertz::ZERO {
                continue;
            }
            if (rates.active_freq.0 as f64) < 0.7 * commanded.0 as f64 {
                overridden = true;
            }
            achieved[c] = self
                .platform
                .grid
                .round(rates.active_freq)
                .clamp(self.platform.grid.min(), commanded);
        }
        overridden.then_some(achieved)
    }

    /// Full integrator reset after a detected override. The policy's
    /// feedback state (per-app power limits, learned levels) was trained
    /// against a chip that was not executing its commands, so it is
    /// garbage: a power-shares engine, for example, inflates its per-app
    /// limits to the per-core ceiling while the clamp suppresses the
    /// watts, then needs many over-budget intervals to deflate them once
    /// the clamp lifts. Rebuild the engine for the current ladder level
    /// and seed only its frequency targets from the achieved operating
    /// point; a stateful policy then falls back to its calibrated
    /// *initial distribution* on the next step, re-entering the budget
    /// envelope from below in one move instead of climbing from the
    /// floor and winding its integrators up all over again.
    fn reset_policy_state(&mut self, achieved: &[KiloHertz]) {
        if self.daemon.is_none() {
            return; // UniformCap carries no policy state to poison
        }
        let cfg = if self.level == DegradationLevel::Nominal {
            self.base.clone()
        } else {
            Self::fallback_config(&self.base)
        };
        let mut d =
            Daemon::new(cfg, &self.platform).expect("ladder configs validated at construction");
        // Deliberately no `d.initial()`: leaving the per-policy state
        // unprimed is what makes the next step re-run the initial
        // distribution (every policy bootstraps when stepped unprimed).
        d.resume_from(achieved);
        self.daemon = Some(d);
    }

    /// Daemon-driven levels. Transient gaps (a required reading missing
    /// while its sensor is still officially healthy) hold the previous
    /// action instead of redistributing on stale data.
    fn policy_action(&mut self, obs: &Observation) -> ControlAction {
        // A firmware override re-anchors the controller on the achieved
        // frequencies instead of stepping the policy: redistributing
        // against an actuator that is not listening is pure windup.
        if let Some(achieved) = self.actuator_overridden(obs) {
            self.note(DecisionEvent::ActuatorOverride);
            self.reset_policy_state(&achieved);
            let mut action = self
                .last_action
                .clone()
                .expect("override check requires a previous action");
            action.freqs = achieved;
            return self.quarantine_overlay(action);
        }
        let needs_per_core =
            self.level == DegradationLevel::Nominal && self.base.policy.needs_per_core_power();
        let complete = obs.package_power.is_some()
            && (!needs_per_core || self.app_cores.iter().all(|&c| obs.cores[c].power.is_some()));
        if !complete {
            if let Some(prev) = &self.last_action {
                let mut held = prev.clone();
                let mut reason = "telemetry gap";
                // Blind while over budget: the last trusted package
                // reading exceeded the limit, so replaying the same
                // command verbatim just prolongs the violation until the
                // ladder demotes. Shed power by the over-budget ratio on
                // every held interval instead (power grows superlinearly
                // in frequency, so the linear scale errs conservative);
                // under-limit gaps still hold the action exactly.
                if let Some(p) = self.last_good_pkg {
                    if p > self.base.power_limit {
                        reason = "blind-hold shed";
                        let scale = self.base.power_limit.value() / p.value();
                        let grid = self.platform.grid;
                        for &c in &self.app_cores {
                            let khz = (held.freqs[c].0 as f64 * scale) as u64;
                            held.freqs[c] = grid.floor(KiloHertz(khz)).max(grid.min());
                        }
                    }
                }
                self.note(DecisionEvent::Held { reason });
                return self.quarantine_overlay(held);
            }
        }
        // Gate model learning on telemetry trust: the backfilled sample
        // below substitutes neutral values for failed reads, and folding
        // those (or readings from sensors the tracker already declared
        // unhealthy) into the learned power curves would corrupt them.
        // Frozen fits stay valid and thaw when telemetry recovers.
        let learn = self.health.is_healthy(SensorId::PackagePower)
            && obs.package_power.is_some()
            && self.app_cores.iter().all(|&c| {
                self.health.is_healthy(SensorId::CoreCounters(c)) && obs.cores[c].rates.is_some()
            })
            && (!self.platform.per_core_power
                || self
                    .app_cores
                    .iter()
                    .all(|&c| self.health.is_healthy(SensorId::CorePower(c))));
        let daemon = self.daemon.as_mut().expect("daemon present below uniform");
        daemon.set_learning(learn);
        let action = if complete {
            let sample = Self::backfill(obs, &self.last_commanded);
            daemon.step(&sample)
        } else {
            // No previous action and an incomplete first observation:
            // fall back to the initial distribution.
            daemon.initial()
        };
        let action = self.backstop(action, obs);
        self.quarantine_overlay(action)
    }

    /// Over-budget backstop. The paper's policies converge through
    /// model-based feedback, and their integrators can legitimately take
    /// several intervals to walk a mis-calibrated operating point (wrong
    /// uncore estimate, post-fault re-entry) back under the limit. One
    /// or two hot intervals are the policy's business; a *streak* of
    /// trusted over-limit package readings means waiting the policy out
    /// is indefensible, so cap its proposal core-by-core at the last
    /// command scaled down by the over-budget ratio. Power grows
    /// superlinearly in frequency, so the linear scale errs low; the
    /// `min` keeps any deeper cut the policy already chose.
    fn backstop(&mut self, mut action: ControlAction, obs: &Observation) -> ControlAction {
        if self.over_streak < self.rcfg.backstop_after {
            return action;
        }
        let Some(p) = obs.package_power else {
            return action;
        };
        self.note(DecisionEvent::Backstop {
            streak: self.over_streak,
        });
        let scale = self.base.power_limit.value() / p.value();
        let grid = self.platform.grid;
        for &c in &self.app_cores {
            let shed = grid
                .floor(KiloHertz((self.last_commanded[c].0 as f64 * scale) as u64))
                .max(grid.min());
            action.freqs[c] = action.freqs[c].min(shed);
        }
        action
    }

    /// Park cores whose write path is quarantined (they would otherwise
    /// free-run at a stale frequency outside the controller). Their
    /// frequency request is left in place so the backend keeps probing
    /// the write path and recovery is observable.
    fn quarantine_overlay(&self, mut action: ControlAction) -> ControlAction {
        for &c in &self.app_cores {
            if self.is_quarantined(c) {
                action.parked[c] = true;
            }
        }
        action
    }

    /// Build a complete [`Sample`] from an observation, filling gaps the
    /// active policy does not depend on with neutral values.
    fn backfill(obs: &Observation, last_commanded: &[KiloHertz]) -> Sample {
        let package = obs.package_power.expect("checked by caller");
        let cores = obs
            .cores
            .iter()
            .enumerate()
            .map(|(c, co)| CoreSample {
                rates: co.rates.unwrap_or(CoreRates {
                    active_freq: KiloHertz::ZERO,
                    c0_residency: 0.0,
                    ips: 0.0,
                }),
                power: co.power,
                requested_freq: co.requested.unwrap_or(last_commanded[c]),
            })
            .collect();
        Sample {
            time: obs.time,
            interval: obs.interval,
            package_power: package,
            cores_power: package,
            cores,
        }
    }

    fn commit(&mut self, action: ControlAction) -> ControlAction {
        self.last_commanded = action.freqs.clone();
        self.last_action = Some(action.clone());
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppSpec;

    fn ryzen_like() -> PlatformSpec {
        let mut p = PlatformSpec::ryzen();
        p.shared_pstate_slots = None;
        p
    }

    fn cfg(policy: PolicyKind) -> DaemonConfig {
        DaemonConfig::new(
            policy,
            Watts(30.0),
            vec![
                AppSpec::new("a", 0).with_shares(70).with_baseline_ips(2e9),
                AppSpec::new("b", 1).with_shares(30).with_baseline_ips(2e9),
            ],
        )
    }

    fn obs(
        t: f64,
        pkg: Option<f64>,
        core_power: [Option<f64>; 2],
        num_cores: usize,
    ) -> Observation {
        let cores = (0..num_cores)
            .map(|c| CoreObservation {
                rates: Some(CoreRates {
                    active_freq: KiloHertz::from_mhz(2000),
                    c0_residency: 1.0,
                    ips: 1e9,
                }),
                power: core_power.get(c).copied().flatten().map(Watts),
                requested: None, // no read-back in these unit tests
            })
            .collect();
        Observation {
            time: Seconds(t),
            interval: Seconds(1.0),
            package_power: pkg.map(Watts),
            cores,
            retries: Vec::new(),
        }
    }

    #[test]
    fn retry_policy_counts_attempts() {
        let r = RetryPolicy::default();
        let mut fails = 2;
        let (out, attempts) = r.run(|| -> Result<u32, ()> {
            if fails > 0 {
                fails -= 1;
                Err(())
            } else {
                Ok(7)
            }
        });
        assert_eq!(out, Ok(7));
        assert_eq!(attempts, 3);

        let (out, attempts) = r.run(|| -> Result<u32, ()> { Err(()) });
        assert!(out.is_err());
        assert_eq!(attempts, 3);

        let none = RetryPolicy::none();
        let (_, attempts) = none.run(|| -> Result<u32, ()> { Err(()) });
        assert_eq!(attempts, 1);
    }

    #[test]
    fn backoff_is_exponential() {
        let r = RetryPolicy {
            max_attempts: 4,
            base_delay: Seconds(0.001),
            multiplier: 2.0,
        };
        assert_eq!(r.total_backoff(1), Seconds(0.0));
        assert!((r.total_backoff(3).value() - 0.003).abs() < 1e-12);
        assert!((r.total_backoff(4).value() - 0.007).abs() < 1e-12);
    }

    #[test]
    fn per_core_loss_demotes_to_frequency_shares_and_back() {
        let plat = ryzen_like();
        let mut rd = ResilientDaemon::new(
            cfg(PolicyKind::PowerShares),
            &plat,
            ResilienceConfig::default(),
        )
        .unwrap();
        rd.initial();
        assert_eq!(rd.level(), DegradationLevel::Nominal);

        let mut t = 1.0;
        // Two failed intervals: still nominal (holds last action).
        for _ in 0..2 {
            rd.step(&obs(t, Some(25.0), [None, Some(3.0)], plat.num_cores));
            t += 1.0;
        }
        assert_eq!(rd.level(), DegradationLevel::Nominal);
        // Third consecutive failure demotes.
        rd.step(&obs(t, Some(25.0), [None, Some(3.0)], plat.num_cores));
        t += 1.0;
        assert_eq!(rd.level(), DegradationLevel::FrequencyOnly);
        assert_eq!(rd.active_policy(), "freq-shares");

        // Recovery: five healthy intervals promote back.
        for _ in 0..4 {
            rd.step(&obs(t, Some(25.0), [Some(5.0), Some(3.0)], plat.num_cores));
            t += 1.0;
            assert_eq!(rd.level(), DegradationLevel::FrequencyOnly, "hysteresis");
        }
        rd.step(&obs(t, Some(25.0), [Some(5.0), Some(3.0)], plat.num_cores));
        assert_eq!(rd.level(), DegradationLevel::Nominal);
        assert_eq!(rd.transitions().len(), 2);
    }

    #[test]
    fn package_loss_forces_uniform_cap_never_raised() {
        let plat = ryzen_like();
        let mut rd = ResilientDaemon::new(
            cfg(PolicyKind::FrequencyShares),
            &plat,
            ResilienceConfig::default(),
        )
        .unwrap();
        rd.initial();
        let mut t = 1.0;
        // Establish a healthy operating point.
        for _ in 0..3 {
            rd.step(&obs(t, Some(28.0), [Some(5.0), Some(3.0)], plat.num_cores));
            t += 1.0;
        }
        // Lose package power.
        let mut last = None;
        for _ in 0..6 {
            last = Some(rd.step(&obs(t, None, [Some(5.0), Some(3.0)], plat.num_cores)));
            t += 1.0;
        }
        assert_eq!(rd.level(), DegradationLevel::UniformCap);
        let a = last.unwrap();
        assert_eq!(a.freqs[0], a.freqs[1], "uniform across managed cores");
        assert!(!a.parked[0] && !a.parked[1]);
        assert!(a.parked[2..].iter().all(|&p| p), "unmanaged cores sleep");
        let blind = a.freqs[0];

        // Blind intervals never raise the cap.
        let a = rd.step(&obs(t, None, [None, None], plat.num_cores));
        assert!(a.freqs[0] <= blind);
        assert_eq!(rd.active_policy(), "uniform-cap");
    }

    #[test]
    fn stray_over_limit_reading_steps_blind_cap_down() {
        let plat = ryzen_like();
        let mut rd = ResilientDaemon::new(
            cfg(PolicyKind::FrequencyShares),
            &plat,
            ResilienceConfig::default(),
        )
        .unwrap();
        rd.initial();
        let mut t = 1.0;
        for _ in 0..3 {
            rd.step(&obs(t, Some(28.0), [None, None], plat.num_cores));
            t += 1.0;
        }
        for _ in 0..3 {
            rd.step(&obs(t, None, [None, None], plat.num_cores));
            t += 1.0;
        }
        assert_eq!(rd.level(), DegradationLevel::UniformCap);
        let before = rd.step(&obs(t, None, [None, None], plat.num_cores)).freqs[0];
        t += 1.0;
        // One spurious over-limit reading arrives while still unhealthy.
        let after = rd
            .step(&obs(t, Some(80.0), [None, None], plat.num_cores))
            .freqs[0];
        assert!(
            after < before || before == plat.grid.min(),
            "over-limit reading must step the blind cap down ({before} -> {after})"
        );
    }

    #[test]
    fn write_error_quarantines_and_readback_recovers() {
        let plat = ryzen_like();
        let mut rd = ResilientDaemon::new(
            cfg(PolicyKind::FrequencyShares),
            &plat,
            ResilienceConfig::default(),
        )
        .unwrap();
        rd.initial();
        let mut t = 1.0;
        for _ in 0..3 {
            rd.report_write_error(1);
            let a = rd.step(&obs(t, Some(25.0), [Some(5.0), Some(3.0)], plat.num_cores));
            t += 1.0;
            if rd.is_quarantined(1) {
                assert!(a.parked[1], "quarantined core parks");
            }
        }
        assert!(rd.is_quarantined(1));
        assert_eq!(rd.level(), DegradationLevel::Nominal, "cap path unaffected");

        // Read-backs that match the command prove recovery.
        for _ in 0..5 {
            let mut o = obs(t, Some(25.0), [Some(5.0), Some(3.0)], plat.num_cores);
            for (c, co) in o.cores.iter_mut().enumerate() {
                co.requested = Some(rd.last_commanded[c]);
            }
            rd.step(&o);
            t += 1.0;
        }
        assert!(!rd.is_quarantined(1), "matching read-backs unpark the core");
    }

    #[test]
    fn firmware_clamp_does_not_wind_the_controller_up() {
        // A thermal clamp suppresses both power and the executed
        // frequency. A naive controller chases the missing watts and
        // winds its commands up to maximum — which unwinds as a package
        // overshoot the instant the clamp lifts, and poisons the blind
        // cap if package telemetry dies before recovery. The resilient
        // daemon must instead re-anchor on what the chip actually ran.
        let plat = ryzen_like();
        let mut rd = ResilientDaemon::new(
            cfg(PolicyKind::FrequencyShares),
            &plat,
            ResilienceConfig::default(),
        )
        .unwrap();
        rd.initial();
        let mut t = 1.0;
        // Healthy, consistent intervals: active freq = what we commanded.
        for _ in 0..3 {
            let mut o = obs(t, Some(28.0), [Some(5.0), Some(3.0)], plat.num_cores);
            for (c, co) in o.cores.iter_mut().enumerate() {
                if let Some(r) = &mut co.rates {
                    r.active_freq = rd.last_commanded[c];
                }
            }
            rd.step(&o);
            t += 1.0;
        }
        let anchored_mean = (rd.last_commanded[0].0 + rd.last_commanded[1].0) / 2;
        let pre_clamp_max = rd.last_commanded[0].max(rd.last_commanded[1]);
        // Firmware clamp: power collapses, chip executes the grid
        // minimum regardless of commands. Re-anchoring alternates with a
        // bounded one-step probe (active == commanded right after a
        // re-anchor, so the clamp is momentarily undetectable) — what
        // must never happen is a ratchet back toward maximum.
        let mut reanchored = 0;
        let mut clamp_max = KiloHertz::ZERO;
        for _ in 0..6 {
            let mut o = obs(t, Some(5.0), [Some(1.0), Some(1.0)], plat.num_cores);
            for co in o.cores.iter_mut() {
                if let Some(r) = &mut co.rates {
                    r.active_freq = plat.grid.min();
                }
            }
            let a = rd.step(&o);
            if a.freqs[0] == plat.grid.min() && a.freqs[1] <= plat.grid.min() {
                reanchored += 1;
            }
            clamp_max = clamp_max.max(a.freqs[0]).max(a.freqs[1]);
            t += 1.0;
        }
        assert!(
            reanchored >= 3,
            "most clamped intervals must re-anchor on the achieved minimum, got {reanchored}/6"
        );
        assert!(
            clamp_max.0 * 2 <= pre_clamp_max.0,
            "probe steps must stay far below the pre-clamp command \
             ({clamp_max} vs {pre_clamp_max})"
        );
        // Package telemetry dies mid-clamp: demote to the blind cap. The
        // cap extrapolates from the pre-clamp anchor, never from any
        // wound-up command.
        let mut last = None;
        for _ in 0..3 {
            last = Some(rd.step(&obs(t, None, [None, None], plat.num_cores)));
            t += 1.0;
        }
        assert_eq!(rd.level(), DegradationLevel::UniformCap);
        let blind = last.unwrap().freqs[0];
        assert!(
            blind.0 <= anchored_mean,
            "blind cap {blind} must not exceed the pre-clamp anchor ({anchored_mean} kHz)"
        );
    }

    #[test]
    fn over_budget_streak_trips_the_backstop() {
        // A policy whose model is mis-calibrated for the chip can sit
        // above the limit for many intervals while its integrators walk
        // back down. The wrapper tolerates `backstop_after - 1` trusted
        // over-limit readings, then caps the policy's proposal at the
        // last command scaled by the over-budget ratio.
        let plat = ryzen_like();
        let mut rd = ResilientDaemon::new(
            cfg(PolicyKind::FrequencyShares),
            &plat,
            ResilienceConfig::default(),
        )
        .unwrap();
        rd.initial();
        let consistent = |rd: &mut ResilientDaemon, t: f64, pkg: f64| {
            let mut o = obs(t, Some(pkg), [Some(9.0), Some(7.0)], plat.num_cores);
            for (c, co) in o.cores.iter_mut().enumerate() {
                if let Some(r) = &mut co.rates {
                    r.active_freq = rd.last_commanded[c];
                }
            }
            rd.step(&o)
        };
        consistent(&mut rd, 1.0, 25.0); // under limit: streak stays 0
        let a1 = consistent(&mut rd, 2.0, 40.0); // first hot reading: policy's call
        let a2 = consistent(&mut rd, 3.0, 40.0); // second: backstop engages
        for c in [0usize, 1] {
            let shed = plat
                .grid
                .floor(KiloHertz((a1.freqs[c].0 as f64 * 30.0 / 40.0) as u64))
                .max(plat.grid.min());
            assert!(
                a2.freqs[c] <= shed,
                "core {c}: {} must be capped at the shed point {} after a \
                 sustained over-budget streak",
                a2.freqs[c],
                shed
            );
        }
    }

    #[test]
    fn transient_gap_holds_last_action() {
        let plat = ryzen_like();
        let mut rd = ResilientDaemon::new(
            cfg(PolicyKind::FrequencyShares),
            &plat,
            ResilienceConfig::default(),
        )
        .unwrap();
        let init = rd.initial();
        // One missing package reading: hold, do not redistribute. The
        // counters confirm the command executed, so the anti-windup
        // override stays out of the way.
        let mut o = obs(1.0, None, [None, None], plat.num_cores);
        for (c, co) in o.cores.iter_mut().enumerate() {
            if let Some(r) = &mut co.rates {
                r.active_freq = rd.last_commanded[c];
            }
        }
        let a = rd.step(&o);
        assert_eq!(a.freqs, init.freqs, "single gap holds the last action");
        assert_eq!(rd.level(), DegradationLevel::Nominal);
    }

    #[test]
    fn telemetry_outage_does_not_corrupt_learned_curve() {
        // A partial counter outage is the nastiest case for the online
        // model: with core 0's counters gone, the backfilled sample pairs
        // core 1's effective GHz with *both* cores' package watts — a
        // plausible-looking but wrong observation. The health gate must
        // freeze learning for the whole outage window (including the
        // intervals before the tracker formally demotes the sensor) and
        // thaw it on recovery.
        let plat = ryzen_like();
        let mut rd = ResilientDaemon::new(
            cfg(PolicyKind::FrequencyShares),
            &plat,
            ResilienceConfig::default(),
        )
        .unwrap();
        rd.initial();
        // Observations where the chip verifiably runs what was commanded,
        // so the anti-windup override (which rebuilds the engine and its
        // model) stays out of the way.
        let consistent = |rd: &mut ResilientDaemon, t: f64| {
            let mut o = obs(t, Some(25.0), [Some(5.0), Some(3.0)], plat.num_cores);
            for (c, co) in o.cores.iter_mut().enumerate() {
                if let Some(r) = &mut co.rates {
                    r.active_freq = rd.last_commanded[c];
                }
            }
            o
        };
        let mut t = 1.0;
        for _ in 0..15 {
            let o = consistent(&mut rd, t);
            rd.step(&o);
            t += 1.0;
        }
        let before = rd.model_snapshot().unwrap().package;
        assert!(before.observations >= 10, "healthy window must feed fits");

        // Outage: core 0's counters fail for 10 intervals while package
        // power keeps reporting.
        for _ in 0..10 {
            let mut o = consistent(&mut rd, t);
            o.cores[0].rates = None;
            rd.step(&o);
            t += 1.0;
        }
        let during = rd.model_snapshot().unwrap().package;
        assert_eq!(
            during.observations, before.observations,
            "no sample from the outage window may enter the fit"
        );
        assert_eq!(
            during.theta, before.theta,
            "coefficients frozen bit-for-bit"
        );

        // Recovery thaws learning.
        for _ in 0..8 {
            let o = consistent(&mut rd, t);
            rd.step(&o);
            t += 1.0;
        }
        let after = rd.model_snapshot().unwrap().package;
        assert!(
            after.observations > before.observations,
            "learning must resume once telemetry is healthy again"
        );
    }

    #[test]
    fn prevalidates_fallback_config() {
        // PowerShares on a per-core-power platform validates both the
        // base and the frequency-shares fallback.
        let plat = ryzen_like();
        assert!(ResilientDaemon::new(
            cfg(PolicyKind::PowerShares),
            &plat,
            ResilienceConfig::default()
        )
        .is_ok());
        // An invalid base config is rejected outright.
        let mut bad = cfg(PolicyKind::PowerShares);
        bad.apps[0].shares = 0;
        assert!(ResilientDaemon::new(bad, &plat, ResilienceConfig::default()).is_err());
    }
}
