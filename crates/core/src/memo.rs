//! Decision memoization: the control-plane half of the fleet fast path
//! (DESIGN.md §16).
//!
//! Control traffic in steady fleets is overwhelmingly repetitive: once a
//! node converges, the same telemetry arrives interval after interval and
//! the policy recomputes the same answer. [`DecisionMemo`] fingerprints
//! each interval's *complete* decision inputs — per-app telemetry
//! (quantized at ε), the budget, the share vector, the previous targets,
//! the model snapshot generation, and crucially the policy's own mutable
//! state ([`Policy::memo_state`]) — and, when the fingerprint repeats,
//! replays the previously computed [`PolicyOutput`] without running the
//! policy at all.
//!
//! ## Why replay is exact at ε = 0
//!
//! Every policy step is a deterministic function `(state, input) →
//! (output, state')`. The fingerprint covers both `state` and `input`
//! bit-for-bit (f64 fields enter as [`f64::to_bits`]), so a repeated
//! fingerprint means the policy would run from *exactly* the `(state,
//! input)` pair it ran from last time — producing the same `output` and
//! the same `state'`. And because the fingerprint matched, `state' ==
//! state` (the recorded step already mapped this state to itself:
//! a matching fingerprint requires the state words to equal the
//! *post-step* state recorded last interval, which is only possible if
//! that step was a state fixpoint). Skipping the policy and replaying
//! the stored output is therefore bit-identical, state included. This is
//! proven against golden replays for all six policies in
//! `tests/memo.rs`.
//!
//! ## The approximate regime (ε > 0)
//!
//! With ε > 0 telemetry fields are bucketed into relative bands of width
//! ε before fingerprinting (mirroring `DeltaRollup`'s exact/approximate
//! split in the telemetry plane): a hit now means "inputs within ε of
//! the recorded interval, state identical", and the replayed action can
//! differ from what the policy would have chosen by the amount the
//! policy amplifies an ε input perturbation. `tests/proptests.rs` bounds
//! this per-interval action drift empirically.

use pap_simcpu::freq::KiloHertz;

use crate::policy::PolicyOutput;

/// Hit/miss counters for one [`DecisionMemo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Intervals answered by replaying the stored output.
    pub hits: u64,
    /// Intervals that ran the policy (and re-armed the memo).
    pub misses: u64,
}

impl MemoStats {
    /// Fraction of intervals answered from the memo.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another daemon's counters into this one (cluster reports).
    pub fn merge(&mut self, other: MemoStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Memoizes one daemon's control decisions. See the module docs for the
/// exactness argument; the daemon owns the integration (fingerprint
/// construction order is part of the contract and lives in one place,
/// `Daemon::step_compute`).
///
/// All buffers reach steady-state capacity after the first interval, so
/// the hot path performs zero heap allocations (enforced alongside the
/// daemon's own guarantee in `tests/hotpath.rs`).
#[derive(Debug, Clone)]
pub struct DecisionMemo {
    epsilon: f64,
    /// Reciprocal of `ln(1 + ε)`, precomputed off-path.
    inv_ln: f64,
    /// Fingerprint being assembled for the current interval.
    fp: Vec<u64>,
    /// Fingerprint of the last interval that ran the policy.
    last: Vec<u64>,
    out_freqs: Vec<KiloHertz>,
    out_parked: Vec<bool>,
    valid: bool,
    stats: MemoStats,
}

impl DecisionMemo {
    /// A memo quantizing telemetry at relative width `epsilon`
    /// (`0.0` = exact bits).
    pub fn new(epsilon: f64) -> DecisionMemo {
        DecisionMemo {
            epsilon,
            inv_ln: if epsilon > 0.0 {
                1.0 / (1.0 + epsilon).ln()
            } else {
                0.0
            },
            fp: Vec::new(),
            last: Vec::new(),
            out_freqs: Vec::new(),
            out_parked: Vec::new(),
            valid: false,
            stats: MemoStats::default(),
        }
    }

    /// The configured quantization width.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Start a fresh fingerprint for this interval.
    pub fn begin(&mut self) {
        self.fp.clear();
    }

    /// Append a word that must match exactly (configuration, controller
    /// state, discriminants).
    #[inline]
    pub fn push_exact(&mut self, word: u64) {
        self.fp.push(word);
    }

    /// Append a telemetry field: exact bits at ε = 0, the containing
    /// relative-error bucket otherwise. Zero and non-finite values pass
    /// through as raw bits in both modes (they have no relative band,
    /// and NaN payloads must not alias a real bucket).
    #[inline]
    pub fn push_quant(&mut self, x: f64) {
        self.fp.push(self.quantize(x));
    }

    fn quantize(&self, x: f64) -> u64 {
        if self.epsilon <= 0.0 || x == 0.0 || !x.is_finite() {
            return x.to_bits();
        }
        // Bucket k holds all magnitudes in [(1+ε)^k, (1+ε)^(k+1)):
        // two values land together only if they differ by < ε relative.
        let bucket = (x.abs().ln() * self.inv_ln).floor() as i64;
        ((x.is_sign_negative() as u64) << 63) | (bucket as u64 & (u64::MAX >> 1))
    }

    /// Direct access to the fingerprint under construction, for state
    /// emitters ([`crate::policy::Policy::memo_state`]).
    pub fn fingerprint_mut(&mut self) -> &mut Vec<u64> {
        &mut self.fp
    }

    /// Whether the assembled fingerprint matches the recorded interval.
    pub fn lookup(&self) -> bool {
        self.valid && self.fp == self.last
    }

    /// Copy the stored output into `out` (a hit). Caller must have seen
    /// [`DecisionMemo::lookup`] return true this interval.
    pub fn replay_into(&mut self, out: &mut PolicyOutput) {
        self.stats.hits += 1;
        out.freqs.clear();
        out.freqs.extend_from_slice(&self.out_freqs);
        out.parked.clear();
        out.parked.extend_from_slice(&self.out_parked);
    }

    /// Record a freshly computed output against the assembled
    /// fingerprint (a miss).
    pub fn record(&mut self, out: &PolicyOutput) {
        self.stats.misses += 1;
        std::mem::swap(&mut self.fp, &mut self.last);
        self.out_freqs.clear();
        self.out_freqs.extend_from_slice(&out.freqs);
        self.out_parked.clear();
        self.out_parked.extend_from_slice(&out.parked);
        self.valid = true;
    }

    /// Drop the stored entry. Called on any state change the fingerprint
    /// does not cover (e.g. model replacement resetting its generation
    /// counter).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(freqs: &[u64]) -> PolicyOutput {
        PolicyOutput {
            freqs: freqs.iter().map(|&f| KiloHertz(f)).collect(),
            parked: vec![false; freqs.len()],
        }
    }

    #[test]
    fn exact_mode_hits_only_on_identical_bits() {
        let mut m = DecisionMemo::new(0.0);
        m.begin();
        m.push_quant(45.000000001);
        assert!(!m.lookup(), "empty memo never hits");
        m.record(&output(&[2_000_000]));

        m.begin();
        m.push_quant(45.000000001);
        assert!(m.lookup(), "identical bits repeat");
        let mut out = PolicyOutput::default();
        m.replay_into(&mut out);
        assert_eq!(out.freqs, vec![KiloHertz(2_000_000)]);

        m.begin();
        m.push_quant(45.000000002); // 1 ulp-ish change
        assert!(!m.lookup(), "exact mode must see any bit change");
        assert_eq!(m.stats(), MemoStats { hits: 1, misses: 1 });
    }

    #[test]
    fn epsilon_buckets_absorb_small_noise() {
        let mut m = DecisionMemo::new(0.01);
        m.begin();
        // A relative perturbation far below ε/bucket-width cannot cross
        // a band boundary here (45.0 sits at fractional bucket ~.57).
        m.push_quant(45.0);
        m.record(&output(&[1_500_000]));

        m.begin();
        m.push_quant(45.0 * (1.0 + 1e-7));
        assert!(m.lookup(), "sub-band noise must repeat the fingerprint");

        m.begin();
        m.push_quant(50.0); // 11% change: different band
        assert!(!m.lookup());

        // Two values in the same band differ by less than ε relative:
        // the band that absorbs noise also bounds it.
        let q = |x: f64| {
            let mm = DecisionMemo::new(0.01);
            mm.quantize(x)
        };
        for i in 0..200 {
            let x = 20.0 + i as f64 * 0.37;
            assert_ne!(q(x), q(x * 1.02), "a 2ε change must always miss");
        }
    }

    #[test]
    fn epsilon_separates_signs_zero_and_nan() {
        let m = DecisionMemo::new(0.05);
        assert_ne!(m.quantize(1.0), m.quantize(-1.0), "sign must split");
        assert_eq!(m.quantize(0.0), 0.0f64.to_bits());
        assert_eq!(m.quantize(f64::NAN), f64::NAN.to_bits());
        assert_ne!(m.quantize(f64::NAN), m.quantize(1.0));
    }

    #[test]
    fn invalidate_forces_a_miss() {
        let mut m = DecisionMemo::new(0.0);
        m.begin();
        m.push_exact(7);
        m.record(&output(&[800_000]));
        m.invalidate();
        m.begin();
        m.push_exact(7);
        assert!(!m.lookup(), "invalidated entries never replay");
    }

    #[test]
    fn fingerprint_length_participates() {
        let mut m = DecisionMemo::new(0.0);
        m.begin();
        m.push_exact(1);
        m.push_exact(2);
        m.record(&output(&[800_000]));
        m.begin();
        m.push_exact(1);
        assert!(!m.lookup(), "shorter fingerprint must not alias");
    }

    #[test]
    fn stats_hit_rate_and_merge() {
        let mut a = MemoStats { hits: 3, misses: 1 };
        assert!((a.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(MemoStats::default().hit_rate(), 0.0);
        a.merge(MemoStats { hits: 1, misses: 3 });
        assert_eq!(a, MemoStats { hits: 4, misses: 4 });
    }
}
