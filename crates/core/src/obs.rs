//! Control-plane decision tracing.
//!
//! Chip-side telemetry (`pap_telemetry::trace`) records what the hardware
//! did; this module records *why the controller did what it did*. Each
//! control interval the daemon (and the resilience ladder and cluster
//! arbiter above it) can emit one [`DecisionRecord`]: the budget it was
//! enforcing, the power it measured, every app's frequency target before
//! and after quantization and slot clustering, which translation answered
//! the budget-to-frequency query and whether the learned model was
//! confident, plus discrete [`DecisionEvent`]s — short samples, actuator
//! overrides, ladder transitions, revocations.
//!
//! Observability is strictly **off-path**: every hook in the controllers
//! is guarded by "is an observer attached?", so with sinks disabled the
//! emitted `ControlAction` stream is bit-identical to a build without
//! this module (enforced by a regression test and the `ext_obs` bench).
//!
//! Two sinks consume a trace: [`DecisionTrace::to_jsonl`] renders one
//! JSON object per line for post-mortems, and an optional shared
//! [`ControlMetrics`] registry aggregates counters and latency/overshoot
//! histograms for a Prometheus-style exposition.

use std::fmt::Write as _;
use std::sync::Arc;

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::metrics::ControlMetrics;

/// One app's frequency decision within a control interval, at each stage
/// of the actuation funnel.
#[derive(Debug, Clone, PartialEq)]
pub struct AppDecision {
    /// Core the app is pinned to.
    pub core: usize,
    /// Raw policy output, before any quantization.
    pub requested: KiloHertz,
    /// After rounding to the platform's P-state grid.
    pub quantized: KiloHertz,
    /// Final per-core command, after shared-slot clustering (Ryzen).
    pub granted: KiloHertz,
    /// Whether the app's core was parked this interval.
    pub parked: bool,
}

/// A discrete control-plane event attached to a [`DecisionRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionEvent {
    /// A telemetry sample carried fewer cores than an app's pin.
    ShortSample {
        /// Minimum core count the app set needs.
        expected: usize,
        /// Core count the sample actually carried.
        got: usize,
    },
    /// A core's achieved frequency saturated below its target.
    Saturated {
        /// The saturated core.
        core: usize,
        /// The commanded target.
        target: KiloHertz,
        /// What the core actually achieved.
        achieved: KiloHertz,
    },
    /// The degradation ladder moved.
    LadderTransition {
        /// Level before the move.
        from: &'static str,
        /// Level after the move.
        to: &'static str,
        /// Why the ladder moved.
        reason: &'static str,
    },
    /// The over-limit backstop rescaled the action.
    Backstop {
        /// Consecutive over-limit intervals that triggered it.
        streak: u32,
    },
    /// The previous action was held/reused instead of recomputed.
    Held {
        /// Why the action was held.
        reason: &'static str,
    },
    /// An external agent moved the actuators; policy state was reset.
    ActuatorOverride,
    /// The cluster allocator revoked part of a node's unused claim.
    Revocation {
        /// Node whose claim was revoked.
        node: usize,
        /// The reduced claim ceiling.
        ceiling: Watts,
        /// The node's measured draw that justified revocation.
        draw: Watts,
    },
    /// The cluster allocator retargeted a node's power cap.
    Retarget {
        /// The retargeted node.
        node: usize,
        /// Previous cap.
        from: Watts,
        /// New cap.
        to: Watts,
    },
    /// An app's shares were retargeted mid-run (SLO controller
    /// boost/shed, tenant churn).
    ShareRetarget {
        /// Core of the retargeted app.
        core: usize,
        /// Previous shares.
        from: u32,
        /// New shares.
        to: u32,
    },
    /// A node was taken out of service; its apps were drained through
    /// normal admission.
    Quarantine {
        /// The quarantined node.
        node: usize,
        /// Apps evicted from the node.
        evicted: usize,
        /// Evicted apps that found a home on another node.
        requeued: usize,
        /// Evicted apps the rest of the cluster could not absorb.
        dropped: usize,
    },
    /// A quarantined node was returned to the placement pool.
    Restore {
        /// The restored node.
        node: usize,
    },
}

impl DecisionEvent {
    /// Short kind tag used as the JSON `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            DecisionEvent::ShortSample { .. } => "short_sample",
            DecisionEvent::Saturated { .. } => "saturated",
            DecisionEvent::LadderTransition { .. } => "ladder_transition",
            DecisionEvent::Backstop { .. } => "backstop",
            DecisionEvent::Held { .. } => "held",
            DecisionEvent::ActuatorOverride => "actuator_override",
            DecisionEvent::Revocation { .. } => "revocation",
            DecisionEvent::Retarget { .. } => "retarget",
            DecisionEvent::ShareRetarget { .. } => "share_retarget",
            DecisionEvent::Quarantine { .. } => "quarantine",
            DecisionEvent::Restore { .. } => "restore",
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"kind\":\"{}\"", self.kind());
        match self {
            DecisionEvent::ShortSample { expected, got } => {
                let _ = write!(out, ",\"expected\":{expected},\"got\":{got}");
            }
            DecisionEvent::Saturated {
                core,
                target,
                achieved,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"target_khz\":{},\"achieved_khz\":{}",
                    target.khz(),
                    achieved.khz()
                );
            }
            DecisionEvent::LadderTransition { from, to, reason } => {
                let _ = write!(
                    out,
                    ",\"from\":\"{from}\",\"to\":\"{to}\",\"reason\":\"{reason}\""
                );
            }
            DecisionEvent::Backstop { streak } => {
                let _ = write!(out, ",\"streak\":{streak}");
            }
            DecisionEvent::Held { reason } => {
                let _ = write!(out, ",\"reason\":\"{reason}\"");
            }
            DecisionEvent::ActuatorOverride => {}
            DecisionEvent::Revocation {
                node,
                ceiling,
                draw,
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"ceiling_w\":{},\"draw_w\":{}",
                    ceiling.value(),
                    draw.value()
                );
            }
            DecisionEvent::Retarget { node, from, to } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"from_w\":{},\"to_w\":{}",
                    from.value(),
                    to.value()
                );
            }
            DecisionEvent::ShareRetarget { core, from, to } => {
                let _ = write!(out, ",\"core\":{core},\"from\":{from},\"to\":{to}");
            }
            DecisionEvent::Quarantine {
                node,
                evicted,
                requeued,
                dropped,
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"evicted\":{evicted},\"requeued\":{requeued},\"dropped\":{dropped}"
                );
            }
            DecisionEvent::Restore { node } => {
                let _ = write!(out, ",\"node\":{node}");
            }
        }
        out.push('}');
    }
}

/// One control interval's complete decision: what was commanded, under
/// which budget and translation, and which events accompanied it.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Simulated time of the interval.
    pub time: Seconds,
    /// Emitting layer: `"daemon"`, `"resilience"`, `"cluster"` (one per
    /// rebalance round) or `"cluster-ops"` (quarantine/restore).
    pub source: &'static str,
    /// Active policy short name.
    pub policy: &'static str,
    /// Degradation-ladder level, when the resilience layer emits.
    pub level: Option<&'static str>,
    /// Enforced power budget.
    pub budget: Watts,
    /// Measured package power, when a sample was available.
    pub measured: Option<Watts>,
    /// Translation answering budget-to-frequency queries.
    pub translation: &'static str,
    /// Whether the online model's package fit was confident.
    pub model_confident: bool,
    /// Per-app decisions through the actuation funnel.
    pub apps: Vec<AppDecision>,
    /// Discrete events this interval.
    pub events: Vec<DecisionEvent>,
    /// Wall-clock cost of computing the decision.
    pub latency: Seconds,
}

impl DecisionRecord {
    /// Render as one JSON object (no trailing newline). Hand-rolled —
    /// every field is a number, bool or static identifier, so no escaping
    /// is needed and the repo stays free of a serialization dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"time_s\":{},\"source\":\"{}\",\"policy\":\"{}\"",
            self.time.value(),
            self.source,
            self.policy
        );
        match self.level {
            Some(l) => {
                let _ = write!(out, ",\"level\":\"{l}\"");
            }
            None => out.push_str(",\"level\":null"),
        }
        let _ = write!(out, ",\"budget_w\":{}", self.budget.value());
        match self.measured {
            Some(w) => {
                let _ = write!(out, ",\"measured_w\":{}", w.value());
            }
            None => out.push_str(",\"measured_w\":null"),
        }
        let _ = write!(
            out,
            ",\"translation\":\"{}\",\"model_confident\":{}",
            self.translation, self.model_confident
        );
        out.push_str(",\"apps\":[");
        for (i, a) in self.apps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"core\":{},\"requested_khz\":{},\"quantized_khz\":{},\"granted_khz\":{},\"parked\":{}}}",
                a.core,
                a.requested.khz(),
                a.quantized.khz(),
                a.granted.khz(),
                a.parked
            );
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(&mut out);
        }
        let _ = write!(out, "],\"latency_s\":{}}}", self.latency.value());
        out
    }
}

/// An in-memory decision log plus an optional metrics registry. Attach
/// one to a [`Daemon`](crate::daemon::Daemon), a
/// [`ResilientDaemon`](crate::resilience::ResilientDaemon) or a cluster,
/// and every pushed record both accumulates for the JSONL sink and bumps
/// the shared [`ControlMetrics`].
#[derive(Debug, Clone, Default)]
pub struct DecisionTrace {
    records: Vec<DecisionRecord>,
    metrics: Option<Arc<ControlMetrics>>,
}

impl DecisionTrace {
    /// A trace with no metrics registry (JSONL sink only).
    pub fn new() -> DecisionTrace {
        DecisionTrace::default()
    }

    /// A trace that also bumps a shared metrics registry on every push.
    pub fn with_metrics(metrics: Arc<ControlMetrics>) -> DecisionTrace {
        DecisionTrace {
            records: Vec::new(),
            metrics: Some(metrics),
        }
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&ControlMetrics> {
        self.metrics.as_deref()
    }

    /// Append a record, updating the metrics registry when attached.
    pub fn push(&mut self, record: DecisionRecord) {
        if let Some(m) = &self.metrics {
            m.decisions.inc();
            m.decision_latency.record(record.latency.value());
            if let Some(p) = record.measured {
                let over = p.value() - record.budget.value();
                if over > 0.0 {
                    m.overshoot_watts.record(over);
                }
            }
            for ev in &record.events {
                match ev {
                    DecisionEvent::ShortSample { .. } => m.short_samples.inc(),
                    DecisionEvent::Saturated { .. } => m.saturations.inc(),
                    DecisionEvent::LadderTransition { .. } => m.ladder_transitions.inc(),
                    DecisionEvent::Backstop { .. } => m.backstops.inc(),
                    DecisionEvent::Held { .. } => m.held_actions.inc(),
                    DecisionEvent::ActuatorOverride => m.actuator_overrides.inc(),
                    DecisionEvent::Revocation { .. } => m.revocations.inc(),
                    DecisionEvent::Retarget { .. } => m.retargets.inc(),
                    DecisionEvent::ShareRetarget { .. } => m.share_retargets.inc(),
                    DecisionEvent::Quarantine { .. } => m.quarantines.inc(),
                    DecisionEvent::Restore { .. } => m.restores.inc(),
                }
            }
            if record.source == "cluster" {
                m.rebalances.inc();
            }
        }
        self.records.push(record);
    }

    /// All recorded decisions.
    pub fn records(&self) -> &[DecisionRecord] {
        &self.records
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no decisions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Render the whole trace as JSONL: one record per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> DecisionRecord {
        DecisionRecord {
            time: Seconds(3.0),
            source: "daemon",
            policy: "freq-shares",
            level: None,
            budget: Watts(40.0),
            measured: Some(Watts(43.5)),
            translation: "naive",
            model_confident: false,
            apps: vec![AppDecision {
                core: 0,
                requested: KiloHertz(2_133_333),
                quantized: KiloHertz::from_mhz(2100),
                granted: KiloHertz::from_mhz(2100),
                parked: false,
            }],
            events: vec![DecisionEvent::Saturated {
                core: 0,
                target: KiloHertz::from_mhz(3000),
                achieved: KiloHertz::from_mhz(2400),
            }],
            latency: Seconds(1.5e-6),
        }
    }

    #[test]
    fn json_roundtrip_fields() {
        let json = record().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for needle in [
            "\"time_s\":3",
            "\"source\":\"daemon\"",
            "\"policy\":\"freq-shares\"",
            "\"level\":null",
            "\"budget_w\":40",
            "\"measured_w\":43.5",
            "\"model_confident\":false",
            "\"requested_khz\":2133333",
            "\"quantized_khz\":2100000",
            "\"kind\":\"saturated\"",
            "\"achieved_khz\":2400000",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces: a cheap well-formedness check without a JSON
        // parser in the dependency tree.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close, "{json}");
    }

    #[test]
    fn jsonl_one_line_per_record() {
        let mut t = DecisionTrace::new();
        t.push(record());
        t.push(record());
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn push_updates_metrics() {
        let m = Arc::new(ControlMetrics::new());
        let mut t = DecisionTrace::with_metrics(Arc::clone(&m));
        t.push(record()); // 43.5 W measured vs 40 W budget → 3.5 W over
        let m = t.metrics().unwrap();
        assert_eq!(m.decisions.get(), 1);
        assert_eq!(m.saturations.get(), 1);
        assert_eq!(m.overshoot_watts.count(), 1);
        let p50 = m.overshoot_watts.percentile(50.0);
        assert!((p50 - 3.5).abs() / 3.5 < 0.05, "p50 {p50}");
        assert_eq!(m.decision_latency.count(), 1);
    }

    #[test]
    fn event_kinds_are_distinct() {
        let events = [
            DecisionEvent::ShortSample {
                expected: 2,
                got: 1,
            },
            DecisionEvent::Saturated {
                core: 0,
                target: KiloHertz::ZERO,
                achieved: KiloHertz::ZERO,
            },
            DecisionEvent::LadderTransition {
                from: "nominal",
                to: "frequency-only",
                reason: "telemetry loss",
            },
            DecisionEvent::Backstop { streak: 3 },
            DecisionEvent::Held { reason: "gap" },
            DecisionEvent::ActuatorOverride,
            DecisionEvent::Revocation {
                node: 1,
                ceiling: Watts(30.0),
                draw: Watts(22.0),
            },
            DecisionEvent::Retarget {
                node: 1,
                from: Watts(40.0),
                to: Watts(30.0),
            },
            DecisionEvent::ShareRetarget {
                core: 2,
                from: 50,
                to: 80,
            },
            DecisionEvent::Quarantine {
                node: 3,
                evicted: 4,
                requeued: 3,
                dropped: 1,
            },
            DecisionEvent::Restore { node: 3 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }
}
