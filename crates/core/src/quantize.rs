//! Frequency quantization and the Ryzen 3-P-state selection utility.
//!
//! Policies compute continuous per-core frequency targets; hardware
//! accepts only grid points — and on Ryzen, at most *three distinct*
//! concurrent frequencies (§5 "Ryzen details": "we built an additional
//! selection utility that dynamically reduces the target frequencies to
//! three valid P-states"). Selecting the three levels for a set of targets
//! is a 1-D k-clustering problem; [`cluster_to_slots`] solves it exactly
//! with dynamic programming over the sorted targets (contiguous clusters
//! are optimal in one dimension), and [`greedy_cluster`] provides the
//! naive evenly-spaced alternative used as an ablation baseline.

use pap_simcpu::freq::{FreqGrid, KiloHertz};

/// Which algorithm selects the shared P-state slot levels (daemon-level
/// choice; [`ClusterStrategy`] additionally picks the representative
/// within DP clusters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotSelector {
    /// Exact DP clustering, cluster means as levels (default).
    DpMean,
    /// Exact DP clustering, cluster minima as levels (never exceeds a
    /// target).
    DpFloor,
    /// Naive evenly-spaced levels (ablation baseline).
    Greedy,
}

impl SlotSelector {
    /// Apply the selector to a target vector.
    pub fn select(self, targets: &[KiloHertz], slots: usize, grid: &FreqGrid) -> Vec<KiloHertz> {
        let mut out = targets.to_vec();
        let mut scratch = SlotScratch::default();
        self.select_in_place(&mut out, slots, grid, &mut scratch);
        out
    }

    /// Apply the selector to `freqs` in place, using `scratch` for every
    /// intermediate. Allocation-free once `scratch` has reached capacity.
    pub fn select_in_place(
        self,
        freqs: &mut [KiloHertz],
        slots: usize,
        grid: &FreqGrid,
        scratch: &mut SlotScratch,
    ) {
        scratch.targets.clear();
        scratch.targets.extend_from_slice(freqs);
        // Split the borrow: the clustering core reads scratch.targets via
        // a raw re-borrow while mutating the remaining scratch fields.
        let SlotScratch {
            ref targets,
            ref mut order,
            ref mut xs,
            ref mut ps,
            ref mut ps2,
            ref mut dp,
            ref mut cut,
            ref mut boundaries,
            ref mut level_of_sorted,
            ref mut levels,
            ..
        } = *scratch;
        match self {
            SlotSelector::DpMean => cluster_into(
                targets,
                slots,
                grid,
                ClusterStrategy::Mean,
                order,
                xs,
                ps,
                ps2,
                dp,
                cut,
                boundaries,
                level_of_sorted,
                freqs,
            ),
            SlotSelector::DpFloor => cluster_into(
                targets,
                slots,
                grid,
                ClusterStrategy::Floor,
                order,
                xs,
                ps,
                ps2,
                dp,
                cut,
                boundaries,
                level_of_sorted,
                freqs,
            ),
            SlotSelector::Greedy => greedy_into(targets, slots, grid, levels, freqs),
        }
    }
}

/// Reusable buffers for [`SlotSelector::select_in_place`] /
/// [`cluster_to_slots`]: the DP tables and index vectors of the 1-D
/// k-clustering, reused across control intervals (DESIGN.md §11).
#[derive(Debug, Clone, Default)]
pub struct SlotScratch {
    targets: Vec<KiloHertz>,
    order: Vec<usize>,
    xs: Vec<f64>,
    ps: Vec<f64>,
    ps2: Vec<f64>,
    /// Flattened `(k+1) × (n+1)` DP cost table, row stride `n+1`.
    dp: Vec<f64>,
    /// Flattened backtrack table, same layout as `dp`.
    cut: Vec<usize>,
    boundaries: Vec<usize>,
    level_of_sorted: Vec<KiloHertz>,
    levels: Vec<KiloHertz>,
    /// Buffer for [`distinct_levels_with`].
    pub distinct: Vec<KiloHertz>,
}

impl SlotScratch {
    /// Scratch pre-sized for `n` targets clustered into `slots` levels.
    pub fn with_capacity(n: usize, slots: usize) -> SlotScratch {
        let k = slots.min(n);
        SlotScratch {
            targets: Vec::with_capacity(n),
            order: Vec::with_capacity(n),
            xs: Vec::with_capacity(n),
            ps: Vec::with_capacity(n + 1),
            ps2: Vec::with_capacity(n + 1),
            dp: Vec::with_capacity((k + 1) * (n + 1)),
            cut: Vec::with_capacity((k + 1) * (n + 1)),
            boundaries: Vec::with_capacity(k + 1),
            level_of_sorted: Vec::with_capacity(n),
            levels: Vec::with_capacity(slots),
            distinct: Vec::with_capacity(n),
        }
    }
}

/// How a cluster's representative level is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterStrategy {
    /// The cluster mean (least squared error; may exceed some members'
    /// targets — the control loop absorbs the transient power error).
    Mean,
    /// The cluster minimum ("reduces the target frequencies": no core ever
    /// runs above its target, biasing total power low).
    Floor,
}

/// Optimally cluster per-core frequency targets into at most `slots`
/// distinct levels, returning one level per input target (input order).
/// Levels are quantized to `grid`.
///
/// ```
/// use powerd::quantize::{cluster_to_slots, distinct_levels, ClusterStrategy};
/// use pap_simcpu::freq::{FreqGrid, KiloHertz};
///
/// let grid = FreqGrid::new(
///     KiloHertz::from_mhz(400),
///     KiloHertz::from_mhz(3800),
///     KiloHertz::from_mhz(25),
/// );
/// let targets: Vec<KiloHertz> =
///     [3400u64, 3300, 2000, 1900, 800, 825, 850, 3350]
///         .iter()
///         .map(|&m| KiloHertz::from_mhz(m))
///         .collect();
/// let levels = cluster_to_slots(&targets, 3, &grid, ClusterStrategy::Mean);
/// assert!(distinct_levels(&levels) <= 3);
/// ```
///
/// # Panics
/// Panics if `targets` is empty or `slots` is zero.
pub fn cluster_to_slots(
    targets: &[KiloHertz],
    slots: usize,
    grid: &FreqGrid,
    strategy: ClusterStrategy,
) -> Vec<KiloHertz> {
    let mut scratch = SlotScratch::default();
    let mut out = vec![KiloHertz::ZERO; targets.len()];
    cluster_into(
        targets,
        slots,
        grid,
        strategy,
        &mut scratch.order,
        &mut scratch.xs,
        &mut scratch.ps,
        &mut scratch.ps2,
        &mut scratch.dp,
        &mut scratch.cut,
        &mut scratch.boundaries,
        &mut scratch.level_of_sorted,
        &mut out,
    );
    out
}

/// Allocation-free core of [`cluster_to_slots`]: identical arithmetic
/// over caller-provided buffers (the DP tables are the flattened
/// row-major equivalents of the former vec-of-vecs), writing one level
/// per target into `out`.
#[allow(clippy::too_many_arguments)]
fn cluster_into(
    targets: &[KiloHertz],
    slots: usize,
    grid: &FreqGrid,
    strategy: ClusterStrategy,
    order: &mut Vec<usize>,
    xs: &mut Vec<f64>,
    ps: &mut Vec<f64>,
    ps2: &mut Vec<f64>,
    dp: &mut Vec<f64>,
    cut: &mut Vec<usize>,
    boundaries: &mut Vec<usize>,
    level_of_sorted: &mut Vec<KiloHertz>,
    out: &mut [KiloHertz],
) {
    assert!(!targets.is_empty(), "no targets to cluster");
    assert!(slots >= 1, "need at least one slot");
    assert_eq!(out.len(), targets.len(), "output length mismatch");
    let n = targets.len();
    let k = slots.min(n);

    // Sort indices by target value; clusters are contiguous in this order.
    order.clear();
    order.extend(0..n);
    order.sort_by_key(|&i| targets[i]);
    xs.clear();
    xs.extend(order.iter().map(|&i| targets[i].khz() as f64));

    // Prefix sums for O(1) interval cost (sum of squared error to mean).
    ps.clear();
    ps.resize(n + 1, 0.0);
    ps2.clear();
    ps2.resize(n + 1, 0.0);
    for i in 0..n {
        ps[i + 1] = ps[i] + xs[i];
        ps2[i + 1] = ps2[i] + xs[i] * xs[i];
    }
    let cost = |a: usize, b: usize| -> f64 {
        // SSE of xs[a..b] around its mean
        let m = (b - a) as f64;
        let s = ps[b] - ps[a];
        let s2 = ps2[b] - ps2[a];
        (s2 - s * s / m).max(0.0)
    };

    // dp[j][i] = min cost of clustering xs[0..i] into j clusters, stored
    // row-major with stride n+1.
    let inf = f64::INFINITY;
    let stride = n + 1;
    dp.clear();
    dp.resize((k + 1) * stride, inf);
    cut.clear();
    cut.resize((k + 1) * stride, 0);
    dp[0] = 0.0;
    for j in 1..=k {
        for i in j..=n {
            for a in (j - 1)..i {
                let c = dp[(j - 1) * stride + a] + cost(a, i);
                if c < dp[j * stride + i] {
                    dp[j * stride + i] = c;
                    cut[j * stride + i] = a;
                }
            }
        }
    }

    // Use however many clusters are cheapest (fewer clusters never beat
    // more in SSE, but equal-cost with fewer distinct levels is fine).
    boundaries.clear();
    let mut i = n;
    let mut j = k;
    boundaries.push(n);
    while j > 0 {
        i = cut[j * stride + i];
        boundaries.push(i);
        j -= 1;
    }
    boundaries.reverse();

    // Representative level per cluster.
    level_of_sorted.clear();
    level_of_sorted.resize(n, KiloHertz::ZERO);
    for w in boundaries.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a == b {
            continue;
        }
        let level = match strategy {
            ClusterStrategy::Mean => {
                let mean = (ps[b] - ps[a]) / (b - a) as f64;
                grid.round(KiloHertz(mean.round() as u64))
            }
            ClusterStrategy::Floor => grid.floor(KiloHertz(xs[a] as u64)),
        };
        for item in level_of_sorted.iter_mut().take(b).skip(a) {
            *item = level;
        }
    }

    // Map back to input order.
    for (sorted_pos, &orig_idx) in order.iter().enumerate() {
        out[orig_idx] = level_of_sorted[sorted_pos];
    }
}

/// Naive alternative: snap each target to the nearest of `slots` levels
/// spaced evenly over the grid. Used as the ablation baseline for the DP
/// selector.
pub fn greedy_cluster(targets: &[KiloHertz], slots: usize, grid: &FreqGrid) -> Vec<KiloHertz> {
    let mut levels = Vec::new();
    let mut out = vec![KiloHertz::ZERO; targets.len()];
    greedy_into(targets, slots, grid, &mut levels, &mut out);
    out
}

/// Allocation-free core of [`greedy_cluster`].
fn greedy_into(
    targets: &[KiloHertz],
    slots: usize,
    grid: &FreqGrid,
    levels: &mut Vec<KiloHertz>,
    out: &mut [KiloHertz],
) {
    assert!(slots >= 1);
    assert_eq!(out.len(), targets.len(), "output length mismatch");
    let lo = grid.min().khz() as f64;
    let hi = grid.max().khz() as f64;
    levels.clear();
    levels.extend((0..slots).map(|i| {
        let f = if slots == 1 {
            hi
        } else {
            lo + (hi - lo) * i as f64 / (slots - 1) as f64
        };
        grid.round(KiloHertz(f as u64))
    }));
    for (o, t) in out.iter_mut().zip(targets) {
        *o = *levels
            .iter()
            .min_by_key(|l| l.khz().abs_diff(t.khz()))
            .expect("non-empty levels");
    }
}

/// Sum of squared error (in MHz²) between targets and assigned levels;
/// the objective [`cluster_to_slots`] minimizes under the Mean strategy.
pub fn sse_mhz(targets: &[KiloHertz], assigned: &[KiloHertz]) -> f64 {
    targets
        .iter()
        .zip(assigned)
        .map(|(t, a)| {
            let d = t.mhz() as f64 - a.mhz() as f64;
            d * d
        })
        .sum()
}

/// Count distinct levels in an assignment.
pub fn distinct_levels(assigned: &[KiloHertz]) -> usize {
    let mut v = Vec::new();
    distinct_levels_with(assigned, &mut v)
}

/// Count distinct levels using a caller-provided buffer: sort + dedup in
/// place, no allocation once the buffer's capacity covers the input.
pub fn distinct_levels_with(assigned: &[KiloHertz], scratch: &mut Vec<KiloHertz>) -> usize {
    scratch.clear();
    scratch.extend_from_slice(assigned);
    scratch.sort();
    scratch.dedup();
    scratch.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ryzen_grid() -> FreqGrid {
        FreqGrid::new(
            KiloHertz::from_mhz(400),
            KiloHertz::from_mhz(3800),
            KiloHertz::from_mhz(25),
        )
    }

    fn mhz(v: &[u64]) -> Vec<KiloHertz> {
        v.iter().map(|&m| KiloHertz::from_mhz(m)).collect()
    }

    #[test]
    fn at_most_k_levels() {
        let g = ryzen_grid();
        let targets = mhz(&[3400, 3200, 2000, 1900, 900, 800, 850, 3300]);
        let out = cluster_to_slots(&targets, 3, &g, ClusterStrategy::Mean);
        assert_eq!(out.len(), targets.len());
        assert!(distinct_levels(&out) <= 3);
        for f in &out {
            assert!(g.contains(*f), "level {f} off grid");
        }
    }

    #[test]
    fn natural_clusters_found() {
        let g = ryzen_grid();
        // three obvious groups
        let targets = mhz(&[3400, 3400, 2000, 2000, 800, 800]);
        let out = cluster_to_slots(&targets, 3, &g, ClusterStrategy::Mean);
        assert_eq!(out[0], KiloHertz::from_mhz(3400));
        assert_eq!(out[2], KiloHertz::from_mhz(2000));
        assert_eq!(out[4], KiloHertz::from_mhz(800));
        assert_eq!(out[0], out[1]);
        assert_eq!(out[2], out[3]);
        assert_eq!(out[4], out[5]);
    }

    #[test]
    fn fewer_targets_than_slots() {
        let g = ryzen_grid();
        let targets = mhz(&[2500, 1000]);
        let out = cluster_to_slots(&targets, 3, &g, ClusterStrategy::Mean);
        assert_eq!(out, mhz(&[2500, 1000]));
    }

    #[test]
    fn floor_strategy_never_exceeds_targets() {
        let g = ryzen_grid();
        let targets = mhz(&[3400, 3100, 2100, 1900, 950, 800]);
        let out = cluster_to_slots(&targets, 3, &g, ClusterStrategy::Floor);
        for (t, a) in targets.iter().zip(&out) {
            assert!(a <= t, "floor strategy exceeded target: {a} > {t}");
        }
        assert!(distinct_levels(&out) <= 3);
    }

    #[test]
    fn dp_beats_or_matches_greedy() {
        let g = ryzen_grid();
        let cases: Vec<Vec<KiloHertz>> = vec![
            mhz(&[3400, 3300, 1200, 1100, 1000, 900, 850, 800]),
            mhz(&[3800, 400, 2100, 2100, 2100, 2100, 2100, 2100]),
            mhz(&[1000, 1100, 1200, 1300, 1400, 1500, 1600, 1700]),
        ];
        for targets in cases {
            let dp = cluster_to_slots(&targets, 3, &g, ClusterStrategy::Mean);
            let greedy = greedy_cluster(&targets, 3, &g);
            assert!(
                sse_mhz(&targets, &dp) <= sse_mhz(&targets, &greedy) + 1e-6,
                "DP worse than greedy on {targets:?}"
            );
        }
    }

    #[test]
    fn dp_optimal_vs_bruteforce_small() {
        // Exhaustively check optimality on a small instance: n=6, k=2.
        let g = FreqGrid::new(KiloHertz(0), KiloHertz(10_000_000), KiloHertz(1));
        let targets = mhz(&[100, 200, 250, 700, 900, 950]);
        let dp = cluster_to_slots(&targets, 2, &g, ClusterStrategy::Mean);
        let dp_sse = sse_mhz(&targets, &dp);

        // brute force: all contiguous splits of the sorted targets
        let mut sorted = targets.clone();
        sorted.sort();
        let mut best = f64::INFINITY;
        for cut in 1..sorted.len() {
            let (a, b) = sorted.split_at(cut);
            let mean =
                |s: &[KiloHertz]| s.iter().map(|f| f.mhz() as f64).sum::<f64>() / s.len() as f64;
            let sse = |s: &[KiloHertz]| {
                let m = mean(s);
                s.iter().map(|f| (f.mhz() as f64 - m).powi(2)).sum::<f64>()
            };
            best = best.min(sse(a) + sse(b));
        }
        // Grid rounding of the mean can cost a little; allow slack of
        // 1 MHz² per point.
        assert!(
            dp_sse <= best + targets.len() as f64,
            "dp {dp_sse} vs brute {best}"
        );
    }

    #[test]
    fn greedy_levels_within_grid() {
        let g = ryzen_grid();
        let out = greedy_cluster(&mhz(&[3400, 1700, 500]), 3, &g);
        for f in &out {
            assert!(g.contains(*f));
        }
        // single-slot greedy snaps everything to one level
        let one = greedy_cluster(&mhz(&[3400, 1700, 500]), 1, &g);
        assert_eq!(distinct_levels(&one), 1);
    }

    #[test]
    #[should_panic(expected = "no targets")]
    fn empty_targets_panic() {
        let g = ryzen_grid();
        let _ = cluster_to_slots(&[], 3, &g, ClusterStrategy::Mean);
    }

    #[test]
    fn identical_targets_one_level() {
        let g = ryzen_grid();
        let out = cluster_to_slots(&mhz(&[2000; 8]), 3, &g, ClusterStrategy::Mean);
        assert_eq!(distinct_levels(&out), 1);
        assert_eq!(out[0], KiloHertz::from_mhz(2000));
    }
}
