//! The strict two-level **priority policy** (§4.1, §5.1).
//!
//! High-priority (HP) applications run at the maximum P-state that fits
//! the power limit; low-priority (LP) applications receive only residual
//! power, starting at the slowest P-state and climbing only while the
//! budget allows. When the budget is tight the policy takes power from LP
//! first — the opposite of native RAPL, which throttles whoever is fastest
//! — and ultimately *starves* LP applications (parks their cores), the
//! variant the paper implements ("in our implementation we starve the LP
//! applications"). With every LP core parked, opportunistic scaling lets
//! the HP cores exceed their all-core limits, reproducing the paper's
//! observation that three HP applications at 40 W run *faster* than at
//! 85 W with all cores busy.
//!
//! Within each class all applications run at the same P-state (§4.1: "in
//! the absence of a separate proportional share policy, all HP and all LP
//! applications run at the same P-states").

use pap_model::{TranslationModel, TranslationQuery};
use pap_simcpu::freq::KiloHertz;

use crate::config::Priority;
use crate::policy::{Policy, PolicyCtx, PolicyInput, PolicyOutput, PolicyScratch};

/// The priority policy.
#[derive(Debug, Clone)]
pub struct PriorityPolicy {
    /// Uniform frequency level for HP applications.
    hp_level: KiloHertz,
    /// Uniform frequency level for LP applications.
    lp_level: KiloHertz,
    /// Whether LP applications are currently parked (starved).
    lp_parked: bool,
    /// Control intervals since the last park/unpark flip (hysteresis).
    intervals_since_flip: u32,
    /// §4.1 variant: floor every core at the minimum P-state instead of
    /// starving LP applications.
    pub floor_low_priority: bool,
    /// Estimated package power cost of waking one LP core at the minimum
    /// P-state; used to decide whether residual headroom can start LP.
    pub lp_start_cost: f64,
    /// Minimum intervals between park/unpark flips.
    pub flip_holdoff: u32,
}

impl PriorityPolicy {
    /// The paper's variant (starve LP under pressure).
    pub fn new() -> PriorityPolicy {
        PriorityPolicy {
            hp_level: KiloHertz::ZERO,
            lp_level: KiloHertz::ZERO,
            lp_parked: true,
            intervals_since_flip: u32::MAX,
            floor_low_priority: false,
            lp_start_cost: 1.2,
            flip_holdoff: 3,
        }
    }

    /// The alternative variant: all cores floored at minimum, never parked.
    pub fn flooring() -> PriorityPolicy {
        PriorityPolicy {
            floor_low_priority: true,
            lp_parked: false,
            ..PriorityPolicy::new()
        }
    }

    /// Current class levels `(hp, lp)` for inspection.
    pub fn levels(&self) -> (KiloHertz, KiloHertz) {
        (self.hp_level, self.lp_level)
    }

    /// Whether LP applications are starved right now.
    pub fn lp_parked(&self) -> bool {
        self.lp_parked
    }

    fn render(&self, apps: &[crate::policy::AppView]) -> PolicyOutput {
        let mut out = PolicyOutput::default();
        self.render_into(apps, &mut out);
        out
    }

    fn render_into(&self, apps: &[crate::policy::AppView], out: &mut PolicyOutput) {
        out.freqs.clear();
        out.freqs.extend(apps.iter().map(|a| match a.priority {
            Priority::High => self.hp_level,
            Priority::Low => self.lp_level,
        }));
        out.parked.clear();
        out.parked.extend(
            apps.iter()
                .map(|a| a.priority == Priority::Low && self.lp_parked),
        );
    }

    /// Per-core level move from the translation model, damped, at least
    /// one grid step so the controller cannot stall short of the target.
    fn level_step(
        &self,
        ctx: &PolicyCtx,
        err_watts: f64,
        class_size: usize,
        current: &[KiloHertz],
        model: &dyn TranslationModel,
    ) -> u64 {
        if class_size == 0 {
            return 0;
        }
        let total = model.frequency_delta_khz(&TranslationQuery {
            power_error: pap_simcpu::units::Watts(err_watts.abs()),
            max_power: ctx.max_power,
            max_freq: ctx.grid.max(),
            available: class_size,
            max_performance: 1.0,
            current,
        });
        let per_core = total * ctx.damping / class_size as f64;
        (per_core as u64).max(ctx.grid.step().khz())
    }
}

impl Default for PriorityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for PriorityPolicy {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn memo_state(&self, fp: &mut Vec<u64>) {
        // The flip counter is only ever compared against
        // `flip_holdoff`, so every value at or above the holdoff is
        // decision-equivalent and the equivalence class is closed under
        // stepping (a skipped increment cannot drop it back below).
        // Clamp before fingerprinting — the raw counter climbs every
        // interval forever, which would make a hit impossible.
        fp.push(self.hp_level.khz());
        fp.push(self.lp_level.khz());
        fp.push(self.lp_parked as u64);
        fp.push(self.intervals_since_flip.min(self.flip_holdoff) as u64);
    }

    /// "The daemon starts the HP applications at the highest P-state";
    /// LP applications start parked (or at the floor, in the flooring
    /// variant) until a step finds headroom for them.
    fn initial(&mut self, ctx: &PolicyCtx, apps: &[crate::policy::AppView]) -> PolicyOutput {
        self.hp_level = ctx.grid.max();
        self.lp_level = ctx.grid.min();
        self.lp_parked = !self.floor_low_priority;
        self.intervals_since_flip = u32::MAX;
        self.render(apps)
    }

    fn step_into(
        &mut self,
        ctx: &PolicyCtx,
        input: &PolicyInput<'_>,
        model: &dyn TranslationModel,
        _scratch: &mut PolicyScratch,
        out: &mut PolicyOutput,
    ) {
        if self.hp_level == KiloHertz::ZERO {
            // Daemon skipped initial(); bootstrap now (same state updates
            // as `initial`, rendered into the caller's buffer).
            self.hp_level = ctx.grid.max();
            self.lp_level = ctx.grid.min();
            self.lp_parked = !self.floor_low_priority;
            self.intervals_since_flip = u32::MAX;
            self.render_into(input.apps, out);
            return;
        }
        let n_hp = input
            .apps
            .iter()
            .filter(|a| a.priority == Priority::High)
            .count();
        let n_lp = input.apps.len() - n_hp;
        self.intervals_since_flip = self.intervals_since_flip.saturating_add(1);

        let err = ctx.limit - input.package_power;
        if err.abs() <= ctx.deadband {
            self.render_into(input.apps, out);
            return;
        }

        if err.value() < 0.0 {
            // Over budget: take from LP first.
            let lp_active = n_lp > 0 && !self.lp_parked;
            if lp_active && self.lp_level > ctx.grid.min() {
                let step = self.level_step(ctx, err.value(), n_lp, input.current, model);
                self.lp_level = ctx
                    .grid
                    .round(KiloHertz(self.lp_level.khz().saturating_sub(step)));
            } else if lp_active
                && !self.floor_low_priority
                && self.intervals_since_flip >= self.flip_holdoff
            {
                // LP already at the floor: starve them.
                self.lp_parked = true;
                self.intervals_since_flip = 0;
            } else if n_hp > 0 {
                // Nothing left to take from LP: throttle HP.
                let step = self.level_step(ctx, err.value(), n_hp, input.current, model);
                self.hp_level = ctx
                    .grid
                    .round(KiloHertz(self.hp_level.khz().saturating_sub(step)));
            }
        } else {
            // Headroom: satisfy HP fully before LP sees anything.
            if self.hp_level < ctx.grid.max() && n_hp > 0 {
                let step = self.level_step(ctx, err.value(), n_hp, input.current, model);
                self.hp_level = ctx
                    .grid
                    .round((self.hp_level + KiloHertz(step)).min(ctx.grid.max()));
            } else if n_lp > 0 && self.lp_parked {
                // Consider starting LP at the slowest P-state — only if the
                // headroom covers the estimated wake cost of all of them.
                if self.intervals_since_flip >= self.flip_holdoff
                    && err.value() > self.lp_start_cost * n_lp as f64
                {
                    self.lp_parked = false;
                    self.lp_level = ctx.grid.min();
                    self.intervals_since_flip = 0;
                }
            } else if n_lp > 0 && self.lp_level < ctx.grid.max() {
                let step = self.level_step(ctx, err.value(), n_lp, input.current, model);
                self.lp_level = ctx
                    .grid
                    .round((self.lp_level + KiloHertz(step)).min(ctx.grid.max()));
            }
        }

        self.hp_level = self.hp_level.clamp(ctx.grid.min(), ctx.grid.max());
        self.lp_level = self.lp_level.clamp(ctx.grid.min(), ctx.grid.max());
        self.render_into(input.apps, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AppView;
    use pap_simcpu::freq::FreqGrid;
    use pap_simcpu::units::Watts;

    fn ctx(limit: f64) -> PolicyCtx {
        PolicyCtx::new(
            FreqGrid::new(
                KiloHertz::from_mhz(800),
                KiloHertz::from_mhz(3000),
                KiloHertz::from_mhz(100),
            ),
            Watts(85.0),
            Watts(limit),
        )
    }

    fn apps(n_hp: usize, n_lp: usize) -> Vec<AppView> {
        (0..n_hp + n_lp)
            .map(|i| AppView {
                core: i,
                shares: 100.0,
                priority: if i < n_hp {
                    Priority::High
                } else {
                    Priority::Low
                },
                active_freq: KiloHertz::from_mhz(2000),
                power: None,
                ips: 1e9,
                baseline_ips: 1e9,
            })
            .collect()
    }

    fn step(
        p: &mut PriorityPolicy,
        c: &PolicyCtx,
        a: &[AppView],
        cur: &[KiloHertz],
        pkg: f64,
    ) -> PolicyOutput {
        p.step(
            c,
            &PolicyInput {
                package_power: Watts(pkg),
                apps: a,
                current: cur,
            },
        )
    }

    #[test]
    fn initial_hp_max_lp_parked() {
        let mut p = PriorityPolicy::new();
        let a = apps(3, 2);
        let out = p.initial(&ctx(50.0), &a);
        assert_eq!(out.freqs[0], KiloHertz::from_mhz(3000));
        assert!(out.parked[3] && out.parked[4]);
        assert!(!out.parked[0]);
    }

    #[test]
    fn over_budget_takes_from_lp_first() {
        let mut p = PriorityPolicy::new();
        let c = ctx(50.0);
        let a = apps(2, 2);
        p.initial(&c, &a);
        // force LP running at mid level
        p.lp_parked = false;
        p.lp_level = KiloHertz::from_mhz(2000);
        let cur = vec![KiloHertz::from_mhz(3000); 4];
        let out = step(&mut p, &c, &a, &cur, 60.0);
        let (hp, lp) = p.levels();
        assert_eq!(hp, KiloHertz::from_mhz(3000), "HP untouched");
        assert!(lp < KiloHertz::from_mhz(2000), "LP throttled first");
        assert!(!out.parked[2]);
    }

    #[test]
    fn lp_starved_when_floored_and_still_over() {
        let mut p = PriorityPolicy::new();
        p.flip_holdoff = 0;
        let c = ctx(40.0);
        let a = apps(2, 2);
        p.initial(&c, &a);
        p.lp_parked = false;
        p.lp_level = c.grid.min();
        let cur = vec![KiloHertz::from_mhz(3000); 4];
        let out = step(&mut p, &c, &a, &cur, 55.0);
        assert!(p.lp_parked(), "LP must be starved");
        assert!(out.parked[2] && out.parked[3]);
    }

    #[test]
    fn hp_throttled_only_after_lp_gone() {
        let mut p = PriorityPolicy::new();
        p.flip_holdoff = 0;
        let c = ctx(40.0);
        let a = apps(2, 2);
        p.initial(&c, &a); // LP parked
        let cur = vec![KiloHertz::from_mhz(3000); 4];
        step(&mut p, &c, &a, &cur, 60.0);
        let (hp, _) = p.levels();
        assert!(
            hp < KiloHertz::from_mhz(3000),
            "HP throttled as last resort"
        );
    }

    #[test]
    fn flooring_variant_never_parks() {
        let mut p = PriorityPolicy::flooring();
        p.flip_holdoff = 0;
        let c = ctx(40.0);
        let a = apps(2, 2);
        p.initial(&c, &a);
        assert!(!p.lp_parked());
        let cur = vec![KiloHertz::from_mhz(3000); 4];
        for _ in 0..10 {
            let out = step(&mut p, &c, &a, &cur, 60.0);
            assert!(out.parked.iter().all(|&x| !x));
        }
        // pressure lands on HP instead
        let (hp, lp) = p.levels();
        assert_eq!(lp, c.grid.min());
        assert!(hp < c.grid.max());
    }

    #[test]
    fn headroom_raises_hp_before_unparking_lp() {
        let mut p = PriorityPolicy::new();
        p.flip_holdoff = 0;
        let c = ctx(70.0);
        let a = apps(2, 2);
        p.initial(&c, &a);
        p.hp_level = KiloHertz::from_mhz(2000);
        let cur = vec![KiloHertz::from_mhz(2000); 4];
        step(&mut p, &c, &a, &cur, 40.0);
        let (hp, _) = p.levels();
        assert!(hp > KiloHertz::from_mhz(2000));
        assert!(p.lp_parked(), "LP stays parked until HP is satisfied");
    }

    #[test]
    fn big_headroom_unparks_lp_once_hp_satisfied() {
        let mut p = PriorityPolicy::new();
        p.flip_holdoff = 0;
        let c = ctx(70.0);
        let a = apps(2, 2);
        p.initial(&c, &a); // hp at max already
        let cur = vec![KiloHertz::from_mhz(3000); 4];
        let out = step(&mut p, &c, &a, &cur, 40.0);
        assert!(!p.lp_parked(), "30 W headroom must start 2 LP apps");
        assert_eq!(p.levels().1, c.grid.min(), "LP starts at slowest P-state");
        assert!(!out.parked[2]);
    }

    #[test]
    fn tiny_headroom_keeps_lp_parked() {
        let mut p = PriorityPolicy::new();
        p.flip_holdoff = 0;
        let c = ctx(50.0);
        let a = apps(2, 8);
        p.initial(&c, &a);
        let cur = vec![KiloHertz::from_mhz(3000); 10];
        // 3 W headroom < 8 × 2 W start cost
        step(&mut p, &c, &a, &cur, 47.0);
        assert!(p.lp_parked(), "cannot start 8 LP apps on 3 W");
    }

    #[test]
    fn lp_climbs_with_sustained_headroom() {
        let mut p = PriorityPolicy::new();
        p.flip_holdoff = 0;
        let c = ctx(70.0);
        let a = apps(2, 2);
        p.initial(&c, &a);
        let cur = vec![KiloHertz::from_mhz(3000); 4];
        step(&mut p, &c, &a, &cur, 40.0); // unpark
        step(&mut p, &c, &a, &cur, 45.0); // climb
        let (_, lp) = p.levels();
        assert!(lp > c.grid.min());
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut p = PriorityPolicy::new(); // holdoff = 3
        let c = ctx(50.0);
        let a = apps(2, 2);
        p.initial(&c, &a);
        let cur = vec![KiloHertz::from_mhz(3000); 4];
        // plenty of headroom, but a fresh flip must wait out the holdoff
        p.lp_parked = true;
        p.intervals_since_flip = 0;
        step(&mut p, &c, &a, &cur, 20.0);
        assert!(p.lp_parked(), "holdoff must delay unpark");
        step(&mut p, &c, &a, &cur, 20.0);
        step(&mut p, &c, &a, &cur, 20.0);
        assert!(!p.lp_parked(), "unpark after holdoff expires");
    }

    #[test]
    fn deadband_is_stable() {
        let mut p = PriorityPolicy::new();
        let c = ctx(50.0);
        let a = apps(5, 5);
        p.initial(&c, &a);
        let before = p.levels();
        let cur = vec![KiloHertz::from_mhz(3000); 10];
        step(&mut p, &c, &a, &cur, 50.2);
        assert_eq!(p.levels(), before);
    }

    #[test]
    fn all_hp_mix_behaves() {
        let mut p = PriorityPolicy::new();
        p.flip_holdoff = 0;
        let c = ctx(40.0);
        let a = apps(4, 0);
        p.initial(&c, &a);
        let cur = vec![KiloHertz::from_mhz(3000); 4];
        let out = step(&mut p, &c, &a, &cur, 55.0);
        assert!(out.freqs[0] < KiloHertz::from_mhz(3000));
        assert!(out.parked.iter().all(|&x| !x));
    }
}
