//! Proportional **power shares** (§5.2).
//!
//! Applications' power draws are kept proportional to their shares. This
//! is the most direct interpretation of "sharing power" but requires
//! per-core power telemetry, which among the paper's testbeds only Ryzen
//! provides; it is also the policy the paper finds gives the *worst*
//! performance isolation, because equal power buys very different
//! frequencies (and hence performance) for high- and low-demand
//! applications.

use pap_model::TranslationModel;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::units::Watts;

use crate::policy::minfund::{proportional_fill_into, Claim};
use crate::policy::{Policy, PolicyCtx, PolicyInput, PolicyOutput, PolicyScratch};

/// The power-shares policy. Stateful: carries per-app power limits.
#[derive(Debug, Clone)]
pub struct PowerShares {
    /// Per-app power limits (W).
    power_limits: Vec<f64>,
    /// Assumed per-core power floor at the minimum P-state (W): the
    /// saturation lower bound of a claim.
    pub core_min_power: f64,
    /// Assumed per-core power ceiling at the maximum P-state (W).
    pub core_max_power: f64,
    /// Estimated non-core (uncore + idle) package power subtracted from
    /// the limit before splitting it between applications (W).
    pub uncore_estimate: f64,
    /// Servo gain from per-core power error to frequency correction
    /// (kHz per watt).
    pub gain_khz_per_watt: f64,
}

impl PowerShares {
    /// Defaults calibrated for the Ryzen platform model.
    pub fn new() -> PowerShares {
        PowerShares {
            power_limits: Vec::new(),
            core_min_power: 0.6,
            core_max_power: 14.0,
            uncore_estimate: 11.0,
            gain_khz_per_watt: 150_000.0,
        }
    }

    /// Current per-app power limits (for inspection/tests).
    pub fn power_limits(&self) -> &[f64] {
        &self.power_limits
    }

    /// The naïve linear power→frequency model of §5.2: map the per-core
    /// power range onto the frequency range. "Since we dynamically adjust
    /// the values later, modeling errors do not affect steady state."
    fn power_to_freq(&self, ctx: &PolicyCtx, watts: f64) -> KiloHertz {
        let t = ((watts - self.core_min_power) / (self.core_max_power - self.core_min_power))
            .clamp(0.0, 1.0);
        let khz =
            ctx.grid.min().khz() as f64 + t * (ctx.grid.max().khz() - ctx.grid.min().khz()) as f64;
        ctx.grid.round(KiloHertz(khz as u64))
    }
}

impl Default for PowerShares {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for PowerShares {
    fn name(&self) -> &'static str {
        "power-shares"
    }

    fn memo_state(&self, fp: &mut Vec<u64>) {
        fp.push(self.power_limits.len() as u64);
        fp.extend(self.power_limits.iter().map(|l| l.to_bits()));
    }

    /// "The initial distribution function distributes the power limit
    /// among the applications based on their share ratios; the result is
    /// a set of per-application limits." The translation function then
    /// predicts initial frequencies with the linear power model.
    fn initial(&mut self, ctx: &PolicyCtx, apps: &[crate::policy::AppView]) -> PolicyOutput {
        let budget = (ctx.limit.value() - self.uncore_estimate).max(0.0);
        let total_shares: f64 = apps.iter().map(|a| a.shares).sum();
        self.power_limits = apps
            .iter()
            .map(|a| {
                (budget * a.shares / total_shares).clamp(self.core_min_power, self.core_max_power)
            })
            .collect();
        PolicyOutput::running(
            self.power_limits
                .iter()
                .map(|&w| self.power_to_freq(ctx, w))
                .collect(),
        )
    }

    /// "The redistribution function updates per-application limits by
    /// distributing the difference in current power and the power limit
    /// among non-saturated cores"; translation adjusts frequencies from
    /// per-core power feedback against the calculated limits.
    fn step_into(
        &mut self,
        ctx: &PolicyCtx,
        input: &PolicyInput<'_>,
        model: &dyn TranslationModel,
        scratch: &mut PolicyScratch,
        out: &mut PolicyOutput,
    ) {
        if self.power_limits.len() != input.apps.len() {
            // Daemon skipped initial(); bootstrap now (cold path).
            *out = self.initial(ctx, input.apps);
            return;
        }

        let err = ctx.limit - input.package_power;
        if err.abs() > ctx.deadband {
            scratch.claims.clear();
            scratch.claims.extend(
                input
                    .apps
                    .iter()
                    .zip(&self.power_limits)
                    .map(|(app, &cur)| {
                        Claim::new(app.shares, cur, self.core_min_power, self.core_max_power)
                    }),
            );
            // Water-fill the adjusted total so per-app power limits stay
            // share-proportional under saturation.
            let total: f64 =
                scratch.claims.iter().map(|c| c.current).sum::<f64>() + err.value() * ctx.damping;
            proportional_fill_into(total, &scratch.claims, &mut self.power_limits);
        }

        // Per-core servo: move each app's frequency by its own power
        // error. A trusted learned per-core power curve supplies the
        // actuation gain; otherwise the configured static gain is used.
        out.set_running(
            input
                .apps
                .iter()
                .zip(input.current)
                .zip(&self.power_limits)
                .map(|((app, &cur), &limit)| {
                    let measured = app
                        .power
                        .unwrap_or(Watts(limit)) // no telemetry -> assume on target
                        .value();
                    let gain = model
                        .khz_per_watt(app.core, cur)
                        .unwrap_or(self.gain_khz_per_watt);
                    let correction = (limit - measured) * gain * ctx.damping;
                    let target = cur.khz() as f64 + correction;
                    ctx.grid.round(KiloHertz(target.max(0.0) as u64))
                }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Priority;
    use crate::policy::AppView;
    use pap_simcpu::freq::FreqGrid;

    fn ctx(limit: f64) -> PolicyCtx {
        PolicyCtx::new(
            FreqGrid::new(
                KiloHertz::from_mhz(400),
                KiloHertz::from_mhz(3800),
                KiloHertz::from_mhz(25),
            ),
            Watts(95.0),
            Watts(limit),
        )
    }

    fn app(shares: f64, power_w: f64, freq_mhz: u64) -> AppView {
        AppView {
            core: 0,
            shares,
            priority: Priority::High,
            active_freq: KiloHertz::from_mhz(freq_mhz),
            power: Some(Watts(power_w)),
            ips: 1e9,
            baseline_ips: 1e9,
        }
    }

    #[test]
    fn initial_splits_budget_by_shares() {
        let mut p = PowerShares::new();
        let apps = vec![app(75.0, 0.0, 0), app(25.0, 0.0, 0)];
        let out = p.initial(&ctx(51.0), &apps);
        // budget = 51 - 11 = 40 W -> 30 / 10, with the 30 W claim clamped
        // to the per-core ceiling (no single core can burn 30 W)
        assert!((p.power_limits()[0] - p.core_max_power).abs() < 1e-9);
        assert!((p.power_limits()[1] - 10.0).abs() < 1e-9);
        assert!(out.freqs[0] > out.freqs[1]);
    }

    #[test]
    fn per_core_servo_tracks_limits() {
        let mut p = PowerShares::new();
        let apps_init = vec![app(50.0, 0.0, 0), app(50.0, 0.0, 0)];
        p.initial(&ctx(31.0), &apps_init);
        // app 0 draws above its limit, app 1 below; package on target
        let apps = vec![app(50.0, 12.0, 3000), app(50.0, 6.0, 3000)];
        let current = vec![KiloHertz::from_mhz(3000); 2];
        let out = p.step(
            &ctx(31.0),
            &PolicyInput {
                package_power: Watts(31.0),
                apps: &apps,
                current: &current,
            },
        );
        assert!(out.freqs[0] < current[0], "over-limit app slowed");
        assert!(out.freqs[1] >= current[1], "under-limit app not slowed");
    }

    #[test]
    fn package_error_redistributes_limits() {
        let mut p = PowerShares::new();
        let apps_init = vec![app(50.0, 0.0, 0), app(50.0, 0.0, 0)];
        p.initial(&ctx(31.0), &apps_init);
        let before: f64 = p.power_limits().iter().sum();
        let apps = vec![app(50.0, 10.0, 3000), app(50.0, 10.0, 3000)];
        let current = vec![KiloHertz::from_mhz(3000); 2];
        p.step(
            &ctx(31.0),
            &PolicyInput {
                package_power: Watts(45.0), // 14 W over
                apps: &apps,
                current: &current,
            },
        );
        let after: f64 = p.power_limits().iter().sum();
        assert!(after < before, "limits must shrink when over budget");
    }

    #[test]
    fn equal_power_not_equal_frequency() {
        // The isolation failure the paper highlights: at equal power
        // limits, the linear model still gives equal *initial* frequency,
        // but feedback from a high-demand app (drawing more at the same
        // frequency) pushes its frequency down below the low-demand app's.
        let mut p = PowerShares::new();
        let apps_init = vec![app(50.0, 0.0, 0), app(50.0, 0.0, 0)];
        p.initial(&ctx(31.0), &apps_init);
        let current = vec![KiloHertz::from_mhz(2000); 2];
        // HD app draws 12 W at 2 GHz; LD app draws 4 W
        let apps = vec![app(50.0, 12.0, 2000), app(50.0, 4.0, 2000)];
        let out = p.step(
            &ctx(31.0),
            &PolicyInput {
                package_power: Watts(31.0),
                apps: &apps,
                current: &current,
            },
        );
        assert!(
            out.freqs[0] < out.freqs[1],
            "high-demand app must end up slower under power shares"
        );
    }

    #[test]
    fn limits_clamped_to_core_range() {
        let mut p = PowerShares::new();
        let apps = vec![app(99.0, 0.0, 0), app(1.0, 0.0, 0)];
        p.initial(&ctx(95.0), &apps);
        for l in p.power_limits() {
            assert!(*l >= p.core_min_power - 1e-9 && *l <= p.core_max_power + 1e-9);
        }
    }

    #[test]
    fn bootstraps_without_initial() {
        let mut p = PowerShares::new();
        let apps = vec![app(100.0, 5.0, 2000)];
        let current = vec![KiloHertz::from_mhz(2000)];
        let out = p.step(
            &ctx(40.0),
            &PolicyInput {
                package_power: Watts(30.0),
                apps: &apps,
                current: &current,
            },
        );
        assert_eq!(out.freqs.len(), 1);
    }

    #[test]
    fn power_to_freq_monotone() {
        let p = PowerShares::new();
        let c = ctx(40.0);
        let mut prev = KiloHertz::ZERO;
        for w in [0.0, 2.0, 5.0, 9.0, 14.0, 20.0] {
            let f = p.power_to_freq(&c, w);
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(p.power_to_freq(&c, -5.0), c.grid.min());
        assert_eq!(p.power_to_freq(&c, 100.0), c.grid.max());
    }
}
