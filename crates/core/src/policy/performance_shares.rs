//! Proportional **performance shares** (§5.2).
//!
//! Applications' performance *loss* relative to standalone execution is
//! kept proportional to shares. Performance is measured as IPS normalized
//! to an offline baseline (the app running alone at maximum frequency);
//! the power limit is translated into a total normalized-performance
//! budget through the α model, distributed into per-app performance
//! limits, and each app's frequency is then servoed toward its limit.
//!
//! Because IPS moves with program phase while frequency does not, this
//! policy can over- and under-shoot where frequency shares hold steady —
//! the instability the paper reports in Figure 10.

use pap_model::{TranslationModel, TranslationQuery};
use pap_simcpu::freq::KiloHertz;

use crate::policy::minfund::{initial_proportional, proportional_fill_into, Claim};
use crate::policy::{Policy, PolicyCtx, PolicyInput, PolicyOutput, PolicyScratch};

/// Per-core maximum normalized performance (IPS is normalized to the
/// standalone maximum-frequency baseline, so 1.0 by construction).
const MAX_PERFORMANCE: f64 = 1.0;

/// The performance-shares policy. Stateful: carries the per-app
/// performance limits between intervals.
#[derive(Debug, Clone, Default)]
pub struct PerformanceShares {
    /// Current per-app normalized performance limits.
    perf_limits: Vec<f64>,
    /// Gain from performance error to frequency correction, in fractions
    /// of max frequency per unit of normalized performance.
    pub servo_gain: f64,
}

impl PerformanceShares {
    /// New policy with default servo tuning.
    pub fn new() -> PerformanceShares {
        PerformanceShares {
            perf_limits: Vec::new(),
            servo_gain: 0.7,
        }
    }

    /// The minimum achievable normalized performance: running at the
    /// bottom of the grid (a compute-bound approximation; memory-bound
    /// apps sit higher, which the servo absorbs).
    fn min_perf(ctx: &PolicyCtx) -> f64 {
        ctx.grid.min().khz() as f64 / ctx.grid.max().khz() as f64
    }

    /// Current per-app performance limits (for inspection/tests).
    pub fn perf_limits(&self) -> &[f64] {
        &self.perf_limits
    }
}

impl Policy for PerformanceShares {
    fn name(&self) -> &'static str {
        "perf-shares"
    }

    fn memo_state(&self, fp: &mut Vec<u64>) {
        fp.push(self.perf_limits.len() as u64);
        fp.extend(self.perf_limits.iter().map(|l| l.to_bits()));
    }

    /// "The initial distribution function distributes this performance
    /// limit among the applications based on their share ratios."
    fn initial(&mut self, ctx: &PolicyCtx, apps: &[crate::policy::AppView]) -> PolicyOutput {
        let shares: Vec<f64> = apps.iter().map(|a| a.shares).collect();
        self.perf_limits = initial_proportional(&shares, MAX_PERFORMANCE, Self::min_perf(ctx));
        // Naïve linear translation: normalized perf target ≈ f / f_max.
        PolicyOutput::running(
            self.perf_limits
                .iter()
                .map(|&p| {
                    ctx.grid
                        .round(KiloHertz((p * ctx.grid.max().khz() as f64) as u64))
                })
                .collect(),
        )
    }

    /// "The redistribution function updates these per-application limits
    /// by first converting the difference in current power and the power
    /// limit into a performance value and then distributing it among
    /// non-saturated cores."
    fn step_into(
        &mut self,
        ctx: &PolicyCtx,
        input: &PolicyInput<'_>,
        model: &dyn TranslationModel,
        scratch: &mut PolicyScratch,
        out: &mut PolicyOutput,
    ) {
        if self.perf_limits.len() != input.apps.len() {
            // Daemon skipped initial(); bootstrap now (cold path).
            *out = self.initial(ctx, input.apps);
            return;
        }

        let err = ctx.limit - input.package_power;
        let min_perf = Self::min_perf(ctx);

        // Redistribute the power error as performance budget.
        if err.abs() > ctx.deadband {
            scratch.claims.clear();
            scratch.claims.extend(
                input
                    .apps
                    .iter()
                    .zip(&self.perf_limits)
                    .map(|(app, &cur)| Claim::new(app.shares, cur, min_perf, MAX_PERFORMANCE)),
            );
            let available = scratch
                .claims
                .iter()
                .filter(|c| {
                    if err.value() > 0.0 {
                        c.current < c.max - 1e-9
                    } else {
                        c.current > c.min + 1e-9
                    }
                })
                .count();
            if available > 0 {
                let delta = model.performance_delta(&TranslationQuery {
                    power_error: err,
                    max_power: ctx.max_power,
                    max_freq: ctx.grid.max(),
                    available,
                    max_performance: MAX_PERFORMANCE,
                    current: input.current,
                }) * ctx.damping;
                // Water-fill the adjusted total so the per-app limits stay
                // share-proportional under saturation.
                let total: f64 = scratch.claims.iter().map(|c| c.current).sum::<f64>() + delta;
                proportional_fill_into(total, &scratch.claims, &mut self.perf_limits);
            }
        }

        // Translate: servo each app's frequency toward its performance
        // limit using measured normalized IPS as feedback.
        out.set_running(
            input
                .apps
                .iter()
                .zip(input.current)
                .zip(&self.perf_limits)
                .map(|((app, &cur), &limit)| {
                    let measured = app.normalized_perf();
                    let correction =
                        (limit - measured) * self.servo_gain * ctx.grid.max().khz() as f64;
                    let target = cur.khz() as f64 + correction;
                    ctx.grid.round(KiloHertz(target.max(0.0) as u64))
                }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Priority;
    use crate::policy::AppView;
    use pap_simcpu::freq::FreqGrid;
    use pap_simcpu::units::Watts;

    fn ctx(limit: f64) -> PolicyCtx {
        PolicyCtx::new(
            FreqGrid::new(
                KiloHertz::from_mhz(800),
                KiloHertz::from_mhz(3000),
                KiloHertz::from_mhz(100),
            ),
            Watts(85.0),
            Watts(limit),
        )
    }

    fn app(shares: f64, norm_perf: f64, freq_mhz: u64) -> AppView {
        AppView {
            core: 0,
            shares,
            priority: Priority::High,
            active_freq: KiloHertz::from_mhz(freq_mhz),
            power: None,
            ips: norm_perf * 1e9,
            baseline_ips: 1e9,
        }
    }

    #[test]
    fn initial_targets_proportional() {
        let mut p = PerformanceShares::new();
        let apps = vec![app(100.0, 0.0, 0), app(50.0, 0.0, 0)];
        let out = p.initial(&ctx(50.0), &apps);
        assert_eq!(out.freqs[0], KiloHertz::from_mhz(3000));
        assert_eq!(out.freqs[1], KiloHertz::from_mhz(1500));
        assert!((p.perf_limits()[0] - 1.0).abs() < 1e-9);
        assert!((p.perf_limits()[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn servo_raises_underperforming_app() {
        let mut p = PerformanceShares::new();
        let apps = vec![app(100.0, 0.4, 1500)];
        p.initial(&ctx(50.0), &apps);
        // measured perf 0.4 but limit 1.0, power inside deadband
        let current = vec![KiloHertz::from_mhz(1500)];
        let out = p.step(
            &ctx(50.0),
            &PolicyInput {
                package_power: Watts(50.0),
                apps: &apps,
                current: &current,
            },
        );
        assert!(out.freqs[0] > KiloHertz::from_mhz(1500));
    }

    #[test]
    fn servo_lowers_overperforming_app() {
        let mut p = PerformanceShares::new();
        let apps = vec![app(50.0, 0.9, 2500), app(50.0, 0.9, 2500)];
        p.initial(&ctx(50.0), &apps);
        // equal shares -> limits 1.0 each; force limits down via power err
        let current = vec![KiloHertz::from_mhz(2500); 2];
        let out = p.step(
            &ctx(40.0),
            &PolicyInput {
                package_power: Watts(70.0),
                apps: &apps,
                current: &current,
            },
        );
        // 30 W over budget: perf limits fall below measured 0.9 -> slow down
        assert!(out.freqs[0] < KiloHertz::from_mhz(2500));
    }

    #[test]
    fn phase_swing_moves_frequency() {
        // The destabilizing property Figure 10 shows: with power on target,
        // a drop in measured IPS (phase change) still moves frequency.
        let mut p = PerformanceShares::new();
        let apps = vec![app(100.0, 1.0, 3000)];
        p.initial(&ctx(50.0), &apps);
        let current = vec![KiloHertz::from_mhz(2000)];
        let steady = p
            .step(
                &ctx(50.0),
                &PolicyInput {
                    package_power: Watts(50.0),
                    apps: &[app(100.0, 1.0, 2000)],
                    current: &current,
                },
            )
            .freqs[0];
        let after_phase = p
            .step(
                &ctx(50.0),
                &PolicyInput {
                    package_power: Watts(50.0),
                    apps: &[app(100.0, 0.7, 2000)],
                    current: &current,
                },
            )
            .freqs[0];
        assert!(
            after_phase > steady,
            "IPS drop must trigger a frequency correction: {steady} -> {after_phase}"
        );
    }

    #[test]
    fn bootstraps_without_initial() {
        let mut p = PerformanceShares::new();
        let apps = vec![app(100.0, 0.5, 1500)];
        let current = vec![KiloHertz::from_mhz(1500)];
        let out = p.step(
            &ctx(50.0),
            &PolicyInput {
                package_power: Watts(30.0),
                apps: &apps,
                current: &current,
            },
        );
        assert_eq!(out.freqs.len(), 1);
        assert_eq!(p.perf_limits().len(), 1);
    }

    #[test]
    fn limits_stay_in_valid_range() {
        let mut p = PerformanceShares::new();
        let apps = vec![app(90.0, 0.9, 2800), app(10.0, 0.3, 900)];
        p.initial(&ctx(40.0), &apps);
        let mut current = vec![KiloHertz::from_mhz(2800), KiloHertz::from_mhz(900)];
        for pkg in [70.0, 65.0, 55.0, 45.0, 35.0, 20.0, 80.0] {
            let out = p.step(
                &ctx(40.0),
                &PolicyInput {
                    package_power: Watts(pkg),
                    apps: &apps,
                    current: &current,
                },
            );
            current = out.freqs.clone();
            let c = ctx(40.0);
            for (i, l) in p.perf_limits().iter().enumerate() {
                assert!(
                    (PerformanceShares::min_perf(&c) - 1e-9..=1.0 + 1e-9).contains(l),
                    "limit {l} out of range for app {i} at pkg {pkg}"
                );
            }
            for f in &out.freqs {
                assert!(c.grid.contains(*f));
            }
        }
    }
}
