//! Differential power-delivery policies (§4, §5).
//!
//! Every policy consumes the same telemetry view and produces per-app
//! frequency targets (plus park decisions for the priority policy). Share
//! policies follow the paper's three-function structure:
//!
//! 1. an **initial distribution** run when applications start,
//! 2. a **redistribution** run when measured power deviates from the
//!    limit, applying min-funding revocation over saturated apps,
//! 3. a **translation** from resource units to programmable frequencies.
//!
//! [`Policy::initial`] is (1); [`Policy::step`] is (2)+(3).

pub mod fastcap;
pub mod frequency_shares;
pub mod minfund;
pub mod performance_shares;
pub mod power_shares;
pub mod priority;
pub mod single_core;

use pap_model::{NaiveAlpha, TranslationModel};
use pap_simcpu::freq::{FreqGrid, KiloHertz};
use pap_simcpu::units::Watts;

use crate::config::Priority;
use crate::policy::minfund::Claim;

/// Telemetry view of one application, refreshed every control interval.
#[derive(Debug, Clone, PartialEq)]
pub struct AppView {
    /// Core the app is pinned to.
    pub core: usize,
    /// Proportional shares.
    pub shares: f64,
    /// Priority class.
    pub priority: Priority,
    /// Measured active frequency over the last interval (zero if the core
    /// slept through it).
    pub active_freq: KiloHertz,
    /// Measured per-core power, where the platform provides it.
    pub power: Option<Watts>,
    /// Measured instructions per second.
    pub ips: f64,
    /// Offline baseline IPS at maximum standalone frequency.
    pub baseline_ips: f64,
}

impl AppView {
    /// Normalized performance: measured IPS over the offline baseline.
    pub fn normalized_perf(&self) -> f64 {
        if self.baseline_ips <= 0.0 {
            0.0
        } else {
            self.ips / self.baseline_ips
        }
    }
}

/// Static context shared by all policies.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCtx {
    /// The platform's programmable frequency grid.
    pub grid: FreqGrid,
    /// `MaxPower` in the paper's α model; we use the platform TDP.
    pub max_power: Watts,
    /// The power limit to enforce.
    pub limit: Watts,
    /// Control deadband: inside `limit ± deadband` no redistribution runs.
    pub deadband: Watts,
    /// Damping on the α-model correction (1.0 = paper's raw formula; lower
    /// trades settling time for stability).
    pub damping: f64,
}

impl PolicyCtx {
    /// Context with default controller tuning.
    pub fn new(grid: FreqGrid, max_power: Watts, limit: Watts) -> PolicyCtx {
        PolicyCtx {
            grid,
            max_power,
            limit,
            deadband: Watts(0.5),
            damping: 0.6,
        }
    }
}

/// Per-interval input to a policy step.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyInput<'a> {
    /// Measured package power over the last interval.
    pub package_power: Watts,
    /// Telemetry per app.
    pub apps: &'a [AppView],
    /// The frequency targets the daemon currently has programmed, one per
    /// app in the same order.
    pub current: &'a [KiloHertz],
}

/// A policy decision: one frequency target and park flag per app, in app
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyOutput {
    /// Frequency targets (ignored for parked apps).
    pub freqs: Vec<KiloHertz>,
    /// Apps whose cores should be put to sleep (priority starvation).
    pub parked: Vec<bool>,
}

impl PolicyOutput {
    /// All apps running at the given frequencies, none parked.
    pub fn running(freqs: Vec<KiloHertz>) -> PolicyOutput {
        let n = freqs.len();
        PolicyOutput {
            freqs,
            parked: vec![false; n],
        }
    }

    /// Refill in place as "all running": frequencies from the iterator,
    /// nothing parked. Reuses the existing buffers (no allocation once
    /// capacity is established).
    pub fn set_running<I: IntoIterator<Item = KiloHertz>>(&mut self, freqs: I) {
        self.freqs.clear();
        self.freqs.extend(freqs);
        self.parked.clear();
        self.parked.resize(self.freqs.len(), false);
    }
}

/// Reusable buffers for [`Policy::step_into`] (DESIGN.md §11): claim,
/// allocation, and saturation vectors whose capacity survives across
/// control intervals so the steady-state step allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct PolicyScratch {
    /// Claim list for min-funding revocation.
    pub claims: Vec<Claim>,
    /// Allocation output for [`minfund::distribute_into`] /
    /// [`minfund::proportional_fill_into`].
    pub alloc: Vec<f64>,
    /// Saturation flags for [`minfund::distribute_into`].
    pub saturated: Vec<bool>,
}

impl PolicyScratch {
    /// Scratch pre-sized for `napps` applications.
    pub fn with_capacity(napps: usize) -> PolicyScratch {
        PolicyScratch {
            claims: Vec::with_capacity(napps),
            alloc: Vec::with_capacity(napps),
            saturated: Vec::with_capacity(napps),
        }
    }
}

/// A differential power-delivery policy.
pub trait Policy {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Initial distribution when applications start.
    fn initial(&mut self, ctx: &PolicyCtx, apps: &[AppView]) -> PolicyOutput;

    /// Redistribution + translation for one control interval, written
    /// into `out` using `scratch` for intermediates. This is the hot
    /// path: implementations must not allocate once `scratch`/`out` (and
    /// any internal state) have reached steady-state capacity.
    fn step_into(
        &mut self,
        ctx: &PolicyCtx,
        input: &PolicyInput<'_>,
        model: &dyn TranslationModel,
        scratch: &mut PolicyScratch,
        out: &mut PolicyOutput,
    );

    /// Redistribution + translation for one control interval, with the
    /// budget-to-frequency translation answered by `model`. Convenience
    /// wrapper over [`Policy::step_into`] with fresh buffers.
    fn step_with(
        &mut self,
        ctx: &PolicyCtx,
        input: &PolicyInput<'_>,
        model: &dyn TranslationModel,
    ) -> PolicyOutput {
        let mut scratch = PolicyScratch::default();
        let mut out = PolicyOutput::default();
        self.step_into(ctx, input, model, &mut scratch, &mut out);
        out
    }

    /// Redistribution + translation under the paper's naïve α
    /// translation (seed behaviour).
    fn step(&mut self, ctx: &PolicyCtx, input: &PolicyInput<'_>) -> PolicyOutput {
        self.step_with(ctx, input, &NaiveAlpha)
    }

    /// Append every word of internal mutable state that influences
    /// [`Policy::step_into`] to `fp`. Decision memoization folds this
    /// into its input fingerprint: a repeated fingerprint then means the
    /// step is a fixpoint — identical inputs *and* identical pre-state,
    /// so replaying the stored output (and leaving the state untouched,
    /// since a deterministic step from the same (state, input) pair
    /// reproduces the same post-state) is bit-exact. Stateless policies
    /// keep the empty default; stateful ones must emit all of it, or
    /// memoization silently diverges.
    fn memo_state(&self, fp: &mut Vec<u64>) {
        let _ = fp;
    }
}

/// Saturation-aware upper bound for raising an app's frequency: if the
/// measured frequency lags the programmed target by more than two grid
/// steps the core is capped by something the daemon does not control
/// (AVX license, turbo budget, RAPL), so granting it more frequency would
/// waste the resource. The bound is then just above what it measurably
/// achieves ("identifying saturation", §5).
pub fn useful_max(grid: &FreqGrid, requested: KiloHertz, measured: KiloHertz) -> KiloHertz {
    let two_steps = KiloHertz(grid.step().khz() * 2);
    if measured > KiloHertz::ZERO && requested > measured + two_steps {
        grid.round(measured + grid.step())
    } else {
        grid.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> FreqGrid {
        FreqGrid::new(
            KiloHertz::from_mhz(800),
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(100),
        )
    }

    #[test]
    fn normalized_perf() {
        let mut v = AppView {
            core: 0,
            shares: 50.0,
            priority: Priority::High,
            active_freq: KiloHertz::from_mhz(2000),
            power: None,
            ips: 1.5e9,
            baseline_ips: 3.0e9,
        };
        assert!((v.normalized_perf() - 0.5).abs() < 1e-12);
        v.baseline_ips = 0.0;
        assert_eq!(v.normalized_perf(), 0.0);
    }

    #[test]
    fn useful_max_detects_hardware_caps() {
        let g = grid();
        // AVX app: asked for 2.4 GHz but measures 1.7 GHz -> cap near 1.8
        let m = useful_max(&g, KiloHertz::from_mhz(2400), KiloHertz::from_mhz(1700));
        assert_eq!(m, KiloHertz::from_mhz(1800));
        // tracking fine -> full headroom
        let m = useful_max(&g, KiloHertz::from_mhz(2400), KiloHertz::from_mhz(2400));
        assert_eq!(m, g.max());
        let m = useful_max(&g, KiloHertz::from_mhz(2400), KiloHertz::from_mhz(2300));
        assert_eq!(m, g.max());
        // idle core (zero measured) is not treated as saturated
        let m = useful_max(&g, KiloHertz::from_mhz(2400), KiloHertz::ZERO);
        assert_eq!(m, g.max());
    }

    #[test]
    fn output_running_helper() {
        let o = PolicyOutput::running(vec![KiloHertz::from_mhz(1000); 3]);
        assert_eq!(o.parked, vec![false; 3]);
    }
}
