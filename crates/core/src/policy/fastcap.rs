//! FastCap-style global optimizing allocator.
//!
//! The paper's share policies split the package budget by *decree*:
//! frequencies (or watts, or normalized performance) stay proportional
//! to shares whatever the applications do with them. FastCap ("An
//! Efficient and Fair Algorithm for Power Capping in Many-Core
//! Systems", PAPERS.md) instead treats capping as a global optimization:
//! maximize the *fair speedup* — the worst per-application progress,
//! share-weighted — subject to the package cap.
//!
//! [`FastCapAlloc`] reproduces that formulation inside this codebase's
//! closed-loop structure:
//!
//! 1. the watt error against the limit is translated to a total
//!    frequency budget through the pluggable model seam (exactly like
//!    [`FrequencyShares`]), so cap enforcement keeps its feedback
//!    guarantees;
//! 2. the budget is then *water-filled on marginal fair-speedup per
//!    watt*: each app's measured performance-per-GHz efficiency `e_i`
//!    (normalized IPS over active frequency) reweights its claim, so
//!    the fill equalizes predicted speedup-per-share `e_i·f_i/s_i`
//!    instead of raw frequency-per-share. Apps whose performance has
//!    saturated (AVX licenses, turbo budget) are capped at their
//!    highest *useful* frequency and their headroom flows to apps that
//!    can still convert hertz into progress;
//! 3. the continuous fill is quantized onto the platform grid, and a
//!    final feasibility pass steps the *fastest-progressing* apps back
//!    down until the quantized total fits the budget — rounding error
//!    can therefore never push the allocation over the cap's frequency
//!    budget.
//!
//! The optimizer consumes measured IPS, so it is only as good as the
//! telemetry and model feeding it. Whenever the translation model
//! reports its package fit unconfident
//! ([`TranslationModel::package_confident`]), the step is delegated —
//! buffers and all — to an embedded [`FrequencyShares`], making the
//! unconfident regime bit-identical to the shares policy (enforced by
//! tests below, mirroring the model layer's own fallback contract).

use pap_model::{TranslationModel, TranslationQuery};
use pap_simcpu::freq::KiloHertz;

use crate::policy::frequency_shares::FrequencyShares;
use crate::policy::minfund::{proportional_fill_into, Claim};
use crate::policy::{useful_max, Policy, PolicyCtx, PolicyInput, PolicyOutput, PolicyScratch};

/// Weights are kept within this factor of the raw shares so a single
/// noisy IPS sample cannot starve or flood one application in one
/// control interval.
const WEIGHT_CLAMP: f64 = 10.0;

/// The FastCap-style optimizing allocator.
#[derive(Debug, Clone, Default)]
pub struct FastCapAlloc {
    /// The share policy used verbatim while the model is unconfident.
    fallback: FrequencyShares,
    /// Per-app water-fill weights (`s_i / e_i`, normalized); reused
    /// across steps so the steady-state path allocates nothing.
    weights: Vec<f64>,
}

impl FastCapAlloc {
    /// New allocator with the paper's controller defaults (saturation
    /// detection on in the fallback and in the optimizer's own caps).
    pub fn new() -> FastCapAlloc {
        FastCapAlloc {
            fallback: FrequencyShares::new(),
            weights: Vec::new(),
        }
    }

    /// Measured efficiency of one app: normalized performance per GHz of
    /// active frequency, or `None` when the telemetry cannot support it
    /// (no baseline, idle interval, non-finite sample).
    fn efficiency(app: &crate::policy::AppView) -> Option<f64> {
        let ghz = app.active_freq.ghz();
        let perf = app.normalized_perf();
        if ghz > 0.0 && perf.is_finite() && perf > 0.0 {
            Some(perf / ghz)
        } else {
            None
        }
    }
}

impl Policy for FastCapAlloc {
    fn name(&self) -> &'static str {
        "fastcap"
    }

    fn memo_state(&self, fp: &mut Vec<u64>) {
        fp.push(self.weights.len() as u64);
        fp.extend(self.weights.iter().map(|w| w.to_bits()));
        self.fallback.memo_state(fp);
    }

    /// Initial distribution is the share-proportional split: there is no
    /// performance telemetry yet to optimize on.
    fn initial(&mut self, ctx: &PolicyCtx, apps: &[crate::policy::AppView]) -> PolicyOutput {
        self.fallback.initial(ctx, apps)
    }

    fn step_into(
        &mut self,
        ctx: &PolicyCtx,
        input: &PolicyInput<'_>,
        model: &dyn TranslationModel,
        scratch: &mut PolicyScratch,
        out: &mut PolicyOutput,
    ) {
        if !model.package_confident() {
            // Hard fallback: the optimizer builds on measured IPS and the
            // model's curves; without a trusted fit it must behave exactly
            // like the share policy it competes against.
            self.fallback.step_into(ctx, input, model, scratch, out);
            return;
        }

        let err = ctx.limit - input.package_power;
        if err.abs() <= ctx.deadband {
            out.set_running(input.current.iter().copied());
            return;
        }

        // Efficiency-weighted claims: water-filling f_i = clamp(λ·w_i)
        // with w_i = s_i/e_i equalizes predicted speedup-per-share
        // e_i·f_i/s_i — the fair-speedup objective. Apps without usable
        // telemetry this interval fall back to the mean efficiency, i.e.
        // plain share proportionality.
        let mut e_sum = 0.0;
        let mut e_count = 0usize;
        for app in input.apps {
            if let Some(e) = Self::efficiency(app) {
                e_sum += e;
                e_count += 1;
            }
        }
        let e_mean = if e_count > 0 {
            e_sum / e_count as f64
        } else {
            1.0
        };

        self.weights.clear();
        self.weights.extend(input.apps.iter().map(|app| {
            let e = Self::efficiency(app).unwrap_or(e_mean);
            let w = app.shares * e_mean / e;
            w.clamp(app.shares / WEIGHT_CLAMP, app.shares * WEIGHT_CLAMP)
        }));

        scratch.claims.clear();
        scratch
            .claims
            .extend(input.apps.iter().zip(input.current).zip(&self.weights).map(
                |((app, &cur), &w)| {
                    let max = if err.value() > 0.0 {
                        useful_max(&ctx.grid, cur, app.active_freq)
                    } else {
                        ctx.grid.max()
                    };
                    Claim::new(
                        w,
                        cur.khz() as f64,
                        ctx.grid.min().khz() as f64,
                        max.khz() as f64,
                    )
                },
            ));

        let available = scratch
            .claims
            .iter()
            .filter(|c| {
                if err.value() > 0.0 {
                    c.current < c.max - 1.0
                } else {
                    c.current > c.min + 1.0
                }
            })
            .count();
        if available == 0 {
            out.set_running(input.current.iter().copied());
            return;
        }

        let delta = model.frequency_delta_khz(&TranslationQuery {
            power_error: err,
            max_power: ctx.max_power,
            max_freq: ctx.grid.max(),
            available,
            max_performance: 1.0,
            current: input.current,
        }) * ctx.damping;

        let budget: f64 = scratch.claims.iter().map(|c| c.current).sum::<f64>() + delta;
        proportional_fill_into(budget, &scratch.claims, &mut scratch.alloc);

        out.freqs.clear();
        out.freqs.extend(
            scratch
                .alloc
                .iter()
                .map(|&khz| ctx.grid.round(KiloHertz(khz.max(0.0) as u64))),
        );

        // Exact cap feasibility on the quantized grid: nearest-rounding
        // can overshoot the continuous budget; walk the fastest
        // predicted-speedup apps down one grid step at a time until the
        // quantized total fits. (Each pass moves one app by one step, so
        // the loop is bounded by the total overshoot in steps.)
        let step = ctx.grid.step().khz() as f64;
        loop {
            let total_khz: f64 = out.freqs.iter().map(|f| f.khz() as f64).sum();
            if total_khz <= budget + step * 0.5 {
                break;
            }
            // Highest predicted weighted speedup = f/w (λ being the
            // equalized e·f/s level, f/w ranks apps above the water line).
            let mut victim = None;
            let mut best = f64::NEG_INFINITY;
            for (i, (&f, &w)) in out.freqs.iter().zip(&self.weights).enumerate() {
                if f > ctx.grid.min() {
                    let rank = f.khz() as f64 / w.max(1e-12);
                    if rank > best {
                        best = rank;
                        victim = Some(i);
                    }
                }
            }
            match victim {
                Some(i) => out.freqs[i] = ctx.grid.step_down(out.freqs[i]),
                None => break, // everything at the floor already
            }
        }

        out.parked.clear();
        out.parked.resize(out.freqs.len(), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Priority;
    use crate::policy::AppView;
    use pap_model::{ModelConfig, NaiveAlpha, OnlineModel};
    use pap_simcpu::freq::FreqGrid;
    use pap_simcpu::units::Watts;

    fn ctx(limit: f64) -> PolicyCtx {
        PolicyCtx::new(
            FreqGrid::new(
                KiloHertz::from_mhz(800),
                KiloHertz::from_mhz(3000),
                KiloHertz::from_mhz(100),
            ),
            Watts(85.0),
            Watts(limit),
        )
    }

    fn app(core: usize, shares: f64, freq_mhz: u64, perf: f64) -> AppView {
        AppView {
            core,
            shares,
            priority: Priority::High,
            active_freq: KiloHertz::from_mhz(freq_mhz),
            power: None,
            ips: perf * 1e9,
            baseline_ips: 1e9,
        }
    }

    /// A model whose package fit is trusted, answering with the naïve
    /// arithmetic (confidence is what FastCap keys on, not the answer).
    fn confident_model() -> OnlineModel {
        let mut m = OnlineModel::new(ModelConfig::default());
        for i in 0..60 {
            let total = 4.0 + (i % 20) as f64 * 0.24;
            m.observe_sample(&pap_telemetry::sampler::Sample {
                time: pap_simcpu::units::Seconds(i as f64),
                interval: pap_simcpu::units::Seconds(1.0),
                package_power: Watts(10.0 + total + 0.25 * total * total),
                cores_power: Watts(8.0),
                cores: vec![pap_telemetry::sampler::CoreSample {
                    rates: pap_telemetry::counters::CoreRates {
                        active_freq: KiloHertz::from_ghz(total),
                        c0_residency: 1.0,
                        ips: 1e9,
                    },
                    power: None,
                    requested_freq: KiloHertz::from_ghz(total),
                }],
            });
        }
        assert!(m.package_confident(), "fixture model must be confident");
        m
    }

    #[test]
    fn unconfident_model_is_bit_identical_to_frequency_shares() {
        let model = OnlineModel::new(ModelConfig::never_confident());
        let apps = vec![
            app(0, 50.0, 2400, 0.8),
            app(1, 30.0, 1700, 0.57),
            app(2, 20.0, 1200, 0.9),
        ];
        let current = vec![
            KiloHertz::from_mhz(2400),
            KiloHertz::from_mhz(1800),
            KiloHertz::from_mhz(1200),
        ];
        for pkg in [20.0, 42.0, 49.8, 66.0] {
            let input = PolicyInput {
                package_power: Watts(pkg),
                apps: &apps,
                current: &current,
            };
            let mut fast = FastCapAlloc::new();
            let mut shares = FrequencyShares::new();
            let a = fast.step_with(&ctx(50.0), &input, &model);
            let b = shares.step_with(&ctx(50.0), &input, &model);
            assert_eq!(a, b, "divergence at pkg={pkg}");
            // NaiveAlpha reports unconfident too: same fallback.
            let c = fast.step_with(&ctx(50.0), &input, &NaiveAlpha);
            let d = shares.step_with(&ctx(50.0), &input, &NaiveAlpha);
            assert_eq!(c, d);
        }
    }

    #[test]
    fn equalizes_speedup_not_frequency() {
        // Equal shares, equal current frequency, but app 1 converts
        // hertz to progress half as well: the optimizer grants it more
        // frequency so predicted speedups line up.
        let model = confident_model();
        let mut p = FastCapAlloc::new();
        let apps = vec![app(0, 50.0, 1500, 0.75), app(1, 50.0, 1500, 0.375)];
        let current = vec![KiloHertz::from_mhz(1500); 2];
        let out = p.step_with(
            &ctx(44.0),
            &PolicyInput {
                package_power: Watts(40.0),
                apps: &apps,
                current: &current,
            },
            &model,
        );
        assert!(
            out.freqs[1] > out.freqs[0],
            "inefficient app must receive more frequency: {:?}",
            out.freqs
        );
        // The fill equalizes predicted speedup e_i·f_i: with e_0 = 2·e_1
        // the frequencies must come out near 1:2 (up to grid rounding).
        let s0 = 0.5 * out.freqs[0].ghz();
        let s1 = 0.25 * out.freqs[1].ghz();
        assert!(
            (s0 - s1).abs() / s0.max(s1) < 0.15,
            "speedups should equalize: {s0} vs {s1} ({:?})",
            out.freqs
        );
    }

    #[test]
    fn saturated_app_headroom_flows_to_others() {
        let model = confident_model();
        let mut p = FastCapAlloc::new();
        // app 0 measures far below its programmed target: hardware-capped.
        let apps = vec![app(0, 50.0, 1700, 0.57), app(1, 50.0, 2000, 0.67)];
        let current = vec![KiloHertz::from_mhz(2400), KiloHertz::from_mhz(2000)];
        let out = p.step_with(
            &ctx(70.0),
            &PolicyInput {
                package_power: Watts(40.0),
                apps: &apps,
                current: &current,
            },
            &model,
        );
        assert!(
            out.freqs[0] <= KiloHertz::from_mhz(1800),
            "saturated app capped at useful max, got {}",
            out.freqs[0]
        );
        assert!(out.freqs[1] > KiloHertz::from_mhz(2000), "{:?}", out.freqs);
    }

    #[test]
    fn quantized_total_never_exceeds_budget() {
        let model = confident_model();
        let mut p = FastCapAlloc::new();
        // Awkward share ratios force off-grid continuous allocations.
        let apps = vec![
            app(0, 37.0, 2100, 0.7),
            app(1, 63.0, 1300, 0.43),
            app(2, 11.0, 900, 0.3),
        ];
        let current = vec![
            KiloHertz::from_mhz(2100),
            KiloHertz::from_mhz(1300),
            KiloHertz::from_mhz(900),
        ];
        let c = ctx(50.0);
        for pkg in [30.0, 44.0, 58.0, 80.0] {
            let input = PolicyInput {
                package_power: Watts(pkg),
                apps: &apps,
                current: &current,
            };
            let mut scratch = PolicyScratch::default();
            let mut out = PolicyOutput::default();
            p.step_into(&c, &input, &model, &mut scratch, &mut out);
            // Recompute the continuous budget the step used.
            let err = c.limit - Watts(pkg);
            if err.abs() <= c.deadband {
                continue;
            }
            for f in &out.freqs {
                assert!(c.grid.contains(*f), "{f} off grid at pkg={pkg}");
            }
            let total: f64 = out.freqs.iter().map(|f| f.khz() as f64).sum();
            let cur_total: f64 = current.iter().map(|f| f.khz() as f64).sum();
            // The quantized total may not exceed current + translated
            // delta by more than half a grid step (the rounding slack the
            // feasibility pass tolerates).
            if err.value() < 0.0 {
                assert!(
                    total <= cur_total + c.grid.step().khz() as f64 * 0.5,
                    "withdrawal must not raise the total: {total} vs {cur_total}"
                );
            }
        }
    }

    #[test]
    fn deadband_and_no_headroom_hold() {
        let model = confident_model();
        let mut p = FastCapAlloc::new();
        let apps = vec![app(0, 50.0, 2000, 0.67)];
        let current = vec![KiloHertz::from_mhz(2000)];
        let out = p.step_with(
            &ctx(50.0),
            &PolicyInput {
                package_power: Watts(50.2),
                apps: &apps,
                current: &current,
            },
            &model,
        );
        assert_eq!(out.freqs, current);

        let apps = vec![app(0, 50.0, 3000, 1.0)];
        let current = vec![KiloHertz::from_mhz(3000)];
        let out = p.step_with(
            &ctx(80.0),
            &PolicyInput {
                package_power: Watts(40.0),
                apps: &apps,
                current: &current,
            },
            &model,
        );
        assert_eq!(out.freqs, current, "cannot raise past max");
    }

    #[test]
    fn initial_matches_share_split() {
        let mut fast = FastCapAlloc::new();
        let mut shares = FrequencyShares::new();
        let apps = vec![app(0, 70.0, 0, 0.0), app(1, 30.0, 0, 0.0)];
        assert_eq!(
            fast.initial(&ctx(50.0), &apps),
            shares.initial(&ctx(50.0), &apps)
        );
    }
}
