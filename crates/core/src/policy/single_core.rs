//! Single-core sharing policy (§4.3).
//!
//! When applications time-share one core they cannot hold different
//! frequencies; the policy instead picks one core frequency and adjusts
//! CPU-share fractions. The paper enumerates three combinations:
//!
//! 1. *Equal demands, mixed shares/priorities* — set the core to the
//!    highest P-state at which either app stays within the power limit;
//!    shares untouched.
//! 2. *Mixed demands, equal shares, same priority* — the high-demand app
//!    forces the frequency down, unfairly throttling the low-demand app;
//!    compensate by granting the more-throttled app extra runtime.
//! 3. *Mixed demands, mixed shares/priorities* — run the high-priority
//!    app at the highest level within the limit; an HDLP app that cannot
//!    fit at that frequency is excluded entirely ("does not run at all").
//!
//! Power accounting uses the Figure-6 time-weighted-sum property via the
//! same model the chip integrates.

use pap_simcpu::freq::{FreqGrid, KiloHertz};
use pap_simcpu::power::{LoadDescriptor, PowerModel};
use pap_simcpu::units::Watts;
use pap_workloads::profile::WorkloadProfile;

use crate::config::Priority;

/// One time-shared application.
#[derive(Debug, Clone)]
pub struct SharedApp {
    /// The workload.
    pub profile: WorkloadProfile,
    /// Proportional CPU shares.
    pub shares: u32,
    /// Priority class.
    pub priority: Priority,
}

/// The policy's decision for the core.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleCoreDecision {
    /// The one frequency the core runs at.
    pub freq: KiloHertz,
    /// CPU-time fraction per app (0 for excluded apps; sums to ≤ 1).
    pub fractions: Vec<f64>,
    /// Apps excluded because they cannot fit under the limit at the
    /// chosen frequency (§4.3 case 3).
    pub excluded: Vec<bool>,
}

/// Time-weighted core power for a fraction assignment at `freq`.
fn weighted_power(
    model: &PowerModel,
    freq: KiloHertz,
    apps: &[SharedApp],
    fractions: &[f64],
) -> Watts {
    let mut p = Watts::ZERO;
    let mut used = 0.0;
    for (app, &frac) in apps.iter().zip(fractions) {
        p += model.core_power(freq, &app.profile.load_at(freq)) * frac;
        used += frac;
    }
    p + model.core_power(freq, &LoadDescriptor::IDLE) * (1.0 - used).max(0.0)
}

/// Share-proportional fractions over the non-excluded apps.
fn proportional_fractions(apps: &[SharedApp], excluded: &[bool]) -> Vec<f64> {
    let total: f64 = apps
        .iter()
        .zip(excluded)
        .filter(|(_, &e)| !e)
        .map(|(a, _)| a.shares as f64)
        .sum();
    apps.iter()
        .zip(excluded)
        .map(|(a, &e)| {
            if e || total <= 0.0 {
                0.0
            } else {
                a.shares as f64 / total
            }
        })
        .collect()
}

/// §4.3 case-2 compensation: rescale fractions by each app's relative
/// performance loss at `freq` vs `reference`, so throttling-sensitive
/// apps receive extra runtime. Share proportions are preserved in the
/// *performance* domain rather than the time domain.
pub fn compensate_fractions(
    apps: &[SharedApp],
    fractions: &[f64],
    freq: KiloHertz,
    reference: KiloHertz,
) -> Vec<f64> {
    let weights: Vec<f64> = apps
        .iter()
        .zip(fractions)
        .map(|(a, &f)| {
            if f <= 0.0 {
                0.0
            } else {
                // perf loss factor > 1 for apps hurt more by the throttle
                let loss = a.profile.ips(reference) / a.profile.ips(freq);
                f * loss
            }
        })
        .collect();
    let used: f64 = fractions.iter().sum();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return fractions.to_vec();
    }
    weights.iter().map(|w| w / total * used).collect()
}

/// Plan a time-shared core under a per-core power budget.
///
/// Walks the grid from the top: at each frequency, HDLP apps that would
/// push the time-weighted power over the budget are excluded (only while
/// a high-priority app is present, per §4.3 case 3); the first frequency
/// whose weighted power fits is chosen. Falls back to the grid minimum
/// with everything running if even that does not fit (the budget then
/// simply cannot be met — the caller owns that trade).
pub fn plan_shared_core(
    model: &PowerModel,
    grid: &FreqGrid,
    budget: Watts,
    apps: &[SharedApp],
) -> SingleCoreDecision {
    assert!(!apps.is_empty(), "no apps to plan");
    let has_hp = apps.iter().any(|a| a.priority == Priority::High);

    // Candidate frequencies, highest first.
    let mut freqs: Vec<KiloHertz> = grid.iter().collect();
    freqs.reverse();

    for &freq in &freqs {
        // Start with everyone in, share-proportional.
        let mut excluded = vec![false; apps.len()];
        loop {
            let fractions = proportional_fractions(apps, &excluded);
            let p = weighted_power(model, freq, apps, &fractions);
            if p <= budget {
                return SingleCoreDecision {
                    freq,
                    fractions,
                    excluded,
                };
            }
            // Over budget at this frequency: with an HP app present, try
            // excluding the heaviest low-priority app before giving up on
            // the frequency (case 3: the HDLP app "does not run at all").
            if !has_hp {
                break;
            }
            let heaviest_lp = apps
                .iter()
                .enumerate()
                .filter(|(i, a)| !excluded[*i] && a.priority == Priority::Low)
                .max_by(|(_, a), (_, b)| {
                    a.profile
                        .capacitance
                        .partial_cmp(&b.profile.capacitance)
                        .expect("finite capacitance")
                });
            match heaviest_lp {
                Some((i, _)) => excluded[i] = true,
                None => break, // only HP apps left; lower the frequency
            }
        }
    }

    // Nothing fits: run everything at the floor.
    let excluded = vec![false; apps.len()];
    SingleCoreDecision {
        freq: grid.min(),
        fractions: proportional_fractions(apps, &excluded),
        excluded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_simcpu::platform::PlatformSpec;
    use pap_workloads::spec;

    fn model_and_grid() -> (PowerModel, FreqGrid) {
        let p = PlatformSpec::ryzen();
        (p.power, p.grid)
    }

    fn app(profile: WorkloadProfile, shares: u32, priority: Priority) -> SharedApp {
        SharedApp {
            profile,
            shares,
            priority,
        }
    }

    /// §4.3 case 1: equal demands — one frequency, shares untouched.
    #[test]
    fn case1_equal_demands() {
        let (model, grid) = model_and_grid();
        let apps = vec![
            app(spec::LEELA, 75, Priority::High),
            app(spec::LEELA, 25, Priority::Low),
        ];
        let d = plan_shared_core(&model, &grid, Watts(6.0), &apps);
        assert!(d.excluded.iter().all(|&e| !e));
        assert!((d.fractions[0] - 0.75).abs() < 1e-9);
        assert!((d.fractions[1] - 0.25).abs() < 1e-9);
        // and the frequency is the highest that fits the 6 W budget
        let up = grid.step_up(d.freq);
        if up > d.freq {
            let over = weighted_power(&model, up, &apps, &d.fractions);
            assert!(over > Watts(6.0), "a higher frequency would also fit");
        }
    }

    /// §4.3 case 2: mixed demands, equal shares — the HD app drags the
    /// frequency down; compensation hands the throttling-sensitive app
    /// extra runtime.
    #[test]
    fn case2_compensation() {
        let (model, grid) = model_and_grid();
        let apps = vec![
            app(spec::CACTUS_BSSN, 50, Priority::High), // HD
            app(spec::EXCHANGE2, 50, Priority::High),   // LD, frequency-hungry
        ];
        let d = plan_shared_core(&model, &grid, Watts(4.0), &apps);
        assert!(d.freq < grid.max(), "4 W must force throttling");
        let comp = compensate_fractions(&apps, &d.fractions, d.freq, grid.max());
        // exchange2 loses more performance per MHz -> gains runtime
        assert!(
            comp[1] > d.fractions[1] + 0.01,
            "LD fraction {} -> {}",
            d.fractions[1],
            comp[1]
        );
        // total runtime conserved
        let before: f64 = d.fractions.iter().sum();
        let after: f64 = comp.iter().sum();
        assert!((before - after).abs() < 1e-9);
    }

    /// §4.3 case 3 (LDHP + HDLP): the core runs at the HP app's maximum
    /// and the high-demand low-priority app is excluded when it cannot
    /// fit.
    #[test]
    fn case3_hdlp_excluded() {
        let (model, grid) = model_and_grid();
        let apps = vec![
            app(spec::LEELA, 50, Priority::High), // LDHP
            app(spec::LBM, 50, Priority::Low),    // HDLP (heavy)
        ];
        // Budget fits leela at a high frequency but not lbm's share.
        let d = plan_shared_core(&model, &grid, Watts(4.5), &apps);
        assert!(d.excluded[1], "HDLP app must be excluded");
        assert!(!d.excluded[0]);
        assert!((d.fractions[0] - 1.0).abs() < 1e-9, "HP app takes the core");
        assert_eq!(d.fractions[1], 0.0);
        // and the HP app runs faster than it would have with lbm included
        let both = vec![false, false];
        let frac_both = proportional_fractions(&apps, &both);
        let p_both = weighted_power(&model, d.freq, &apps, &frac_both);
        assert!(p_both > Watts(4.5), "inclusion would have blown the budget");
    }

    /// §4.3 case 3 (HDHP): the low-priority app runs at the same (lower)
    /// frequency rather than being excluded, because the HP app itself is
    /// what limits the frequency.
    #[test]
    fn case3_hdhp_drags_both() {
        let (model, grid) = model_and_grid();
        let apps = vec![
            app(spec::CACTUS_BSSN, 50, Priority::High), // HDHP
            app(spec::LEELA, 50, Priority::Low),        // LDLP
        ];
        let d = plan_shared_core(&model, &grid, Watts(5.0), &apps);
        // leela is cheap; excluding it would barely help, so it stays
        assert!(!d.excluded[1], "LDLP should not be excluded");
        assert!(d.freq < grid.max());
    }

    /// Without any high-priority app no one is excluded; the frequency
    /// just drops.
    #[test]
    fn no_hp_means_no_exclusion() {
        let (model, grid) = model_and_grid();
        let apps = vec![
            app(spec::LBM, 50, Priority::Low),
            app(spec::CAM4, 50, Priority::Low),
        ];
        let d = plan_shared_core(&model, &grid, Watts(3.0), &apps);
        assert!(d.excluded.iter().all(|&e| !e));
        assert!(d.freq < grid.max());
    }

    /// Impossible budget: everything runs at the floor (the documented
    /// fallback).
    #[test]
    fn impossible_budget_floors() {
        let (model, grid) = model_and_grid();
        let apps = vec![app(spec::LBM, 100, Priority::Low)];
        let d = plan_shared_core(&model, &grid, Watts(0.01), &apps);
        assert_eq!(d.freq, grid.min());
        assert!((d.fractions[0] - 1.0).abs() < 1e-9);
    }

    /// The chosen plan always fits the budget when any plan does, and the
    /// weighted power matches the Figure-6 time-weighted sum.
    #[test]
    fn plan_fits_budget() {
        let (model, grid) = model_and_grid();
        let apps = vec![
            app(spec::CACTUS_BSSN, 60, Priority::High),
            app(spec::GCC, 40, Priority::Low),
        ];
        for budget in [3.0, 5.0, 8.0, 12.0] {
            let d = plan_shared_core(&model, &grid, Watts(budget), &apps);
            let p = weighted_power(&model, d.freq, &apps, &d.fractions);
            if d.freq > grid.min() {
                assert!(p <= Watts(budget + 1e-9), "plan at {budget} W draws {p}");
            }
        }
    }
}
