//! Proportional **frequency shares** (§5.2).
//!
//! Applications' frequencies are kept proportional to their shares; the
//! package power limit is enforced by scaling the whole frequency
//! allocation up or down through the paper's α translation model. The
//! policy needs only package-level power telemetry and per-core DVFS,
//! which is why the paper finds it the most broadly implementable — and,
//! empirically, the most stable (frequency does not move with program
//! phase the way IPS does).

use pap_model::{TranslationModel, TranslationQuery};
use pap_simcpu::freq::KiloHertz;

use crate::policy::minfund::{
    distribute_into, initial_proportional, proportional_fill_into, Claim,
};
use crate::policy::{useful_max, Policy, PolicyCtx, PolicyInput, PolicyOutput, PolicyScratch};

/// The frequency-shares policy. Stateless beyond the trait's contract:
/// the "current allocation" lives in the daemon's programmed targets.
#[derive(Debug, Clone, Default)]
pub struct FrequencyShares {
    /// §4.4 extension: honor measured saturation when raising frequency.
    pub saturation_aware: bool,
    /// Use the paper's literal incremental-delta redistribution instead of
    /// the share-proportional water-fill. Kept for the ablation study:
    /// incremental deltas drift away from proportionality when high-share
    /// apps saturate (e.g. a frequency-capped service co-located with a
    /// low-share virus).
    pub incremental: bool,
}

impl FrequencyShares {
    /// New policy with the paper's behavior (saturation detection on).
    pub fn new() -> FrequencyShares {
        FrequencyShares {
            saturation_aware: true,
            incremental: false,
        }
    }
}

impl Policy for FrequencyShares {
    fn name(&self) -> &'static str {
        "freq-shares"
    }

    /// "The initial distribution function sets the highest-share
    /// application to the maximum frequency and remaining applications to
    /// their proportions of the maximum frequency."
    fn initial(&mut self, ctx: &PolicyCtx, apps: &[crate::policy::AppView]) -> PolicyOutput {
        let shares: Vec<f64> = apps.iter().map(|a| a.shares).collect();
        let raw = initial_proportional(
            &shares,
            ctx.grid.max().khz() as f64,
            ctx.grid.min().khz() as f64,
        );
        PolicyOutput::running(
            raw.into_iter()
                .map(|khz| ctx.grid.round(KiloHertz(khz as u64)))
                .collect(),
        )
    }

    /// "The redistribution function computes the difference in power used
    /// to the target, converts it to frequency, and distributes the
    /// frequency among non-saturated cores. The translation function
    /// converts the target frequencies into valid (quantized) frequencies."
    fn step_into(
        &mut self,
        ctx: &PolicyCtx,
        input: &PolicyInput<'_>,
        model: &dyn TranslationModel,
        scratch: &mut PolicyScratch,
        out: &mut PolicyOutput,
    ) {
        let err = ctx.limit - input.package_power;
        if err.abs() <= ctx.deadband {
            out.set_running(input.current.iter().copied());
            return;
        }

        scratch.claims.clear();
        scratch
            .claims
            .extend(input.apps.iter().zip(input.current).map(|(app, &cur)| {
                let max = if self.saturation_aware && err.value() > 0.0 {
                    useful_max(&ctx.grid, cur, app.active_freq)
                } else {
                    ctx.grid.max()
                };
                Claim::new(
                    app.shares,
                    cur.khz() as f64,
                    ctx.grid.min().khz() as f64,
                    max.khz() as f64,
                )
            }));

        let available = scratch
            .claims
            .iter()
            .filter(|c| {
                if err.value() > 0.0 {
                    c.current < c.max - 1.0
                } else {
                    c.current > c.min + 1.0
                }
            })
            .count();
        if available == 0 {
            out.set_running(input.current.iter().copied());
            return;
        }

        let delta = model.frequency_delta_khz(&TranslationQuery {
            power_error: err,
            max_power: ctx.max_power,
            max_freq: ctx.grid.max(),
            available,
            max_performance: 1.0,
            current: input.current,
        }) * ctx.damping;
        // Re-run the distribution over the adjusted total: a proportional
        // water-fill keeps allocations share-proportional even after
        // saturated apps are revoked from the mix. The incremental scheme
        // (the paper's literal formulation) is retained for ablation.
        if self.incremental {
            distribute_into(
                delta,
                &scratch.claims,
                &mut scratch.alloc,
                &mut scratch.saturated,
            );
        } else {
            let total: f64 = scratch.claims.iter().map(|c| c.current).sum::<f64>() + delta;
            proportional_fill_into(total, &scratch.claims, &mut scratch.alloc);
        }

        out.freqs.clear();
        out.freqs.extend(
            scratch
                .alloc
                .iter()
                .map(|&khz| ctx.grid.round(KiloHertz(khz.max(0.0) as u64))),
        );
        out.parked.clear();
        out.parked.resize(out.freqs.len(), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Priority;
    use crate::policy::AppView;
    use pap_simcpu::freq::FreqGrid;
    use pap_simcpu::units::Watts;

    fn ctx(limit: f64) -> PolicyCtx {
        PolicyCtx::new(
            FreqGrid::new(
                KiloHertz::from_mhz(800),
                KiloHertz::from_mhz(3000),
                KiloHertz::from_mhz(100),
            ),
            Watts(85.0),
            Watts(limit),
        )
    }

    fn app(core: usize, shares: f64, freq_mhz: u64) -> AppView {
        AppView {
            core,
            shares,
            priority: Priority::High,
            active_freq: KiloHertz::from_mhz(freq_mhz),
            power: None,
            ips: 1e9,
            baseline_ips: 1e9,
        }
    }

    #[test]
    fn initial_is_share_proportional() {
        let mut p = FrequencyShares::new();
        let apps = vec![app(0, 70.0, 0), app(1, 30.0, 0)];
        let out = p.initial(&ctx(50.0), &apps);
        assert_eq!(out.freqs[0], KiloHertz::from_mhz(3000));
        // 30/70 of 3000 MHz = 1286 -> rounds to 1300
        assert_eq!(out.freqs[1], KiloHertz::from_mhz(1300));
    }

    #[test]
    fn initial_floors_extreme_ratios_at_min() {
        let mut p = FrequencyShares::new();
        let apps = vec![app(0, 99.0, 0), app(1, 1.0, 0)];
        let out = p.initial(&ctx(50.0), &apps);
        // low dynamic range (§5.2): 1/99 of 3 GHz would be 30 MHz, floored
        assert_eq!(out.freqs[1], KiloHertz::from_mhz(800));
    }

    #[test]
    fn over_budget_withdraws_proportionally() {
        let mut p = FrequencyShares::new();
        let apps = vec![app(0, 50.0, 2500), app(1, 50.0, 2500)];
        let current = vec![KiloHertz::from_mhz(2500); 2];
        let out = p.step(
            &ctx(40.0),
            &PolicyInput {
                package_power: Watts(60.0),
                apps: &apps,
                current: &current,
            },
        );
        assert!(out.freqs[0] < KiloHertz::from_mhz(2500));
        assert_eq!(out.freqs[0], out.freqs[1], "equal shares move together");
    }

    #[test]
    fn under_budget_raises() {
        let mut p = FrequencyShares::new();
        let apps = vec![app(0, 50.0, 1500), app(1, 50.0, 1500)];
        let current = vec![KiloHertz::from_mhz(1500); 2];
        let out = p.step(
            &ctx(60.0),
            &PolicyInput {
                package_power: Watts(40.0),
                apps: &apps,
                current: &current,
            },
        );
        assert!(out.freqs[0] > KiloHertz::from_mhz(1500));
    }

    #[test]
    fn deadband_holds_allocation() {
        let mut p = FrequencyShares::new();
        let apps = vec![app(0, 50.0, 2000)];
        let current = vec![KiloHertz::from_mhz(2000)];
        let out = p.step(
            &ctx(50.0),
            &PolicyInput {
                package_power: Watts(50.3),
                apps: &apps,
                current: &current,
            },
        );
        assert_eq!(out.freqs, current);
    }

    #[test]
    fn saturated_avx_app_excluded_from_raises() {
        let mut p = FrequencyShares::new();
        // app 0 measures far below its target (hardware-capped), app 1 tracks
        let apps = vec![app(0, 50.0, 1700), app(1, 50.0, 2000)];
        let current = vec![KiloHertz::from_mhz(2400), KiloHertz::from_mhz(2000)];
        let out = p.step(
            &ctx(60.0),
            &PolicyInput {
                package_power: Watts(40.0),
                apps: &apps,
                current: &current,
            },
        );
        // the capped app must not be granted beyond just-above-measured
        assert!(out.freqs[0] <= KiloHertz::from_mhz(2400));
        // the unconstrained app takes the excess
        assert!(out.freqs[1] > KiloHertz::from_mhz(2000));
    }

    #[test]
    fn all_at_bounds_is_stable() {
        let mut p = FrequencyShares::new();
        let apps = vec![app(0, 50.0, 3000)];
        let current = vec![KiloHertz::from_mhz(3000)];
        let out = p.step(
            &ctx(80.0),
            &PolicyInput {
                package_power: Watts(40.0),
                apps: &apps,
                current: &current,
            },
        );
        assert_eq!(out.freqs, current, "cannot raise past max");
    }

    #[test]
    fn outputs_always_on_grid() {
        let mut p = FrequencyShares::new();
        let apps = vec![app(0, 37.0, 2100), app(1, 63.0, 1300)];
        let current = vec![KiloHertz::from_mhz(2100), KiloHertz::from_mhz(1300)];
        for pkg in [20.0, 45.0, 70.0] {
            let out = p.step(
                &ctx(50.0),
                &PolicyInput {
                    package_power: Watts(pkg),
                    apps: &apps,
                    current: &current,
                },
            );
            let c = ctx(50.0);
            for f in &out.freqs {
                assert!(c.grid.contains(*f), "{f} off grid at pkg={pkg}");
            }
        }
    }
}
