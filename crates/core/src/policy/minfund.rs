//! Min-funding revocation (§5: "when there is excess power, we use a
//! min-funding revocation policy [Waldspurger] to distribute the excess
//! across applications that are not running at the maximum frequency").
//!
//! [`distribute`] apportions a signed resource delta across claims in
//! proportion to their shares, respecting each claim's `[min, max]` bounds.
//! Claims that saturate are removed from the mix and the residual is
//! re-distributed across the remainder — the paper's "re-running the
//! distribution algorithm across the remaining resources and remaining
//! applications".

/// One application's claim on the shared resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Claim {
    /// Proportional shares (weight). Must be positive.
    pub share: f64,
    /// Current allocation in resource units.
    pub current: f64,
    /// Lower saturation bound.
    pub min: f64,
    /// Upper saturation bound.
    pub max: f64,
}

impl Claim {
    /// Construct a claim, clamping `current` into `[min, max]`.
    pub fn new(share: f64, current: f64, min: f64, max: f64) -> Claim {
        debug_assert!(share > 0.0, "non-positive share");
        debug_assert!(min <= max, "min {min} above max {max}");
        Claim {
            share,
            current: current.clamp(min, max),
            min,
            max,
        }
    }
}

/// Result of a distribution round.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// New allocation per claim, in input order.
    pub allocations: Vec<f64>,
    /// Residual delta that could not be placed because every claim
    /// saturated (0 when fully distributed).
    pub unplaced: f64,
}

/// Distribute a signed `delta` across `claims` proportionally to shares
/// with min-funding revocation of saturated claims.
///
/// Positive `delta` adds resource (claims saturate at `max`); negative
/// `delta` withdraws it (claims saturate at `min`).
pub fn distribute(delta: f64, claims: &[Claim]) -> Distribution {
    let mut alloc = Vec::new();
    let mut saturated = Vec::new();
    let unplaced = distribute_into(delta, claims, &mut alloc, &mut saturated);
    Distribution {
        allocations: alloc,
        unplaced,
    }
}

/// Allocation-free core of [`distribute`]: writes the new allocations
/// into `alloc` (cleared first) and uses `saturated` as scratch, both
/// reused across calls on the hot path. Returns the unplaced residual.
pub fn distribute_into(
    delta: f64,
    claims: &[Claim],
    alloc: &mut Vec<f64>,
    saturated: &mut Vec<bool>,
) -> f64 {
    alloc.clear();
    alloc.extend(claims.iter().map(|c| c.current));
    if claims.is_empty() || delta == 0.0 {
        return delta;
    }

    let mut remaining = delta;
    saturated.clear();
    saturated.resize(claims.len(), false);
    // Each pass either places all the remainder or saturates at least one
    // claim, so the loop terminates in at most `claims.len()` passes.
    for _ in 0..claims.len() {
        if remaining.abs() < 1e-12 {
            remaining = 0.0;
            break;
        }
        let total_share: f64 = claims
            .iter()
            .zip(saturated.iter())
            .filter(|(_, &s)| !s)
            .map(|(c, _)| c.share)
            .sum();
        if total_share <= 0.0 {
            break; // everyone saturated
        }
        let mut placed = 0.0;
        for (i, c) in claims.iter().enumerate() {
            if saturated[i] {
                continue;
            }
            let want = remaining * c.share / total_share;
            let target = alloc[i] + want;
            let clamped = target.clamp(c.min, c.max);
            placed += clamped - alloc[i];
            alloc[i] = clamped;
            if (remaining > 0.0 && clamped >= c.max - 1e-12)
                || (remaining < 0.0 && clamped <= c.min + 1e-12)
            {
                saturated[i] = true;
            }
        }
        remaining -= placed;
        if placed.abs() < 1e-12 {
            break; // nothing moved; all effectively saturated
        }
    }

    remaining
}

/// Allocate a target `total` across claims so that allocations are
/// proportional to shares wherever no bound binds: a water-fill
/// `a_i = clamp(λ·share_i, min_i, max_i)` with λ chosen so the sum hits
/// `total`. This is "re-running the distribution algorithm across the
/// remaining resources and remaining applications" in closed form —
/// unlike distributing incremental deltas, repeated calls cannot drift
/// away from share proportionality when some claims saturate.
///
/// If `total` is below the sum of minima (or above the sum of maxima),
/// every claim sits at its bound and the shortfall/excess is reported in
/// [`Distribution::unplaced`].
///
/// ```
/// use powerd::policy::minfund::{proportional_fill, Claim};
/// let claims = vec![
///     Claim::new(90.0, 0.0, 800.0, 2500.0), // capped high-share app
///     Claim::new(10.0, 0.0, 800.0, 3000.0),
/// ];
/// let d = proportional_fill(4000.0, &claims);
/// // the cap binds; the remainder flows to the low-share claim
/// assert!((d.allocations[0] - 2500.0).abs() < 1e-6);
/// assert!((d.allocations[1] - 1500.0).abs() < 1e-6);
/// ```
pub fn proportional_fill(total: f64, claims: &[Claim]) -> Distribution {
    let mut alloc = Vec::new();
    let unplaced = proportional_fill_into(total, claims, &mut alloc);
    Distribution {
        allocations: alloc,
        unplaced,
    }
}

/// Allocation-free core of [`proportional_fill`]: writes the water-fill
/// result into `alloc` (cleared first) and returns the unplaced residual.
pub fn proportional_fill_into(total: f64, claims: &[Claim], alloc: &mut Vec<f64>) -> f64 {
    alloc.clear();
    if claims.is_empty() {
        return total;
    }
    let sum_min: f64 = claims.iter().map(|c| c.min).sum();
    let sum_max: f64 = claims.iter().map(|c| c.max).sum();
    if total <= sum_min {
        alloc.extend(claims.iter().map(|c| c.min));
        return total - sum_min;
    }
    if total >= sum_max {
        alloc.extend(claims.iter().map(|c| c.max));
        return total - sum_max;
    }
    // Σ clamp(λ·share, min, max) is continuous and non-decreasing in λ;
    // bisect λ between 0 and the value that maxes every claim.
    let alloc_at = |lambda: f64| -> f64 {
        claims
            .iter()
            .map(|c| (lambda * c.share).clamp(c.min, c.max))
            .sum()
    };
    let mut lo = 0.0;
    let mut hi = claims
        .iter()
        .map(|c| c.max / c.share)
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if alloc_at(mid) < total {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = 0.5 * (lo + hi);
    alloc.extend(
        claims
            .iter()
            .map(|c| (lambda * c.share).clamp(c.min, c.max)),
    );
    0.0
}

/// Proportional *initial* split (§5.2 initial distribution functions): the
/// highest-share claim receives `max_value`, the rest their proportional
/// fraction of it, floored at each claim's `min`.
pub fn initial_proportional(shares: &[f64], max_value: f64, min_value: f64) -> Vec<f64> {
    debug_assert!(shares.iter().all(|&s| s > 0.0));
    let top = shares.iter().copied().fold(0.0_f64, f64::max);
    if top <= 0.0 {
        return vec![min_value; shares.len()];
    }
    shares
        .iter()
        .map(|&s| (max_value * s / top).max(min_value).min(max_value))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claims3() -> Vec<Claim> {
        vec![
            Claim::new(3.0, 1000.0, 800.0, 3000.0),
            Claim::new(1.0, 1000.0, 800.0, 3000.0),
            Claim::new(1.0, 1000.0, 800.0, 3000.0),
        ]
    }

    #[test]
    fn proportional_when_unsaturated() {
        let d = distribute(500.0, &claims3());
        assert_eq!(d.unplaced, 0.0);
        assert!((d.allocations[0] - 1300.0).abs() < 1e-9);
        assert!((d.allocations[1] - 1100.0).abs() < 1e-9);
        assert!((d.allocations[2] - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn conservation() {
        let c = claims3();
        for delta in [-300.0, 250.0, 1200.0] {
            let d = distribute(delta, &c);
            let before: f64 = c.iter().map(|c| c.current).sum();
            let after: f64 = d.allocations.iter().sum();
            assert!(
                (after - before - (delta - d.unplaced)).abs() < 1e-9,
                "conservation violated at delta {delta}"
            );
        }
    }

    #[test]
    fn saturation_revokes_and_redistributes() {
        let c = vec![
            Claim::new(3.0, 2900.0, 800.0, 3000.0), // nearly saturated high
            Claim::new(1.0, 1000.0, 800.0, 3000.0),
        ];
        let d = distribute(1000.0, &c);
        assert_eq!(d.unplaced, 0.0);
        // claim 0 absorbs only 100; the remaining 900 flows to claim 1
        assert!((d.allocations[0] - 3000.0).abs() < 1e-9);
        assert!((d.allocations[1] - 1900.0).abs() < 1e-9);
    }

    #[test]
    fn withdrawal_respects_min() {
        let c = vec![
            Claim::new(1.0, 900.0, 800.0, 3000.0),
            Claim::new(1.0, 2000.0, 800.0, 3000.0),
        ];
        let d = distribute(-600.0, &c);
        assert_eq!(d.unplaced, 0.0);
        assert!((d.allocations[0] - 800.0).abs() < 1e-9, "floored at min");
        assert!((d.allocations[1] - 1500.0).abs() < 1e-9, "absorbs the rest");
    }

    #[test]
    fn fully_saturated_reports_unplaced() {
        let c = vec![Claim::new(1.0, 3000.0, 800.0, 3000.0)];
        let d = distribute(500.0, &c);
        assert!((d.unplaced - 500.0).abs() < 1e-9);
        let d = distribute(-5000.0, &c);
        assert!((d.allocations[0] - 800.0).abs() < 1e-9);
        assert!((d.unplaced + 2800.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_delta() {
        let d = distribute(100.0, &[]);
        assert!(d.allocations.is_empty());
        assert_eq!(d.unplaced, 100.0);
        let c = claims3();
        let d = distribute(0.0, &c);
        assert_eq!(d.allocations, vec![1000.0, 1000.0, 1000.0]);
    }

    #[test]
    fn bounds_always_respected() {
        let c = vec![
            Claim::new(5.0, 1500.0, 800.0, 1600.0),
            Claim::new(1.0, 900.0, 800.0, 3000.0),
        ];
        for delta in [-2000.0, -100.0, 0.0, 100.0, 5000.0] {
            let d = distribute(delta, &c);
            for (a, cl) in d.allocations.iter().zip(&c) {
                assert!(*a >= cl.min - 1e-9 && *a <= cl.max + 1e-9, "delta {delta}");
            }
        }
    }

    #[test]
    fn fill_proportional_when_unbounded() {
        let c = vec![
            Claim::new(90.0, 0.0, 0.0, 10_000.0),
            Claim::new(10.0, 0.0, 0.0, 10_000.0),
        ];
        let d = proportional_fill(1000.0, &c);
        assert!((d.allocations[0] - 900.0).abs() < 1e-6);
        assert!((d.allocations[1] - 100.0).abs() < 1e-6);
        assert!(d.unplaced.abs() < 1e-9);
    }

    #[test]
    fn fill_respects_bounds_and_refills() {
        // high-share claim capped at 2500: the remainder goes to the
        // low-share claim only after the cap binds
        let c = vec![
            Claim::new(90.0, 0.0, 800.0, 2500.0),
            Claim::new(10.0, 0.0, 800.0, 3000.0),
        ];
        let d = proportional_fill(3300.0, &c);
        assert!((d.allocations[0] - 2500.0).abs() < 1e-6);
        assert!((d.allocations[1] - 800.0).abs() < 1e-6);
        // more total: cap still binds, excess flows to the small claim
        let d = proportional_fill(4000.0, &c);
        assert!((d.allocations[0] - 2500.0).abs() < 1e-6);
        assert!((d.allocations[1] - 1500.0).abs() < 1e-6);
    }

    #[test]
    fn fill_repeated_calls_do_not_drift() {
        // The ratchet the incremental scheme suffers from: alternate
        // raising and lowering the total; allocations must return to the
        // same point.
        let c = vec![
            Claim::new(90.0, 0.0, 800.0, 2500.0),
            Claim::new(10.0, 0.0, 800.0, 3000.0),
        ];
        let first = proportional_fill(3300.0, &c);
        let up = proportional_fill(4000.0, &c);
        let _ = up;
        let back = proportional_fill(3300.0, &c);
        assert_eq!(first.allocations, back.allocations);
    }

    #[test]
    fn fill_saturation_extremes() {
        let c = vec![Claim::new(1.0, 0.0, 800.0, 3000.0)];
        let d = proportional_fill(100.0, &c);
        assert_eq!(d.allocations, vec![800.0]);
        assert!((d.unplaced - (100.0 - 800.0)).abs() < 1e-9);
        let d = proportional_fill(9000.0, &c);
        assert_eq!(d.allocations, vec![3000.0]);
        assert!((d.unplaced - 6000.0).abs() < 1e-9);
        let d = proportional_fill(500.0, &[]);
        assert!(d.allocations.is_empty());
        assert_eq!(d.unplaced, 500.0);
    }

    #[test]
    fn initial_split_tops_highest_share() {
        let v = initial_proportional(&[90.0, 10.0], 3000.0, 800.0);
        assert!((v[0] - 3000.0).abs() < 1e-9);
        // 10/90 of 3000 = 333 -> floored at 800 (the paper's low dynamic
        // range observation: extreme ratios are unachievable)
        assert!((v[1] - 800.0).abs() < 1e-9);
        let v = initial_proportional(&[70.0, 30.0], 3000.0, 800.0);
        assert!((v[1] - 3000.0 * 30.0 / 70.0).abs() < 1e-9);
    }
}
