//! # per-app-power
//!
//! Umbrella crate for the *Per-Application Power Delivery* (EuroSys '19)
//! reproduction. It re-exports the four member crates under stable paths
//! so applications can depend on a single crate:
//!
//! * [`simcpu`] — the multi-core processor power/performance simulator
//!   (per-core DVFS, turbo/XFR, AVX caps, C-states, RAPL);
//! * [`workloads`] — synthetic SPEC CPU2017-like workloads, the websearch
//!   closed-loop service and the cpuburn power virus;
//! * [`telemetry`] — turbostat-like sampling, traces and statistics;
//! * [`powerd`] — the paper's contribution: priority and proportional-
//!   share (power / frequency / performance) power-delivery policies and
//!   the control daemon;
//! * [`tenants`] — multi-tenant serving scenarios with SLO-aware share
//!   control and per-tenant scorecards, layered above the daemon.
//!
//! See `examples/quickstart.rs` for a complete end-to-end run and
//! `DESIGN.md` for the experiment index.

#![forbid(unsafe_code)]

pub use pap_simcpu as simcpu;
pub use pap_telemetry as telemetry;
pub use pap_tenants as tenants;
pub use pap_workloads as workloads;
pub use powerd;

/// One-stop prelude: the types most programs need.
pub mod prelude {
    pub use pap_simcpu::prelude::*;
    pub use pap_telemetry::prelude::*;
    pub use pap_workloads::prelude::*;
    pub use powerd::prelude::*;
}
