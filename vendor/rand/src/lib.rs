//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *minimal* surface of `rand` 0.8 it actually uses: a
//! deterministic seeded generator ([`rngs::StdRng`]), uniform
//! [`Rng::gen_range`] sampling over primitive ranges, and Fisher–Yates
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — not the
//! upstream ChaCha12, so exact value streams differ from real `rand`,
//! but every consumer in this workspace only relies on determinism per
//! seed and uniformity, both of which hold.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A source of random 64-bit words. Equivalent to the subset of
/// `rand_core::RngCore` the workspace needs.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over an [`RngCore`], matching the `rand::Rng`
/// extension-trait idiom.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open primitive range.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits give the standard dyadic-uniform unit double.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A half-open range a uniform value can be drawn from.
pub trait UniformRange {
    /// The sampled type.
    type Output;
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

impl UniformRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "empty range");
                let width = (self.end - self.start) as u64;
                // Modulo bias is ≤ width/2⁶⁴ — irrelevant for the
                // simulation-scale widths used here.
                self.start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

uniform_int_range!(u64, u32, usize, i64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Deterministic per
    /// seed, passes the statistical bar every consumer here needs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut rng = StdRng { state: seed };
            // One warm-up step decorrelates small adjacent seeds.
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling, matching `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .all(|_| StdRng::seed_from_u64(42).gen_range(0.0..1.0) == c.gen_range(0.0..1.0));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(10usize..20);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "49! permutations; identity is astronomically unlikely"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }
}
