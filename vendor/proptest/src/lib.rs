//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendors
//! the subset of proptest 1.x the workspace's property tests use:
//! range / tuple / vec / `prop_map` / `any::<bool>()` strategies, the
//! `proptest!` block macro with an optional `#![proptest_config(..)]`
//! line, and the `prop_assert!` family. Cases are generated from a
//! fixed-seed SplitMix64 stream, so runs are fully deterministic.
//! There is no shrinking: a failing case panics with the assertion
//! message (include the inputs in the format string, as the existing
//! tests already do).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic case generator handed to [`Strategy::sample`].
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed generator: every `cargo test` run sees the same cases.
    pub fn deterministic() -> TestRng {
        TestRng {
            state: 0x9A73_5EED_u64 ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every produced value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(u64, u32, u16, u8, usize, i64, i32);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy returned by [`any`] for `bool`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as a vec-length specification.
    pub trait SizeRange {
        /// Draw a length from the range.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `Vec` strategy: each element drawn from `element`, length from
    /// `size` (a `Range`, `RangeInclusive`, or exact `usize`).
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-block runner configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert a condition inside a `proptest!` body; panics with the
/// formatted message on failure (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Define a block of property tests. Each `fn name(x in strategy, ..)`
/// becomes a `#[test]` that samples its strategies `config.cases` times
/// from a deterministic stream and runs the body on each case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                    let run = || -> () { $body };
                    if let Err(panic) =
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                    {
                        eprintln!(
                            "proptest {}: failed at case {}/{}",
                            stringify!($name),
                            case + 1,
                            config.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 100u64..200)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(p in pair(), v in crate::collection::vec(0u32..5, 1..=4)) {
            prop_assert!(p.0 < 100 && p.1 >= 100);
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn map_and_any(b in any::<bool>(), n in (0u64..10).prop_map(|x| x * 2)) {
            prop_assert!(u8::from(b) <= 1);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut rng = crate::TestRng::deterministic();
            (0..32)
                .map(|_| (0u64..1_000_000).sample(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
