//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this vendors
//! the two pieces the workspace uses — `queue::SegQueue` and
//! `thread::scope` — implemented over std primitives. `SegQueue` is a
//! mutex-guarded `VecDeque` rather than a lock-free segment queue: the
//! sweeps that use it pop coarse work items (whole experiment runs),
//! so queue contention is nowhere near the critical path.

#![forbid(unsafe_code)]

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue, API-compatible with
    /// `crossbeam::queue::SegQueue` for `new`/`push`/`pop`/`len`.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> SegQueue<T> {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Append `value` at the tail.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .expect("SegQueue poisoned")
                .push_back(value);
        }

        /// Remove and return the head, or `None` when empty.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("SegQueue poisoned").pop_front()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("SegQueue poisoned").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Handle passed to the `scope` closure; spawns threads that may
    /// borrow from the enclosing stack frame.
    ///
    /// Unlike crossbeam's, this wrapper is `Copy` and is passed to
    /// `scope`'s closure and to spawned closures **by value** — the
    /// in-tree callers all bind it as `|s|` / `|_|`, which works
    /// unchanged with either calling convention.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives a copy
        /// of the scope handle so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(handle))
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined
    /// before this returns. A panic in a spawned thread propagates as a
    /// panic at the join (crossbeam instead returns `Err`, but every
    /// in-tree caller immediately `.expect()`s the result, so the
    /// observable behavior — abort with a message — is the same).
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn queue_is_fifo() {
        let q = SegQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn scoped_threads_drain_shared_queue() {
        let q = SegQueue::new();
        for i in 0..1000u64 {
            q.push(i);
        }
        let sum = AtomicU64::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    while let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("scope failed");
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn scope_returns_closure_value() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().expect("worker") * 2
        })
        .expect("scope failed");
        assert_eq!(r, 42);
    }
}
