//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendors
//! `Mutex` and `RwLock` with parking_lot's signature — `lock()` /
//! `read()` / `write()` return guards directly, no poisoning `Result`
//! — implemented over the std primitives. A panic while holding a lock
//! poisons the std inner lock; this wrapper treats that as fatal and
//! panics on the next acquisition, which matches how the workspace
//! uses locks (worker panics already abort the run).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with `lock()` returning the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

/// Reader-writer lock with `read()`/`write()` returning guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_directly() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_guards_directly() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
