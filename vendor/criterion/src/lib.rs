//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendors
//! a minimal wall-clock harness behind the criterion 0.5 API surface
//! the workspace's benches use: `benchmark_group`, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//! It reports median-of-samples nanoseconds per iteration to stdout —
//! no statistics engine, plots, or saved baselines. Good enough to
//! keep `cargo bench` compiling and producing comparable numbers.

#![forbid(unsafe_code)]

use std::hint::black_box as hint_black_box;
use std::time::Instant;

/// Prevent the optimizer from discarding a benchmark result.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// How setup cost is amortized in `iter_batched`. This harness runs
/// one setup per measured invocation regardless of variant, so the
/// variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `dp_optimal/32`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter*`.
    ns_per_iter: f64,
}

/// Per-sample iteration budget: enough to get past timer granularity
/// without letting slow benches (ms-scale routines) run for minutes.
const SAMPLES: usize = 11;
const TARGET_SAMPLE_NANOS: u128 = 2_000_000; // 2 ms per sample

impl Bencher {
    /// Measure `routine` called in a tight loop.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: how many calls fit in one sample window?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_nanos().max(1);
        let per_sample = (TARGET_SAMPLE_NANOS / once).clamp(1, 1_000_000) as usize;

        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..per_sample {
                    black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / per_sample as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[SAMPLES / 2];
    }

    /// Measure `routine` on fresh input from `setup` each invocation;
    /// only the routine is timed.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            // A handful of invocations per sample keeps setup cost out
            // of scope while staying above timer granularity.
            let inputs: Vec<I> = (0..16).map(|_| setup()).collect();
            let n = inputs.len();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            samples.push(t.elapsed().as_nanos() as f64 / n as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[SAMPLES / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'c> BenchmarkGroup<'c> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.report(&id.to_string(), b.ns_per_iter);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        self.report(&id.to_string(), b.ns_per_iter);
        self
    }

    /// Finish the group (reports are emitted eagerly; this is a no-op
    /// kept for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, ns: f64) {
        let mut line = format!("{}/{:<28} {:>12.1} ns/iter", self.name, id, ns);
        if let Some(Throughput::Elements(n)) = self.throughput {
            let per_sec = n as f64 * 1e9 / ns.max(1e-9);
            line.push_str(&format!("  ({per_sec:.3e} elem/s)"));
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let per_sec = n as f64 * 1e9 / ns.max(1e-9);
            line.push_str(&format!("  ({:.1} MiB/s)", per_sec / (1 << 20) as f64));
        }
        println!("{line}");
        self.criterion
            .results
            .push((format!("{}/{id}", self.name), ns));
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into one group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main()` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|(_, ns)| *ns >= 0.0));
    }

    #[test]
    fn iter_batched_times_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(c.results.len(), 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dp", 32).to_string(), "dp/32");
    }
}
