//! Quickstart: deliver 70/30 frequency shares to two applications under a
//! 45 W package limit on the simulated Skylake platform.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use per_app_power::prelude::*;

fn main() {
    // A high-demand scientific code against a low-demand Go engine —
    // the paper's canonical HD/LD pair.
    let result = Experiment::new(
        PlatformSpec::skylake(),
        PolicyKind::FrequencyShares,
        Watts(45.0),
    )
    .app(
        "cactusBSSN",
        pap_workloads::spec::CACTUS_BSSN,
        Priority::High,
        70,
    )
    .app("leela", pap_workloads::spec::LEELA, Priority::High, 30)
    .app(
        "cactusBSSN-2",
        pap_workloads::spec::CACTUS_BSSN,
        Priority::High,
        70,
    )
    .app("leela-2", pap_workloads::spec::LEELA, Priority::High, 30)
    .duration(Seconds(60.0))
    .run()
    .expect("experiment runs");

    println!(
        "mean package power: {:.1} (limit 45 W)",
        result.mean_package_power
    );
    println!(
        "{:<14} {:>9} {:>10} {:>10}",
        "app", "mean MHz", "norm perf", "starved"
    );
    for app in &result.apps {
        println!(
            "{:<14} {:>9.0} {:>10.3} {:>9.0}%",
            app.name,
            app.mean_freq_mhz,
            app.norm_perf,
            app.starved_fraction * 100.0
        );
    }

    let hi = result.apps[0].mean_freq_mhz;
    let lo = result.apps[1].mean_freq_mhz;
    println!(
        "\n70-share apps run {:.2}x the frequency of 30-share apps \
         (configured ratio 2.33, clamped by the platform's dynamic range).",
        hi / lo
    );
}
