//! Colocating batch work behind a latency-critical service with the
//! strict priority policy — the paper's motivating datacenter scenario.
//!
//! Five high-priority cactusBSSN instances share the Skylake socket with
//! five low-priority leela instances. As the power budget shrinks, the
//! policy throttles and then *starves* the background class, keeping the
//! foreground at speed — in contrast to native RAPL, which throttles both
//! classes equally.
//!
//! ```sh
//! cargo run --release --example colocation_priority
//! ```

use per_app_power::prelude::*;
use per_app_power::workloads::spec;

fn run(policy: PolicyKind, limit: f64) -> ExperimentResult {
    let mut e = Experiment::new(PlatformSpec::skylake(), policy, Watts(limit))
        .duration(Seconds(45.0))
        .warmup(10);
    for i in 0..5 {
        e = e.app(format!("fg-{i}"), spec::CACTUS_BSSN, Priority::High, 100);
    }
    for i in 0..5 {
        e = e.app(format!("bg-{i}"), spec::LEELA, Priority::Low, 100);
    }
    e.run().expect("experiment runs")
}

fn class_perf(r: &ExperimentResult) -> (f64, f64) {
    let fg = r.apps[..5].iter().map(|a| a.norm_perf).sum::<f64>() / 5.0;
    let bg = r.apps[5..].iter().map(|a| a.norm_perf).sum::<f64>() / 5.0;
    (fg, bg)
}

fn main() {
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "limit_w", "prio_fg", "prio_bg", "rapl_fg", "rapl_bg"
    );
    for limit in [85.0, 65.0, 50.0, 40.0] {
        let prio = run(PolicyKind::Priority, limit);
        let rapl = run(PolicyKind::RaplNative, limit);
        let (pf, pb) = class_perf(&prio);
        let (rf, rb) = class_perf(&rapl);
        println!("{limit:>8.0} {pf:>12.3} {pb:>12.3} {rf:>12.3} {rb:>12.3}");
    }
    println!(
        "\nUnder the priority policy the foreground column barely moves while \
         the background column collapses at tight budgets; under RAPL both \
         degrade together — the interference problem the paper opens with."
    );
}
