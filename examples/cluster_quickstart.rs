//! Cluster quickstart: arbitrate one 170 W budget across a 4-node
//! simulated cluster with dynamic app arrival and departure.
//!
//! ```sh
//! cargo run --release --example cluster_quickstart
//! ```

use clusterd::prelude::*;
use pap_simcpu::units::Watts;
use powerd::config::PolicyKind;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig::new(
        4,
        PolicyKind::FrequencyShares,
        Watts(170.0),
    ))
    .expect("budget funds every node's power floor");

    // Tenants arrive with (shares, demand class); the cluster places
    // each on the least-saturated node.
    for (i, (shares, demand)) in [
        (180, DemandClass::Heavy),
        (60, DemandClass::Moderate),
        (60, DemandClass::Moderate),
        (20, DemandClass::Light),
        (20, DemandClass::Light),
        (20, DemandClass::Light),
    ]
    .into_iter()
    .cycle()
    .take(18)
    .enumerate()
    {
        let placement = cluster
            .admit(&AppRequest::new(format!("tenant{i}"), shares, demand))
            .expect("cluster has free cores");
        println!(
            "tenant{i:<2} ({shares:>3} shares) -> node {} core {}",
            placement.node, placement.core
        );
    }

    // Run with the parallel engine: one thread per node, the budget
    // arbiter rebalancing node caps from telemetry every 4 intervals.
    clusterd::engine::run_parallel(&mut cluster, 20);

    // Half the tenants leave; their budget claims dissolve.
    for i in (0..18).step_by(2) {
        cluster
            .depart(&format!("tenant{i}"))
            .expect("tenant is placed");
    }
    clusterd::engine::run_parallel(&mut cluster, 20);

    let rollup = cluster.last_rollup().expect("ran intervals");
    println!(
        "\nafter {}: cluster draw {:.1} of {:.1} W cap, power balance (Jain) {:.3}",
        cluster.elapsed(),
        rollup.total_power().value(),
        rollup.total_cap().value(),
        rollup.power_balance()
    );
    println!(
        "{:<6} {:>8} {:>10} {:>10}",
        "node", "cap W", "draw W", "apps"
    );
    for t in &rollup.nodes {
        println!(
            "{:<6} {:>8.1} {:>10.1} {:>10}",
            t.node,
            t.power_cap.value(),
            t.package_power.value(),
            t.busy_cores
        );
    }

    let elapsed = cluster.elapsed();
    println!(
        "\n{:<10} {:>5} {:>7} {:>11}",
        "app", "node", "shares", "norm perf"
    );
    for r in cluster.reports() {
        println!(
            "{:<10} {:>5} {:>7} {:>11.3}",
            r.name,
            r.node,
            r.shares,
            r.normalized_perf(elapsed)
        );
    }
}
