//! Comparing the three proportional-share resources on Ryzen.
//!
//! The same 70/30 share assignment is enforced three ways — as shares of
//! power, of frequency, and of normalized performance — over a
//! high-demand/low-demand pair at 45 W. The run shows the paper's §6.2
//! conclusion concretely: each policy makes *its* resource proportional,
//! and the other two deviate; power shares isolate performance worst.
//!
//! ```sh
//! cargo run --release --example share_policies
//! ```

use per_app_power::prelude::*;
use per_app_power::workloads::spec;

fn main() {
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "policy", "ld_freq_%", "ld_perf_%", "ld_power_%"
    );
    for policy in [
        PolicyKind::FrequencyShares,
        PolicyKind::PerformanceShares,
        PolicyKind::PowerShares,
    ] {
        let mut e = Experiment::new(PlatformSpec::ryzen(), policy, Watts(45.0))
            .duration(Seconds(60.0))
            .warmup(12);
        for i in 0..4 {
            e = e.app(format!("leela-{i}"), spec::LEELA, Priority::High, 30);
        }
        for i in 0..4 {
            e = e.app(format!("cactus-{i}"), spec::CACTUS_BSSN, Priority::High, 70);
        }
        let r = e.run().expect("experiment runs");

        let frac = |vals: Vec<f64>| -> f64 {
            let ld: f64 = vals[..4].iter().sum();
            let hd: f64 = vals[4..].iter().sum();
            ld / (ld + hd) * 100.0
        };
        let freq = frac(r.apps.iter().map(|a| a.mean_freq_mhz).collect());
        let perf = frac(r.apps.iter().map(|a| a.norm_perf).collect());
        let power = frac(
            r.apps
                .iter()
                .map(|a| a.mean_power.map(|w| w.value()).unwrap_or(0.0))
                .collect(),
        );
        println!(
            "{:<14} {freq:>10.1} {perf:>10.1} {power:>10.1}",
            policy.name()
        );
    }
    println!(
        "\nThe low-demand class holds 30 shares. Read each row's policy \
         resource: frequency shares pin ld_freq_% near 30, power shares pin \
         ld_power_% near 30 — but then the LD class gets far more than 30% of \
         the frequency/performance, the isolation failure the paper reports."
    );
}
