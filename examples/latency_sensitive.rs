//! Protecting a latency-critical service from a power virus.
//!
//! Reproduces the paper's headline scenario end-to-end: a websearch-like
//! closed-loop service on 9 Skylake cores, a cpuburn power virus on the
//! 10th, a 40 W package limit. Native RAPL lets the virus inflate the
//! service's tail latency; 90/10 frequency shares restore it.
//!
//! ```sh
//! cargo run --release --example latency_sensitive
//! ```

use per_app_power::prelude::*;
use per_app_power::workloads::burn::CPUBURN;

fn run(policy: PolicyKind, colocated: bool) -> LatencyResult {
    let mut e = LatencyExperiment::new(PlatformSpec::skylake(), policy, Watts(40.0))
        .shares(90, 10)
        .duration(Seconds(60.0))
        .warmup(Seconds(15.0));
    if colocated {
        e = e.colocate(CPUBURN);
    }
    e.run().expect("experiment runs")
}

fn main() {
    let alone = run(PolicyKind::RaplNative, false);
    let rapl = run(PolicyKind::RaplNative, true);
    let shares = run(PolicyKind::FrequencyShares, true);

    println!("websearch at a 40 W package limit (p90 in ms):");
    println!(
        "{:<26} {:>8} {:>12} {:>14} {:>14}",
        "configuration", "p90_ms", "throughput", "service_mhz", "virus_mhz"
    );
    let row = |name: &str, r: &LatencyResult| {
        println!(
            "{:<26} {:>8.1} {:>12.0} {:>14.0} {:>14}",
            name,
            r.p90_ms,
            r.throughput,
            r.service_freq_mhz,
            r.colocated_freq_mhz
                .map(|f| format!("{f:.0}"))
                .unwrap_or_else(|| "-".into()),
        );
    };
    row("alone (RAPL)", &alone);
    row("+cpuburn (RAPL)", &rapl);
    row("+cpuburn (freq shares)", &shares);

    println!(
        "\ncolocation penalty: RAPL {:.2}x vs frequency shares {:.2}x — the \
         share policy pushes the virus to the bottom of the frequency range \
         and keeps the service within a few percent of running alone.",
        rapl.p90_ms / alone.p90_ms,
        shares.p90_ms / alone.p90_ms
    );
}
